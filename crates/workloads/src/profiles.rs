//! The 33 proxy profiles: 11 SPEC CPU2006 integer, 10 SPEC CPU2006
//! floating-point and 12 MiBench programs — the evaluation suite of the
//! paper's Section V.
//!
//! Each profile encodes the behaviour class of its namesake at the level
//! the AVF methodology is sensitive to (Section IV-A): working-set size
//! and access pattern, instruction mix, dependence structure, branch
//! predictability, and compiler-junk fractions. Absolute benchmark fidelity
//! is neither possible nor needed (DESIGN.md §2): the suite's role is to
//! span a realistic SER coverage range below the stressmark.

use crate::profile::{AccessPattern, Suite, WorkloadProfile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &'static str,
    suite: Suite,
    footprint: u64,
    pattern: AccessPattern,
    loads: u32,
    stores: u32,
    alu: u32,
    mul_frac: f64,
    dep_chain: u32,
    branches: u32,
    branch_entropy: f64,
    seed: u64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        suite,
        footprint,
        pattern,
        stride: 64,
        loads,
        stores,
        alu,
        mul_frac,
        dep_chain,
        branches,
        branch_entropy,
        dead_frac: 0.08,
        nop_frac: 0.03,
        seed,
    }
}

/// The 11 SPEC CPU2006 integer proxies (paper Figure 6a).
#[must_use]
pub fn spec_int() -> Vec<WorkloadProfile> {
    use AccessPattern::*;
    use Suite::SpecInt as S;
    vec![
        // gcc: large irregular working set, moderate branchiness — the
        // highest overall (core+cache) AVF in the paper's suite.
        profile(
            "403.gcc",
            S,
            8 * MB,
            PointerChase,
            5,
            3,
            10,
            0.1,
            2,
            2,
            0.15,
            1,
        ),
        profile(
            "400.perlbench",
            S,
            512 * KB,
            Strided,
            4,
            2,
            10,
            0.05,
            2,
            3,
            0.25,
            2,
        ),
        profile(
            "401.bzip2",
            S,
            4 * MB,
            Strided,
            4,
            3,
            12,
            0.05,
            2,
            2,
            0.2,
            3,
        ),
        profile(
            "429.mcf",
            S,
            8 * MB,
            PointerChase,
            3,
            1,
            5,
            0.05,
            3,
            1,
            0.2,
            4,
        ),
        profile("445.gobmk", S, MB, Resident, 4, 2, 8, 0.05, 2, 4, 0.35, 5),
        profile(
            "456.hmmer",
            S,
            256 * KB,
            Strided,
            5,
            2,
            16,
            0.15,
            1,
            1,
            0.05,
            6,
        ),
        profile("458.sjeng", S, MB, Resident, 3, 1, 9, 0.05, 2, 3, 0.3, 7),
        profile(
            "462.libquantum",
            S,
            4 * MB,
            Strided,
            3,
            1,
            8,
            0.1,
            1,
            1,
            0.05,
            8,
        ),
        profile(
            "464.h264ref",
            S,
            512 * KB,
            Strided,
            5,
            2,
            14,
            0.25,
            2,
            1,
            0.1,
            9,
        ),
        profile(
            "471.omnetpp",
            S,
            2 * MB,
            PointerChase,
            4,
            2,
            8,
            0.05,
            2,
            2,
            0.2,
            10,
        ),
        profile(
            "473.astar",
            S,
            MB,
            PointerChase,
            4,
            1,
            7,
            0.05,
            2,
            2,
            0.25,
            11,
        ),
    ]
}

/// The 10 SPEC CPU2006 floating-point proxies (paper Figure 6b).
///
/// FP codes issue wide, multiply-heavy, predictably-branching loops, which
/// is why the paper finds their queue SER relatively high; the proxies are
/// integer kernels with the same timing profile (the multiplier stands in
/// for FP latency, DESIGN.md §7).
#[must_use]
pub fn spec_fp() -> Vec<WorkloadProfile> {
    use AccessPattern::*;
    use Suite::SpecFp as S;
    vec![
        profile(
            "410.bwaves",
            S,
            8 * MB,
            Strided,
            5,
            2,
            18,
            0.5,
            3,
            1,
            0.02,
            21,
        ),
        profile(
            "433.milc",
            S,
            4 * MB,
            Strided,
            4,
            2,
            14,
            0.45,
            2,
            1,
            0.02,
            22,
        ),
        profile(
            "434.zeusmp",
            S,
            4 * MB,
            Strided,
            6,
            3,
            16,
            0.5,
            3,
            1,
            0.02,
            23,
        ),
        profile(
            "435.gromacs",
            S,
            512 * KB,
            Resident,
            4,
            2,
            18,
            0.4,
            2,
            1,
            0.05,
            24,
        ),
        profile(
            "436.cactusADM",
            S,
            4 * MB,
            Strided,
            5,
            2,
            20,
            0.55,
            5,
            1,
            0.02,
            25,
        ),
        profile(
            "437.leslie3d",
            S,
            4 * MB,
            Strided,
            5,
            2,
            16,
            0.45,
            3,
            1,
            0.02,
            26,
        ),
        profile("444.namd", S, MB, Resident, 4, 2, 20, 0.4, 2, 1, 0.02, 27),
        // dealII: the highest core SER among the paper's baseline workloads.
        profile(
            "447.dealII",
            S,
            8 * MB,
            Strided,
            6,
            3,
            14,
            0.35,
            3,
            1,
            0.1,
            28,
        ),
        profile(
            "450.soplex",
            S,
            2 * MB,
            Strided,
            5,
            2,
            12,
            0.3,
            2,
            2,
            0.15,
            29,
        ),
        // GemsFDTD: the highest core SER under the RHC fault rates.
        profile(
            "459.GemsFDTD",
            S,
            8 * MB,
            Strided,
            6,
            3,
            16,
            0.5,
            4,
            1,
            0.02,
            30,
        ),
    ]
}

/// The 12 MiBench proxies (paper Figure 6c): small embedded kernels with
/// cache-resident working sets and low overall SER.
#[must_use]
pub fn mibench() -> Vec<WorkloadProfile> {
    use AccessPattern::*;
    use Suite::MiBench as S;
    vec![
        profile(
            "basicmath",
            S,
            16 * KB,
            Resident,
            2,
            1,
            12,
            0.3,
            2,
            1,
            0.1,
            41,
        ),
        profile(
            "bitcount",
            S,
            8 * KB,
            Resident,
            1,
            1,
            12,
            0.05,
            2,
            2,
            0.1,
            42,
        ),
        profile(
            "qsort",
            S,
            256 * KB,
            Resident,
            4,
            2,
            6,
            0.05,
            2,
            3,
            0.35,
            43,
        ),
        // susan: the highest core SER under the EDR fault rates (high-IPC
        // image kernel).
        profile("susan", S, 64 * KB, Resident, 4, 2, 18, 0.3, 1, 1, 0.05, 44),
        profile(
            "dijkstra",
            S,
            128 * KB,
            PointerChase,
            3,
            1,
            6,
            0.05,
            2,
            2,
            0.2,
            45,
        ),
        profile(
            "patricia",
            S,
            256 * KB,
            PointerChase,
            3,
            1,
            6,
            0.05,
            2,
            2,
            0.25,
            46,
        ),
        profile(
            "stringsearch",
            S,
            32 * KB,
            Resident,
            3,
            1,
            7,
            0.0,
            2,
            3,
            0.3,
            47,
        ),
        profile(
            "blowfish",
            S,
            8 * KB,
            Resident,
            2,
            1,
            14,
            0.1,
            2,
            1,
            0.05,
            48,
        ),
        profile(
            "rijndael",
            S,
            16 * KB,
            Resident,
            3,
            2,
            16,
            0.1,
            2,
            1,
            0.05,
            49,
        ),
        profile("sha", S, 8 * KB, Resident, 2, 1, 14, 0.05, 3, 1, 0.05, 50),
        profile("crc32", S, 8 * KB, Resident, 2, 1, 6, 0.0, 2, 1, 0.05, 51),
        profile("fft", S, 256 * KB, Resident, 4, 2, 14, 0.5, 2, 1, 0.05, 52),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(spec_int().len(), 11);
        assert_eq!(spec_fp().len(), 10);
        assert_eq!(mibench().len(), 12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = spec_int()
            .iter()
            .chain(spec_fp().iter())
            .chain(mibench().iter())
            .map(|p| p.name)
            .collect();
        assert_eq!(names.len(), 33);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 33);
    }

    #[test]
    fn footprints_are_pow2_and_strides_line_aligned() {
        for p in spec_int()
            .iter()
            .chain(spec_fp().iter())
            .chain(mibench().iter())
        {
            assert!(p.footprint.is_power_of_two(), "{}", p.name);
            assert_eq!(p.stride % 64, 0, "{}", p.name);
        }
    }

    #[test]
    fn suite_tags_are_correct() {
        assert!(spec_int().iter().all(|p| p.suite == Suite::SpecInt));
        assert!(spec_fp().iter().all(|p| p.suite == Suite::SpecFp));
        assert!(mibench().iter().all(|p| p.suite == Suite::MiBench));
    }

    #[test]
    fn fp_suite_is_multiplier_heavy() {
        let fp_avg: f64 =
            spec_fp().iter().map(|p| p.mul_frac).sum::<f64>() / spec_fp().len() as f64;
        let int_avg: f64 =
            spec_int().iter().map(|p| p.mul_frac).sum::<f64>() / spec_int().len() as f64;
        assert!(fp_avg > 2.0 * int_avg);
    }
}
