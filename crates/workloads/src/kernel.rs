//! Generic proxy-kernel builder: turns a [`WorkloadProfile`] into a
//! runnable program exhibiting the requested microarchitecture-dependent
//! behaviour.

use avf_isa::{DataSegment, Opcode, Program, ProgramBuilder, Reg, DATA_BASE};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::profile::{AccessPattern, WorkloadProfile};

// Register roles.
const R_PTR: u8 = 1; // current data pointer
const R_BASE: u8 = 2; // working-set base
const R_IDX: u8 = 3; // strided walk index
const R_LCG: u8 = 4; // branch-entropy LCG state
const R_LCG_A: u8 = 5; // LCG multiplier
const R_TMP: u8 = 6; // scratch for branch conditions
const R_DEAD: u8 = 7; // sink for deliberately dead ops
const R_SCR: u8 = 8; // scratch store base
const POOL: std::ops::Range<u8> = 10..28; // value pool

/// Builds the proxy program for `profile`.
///
/// # Panics
///
/// Panics if the profile's footprint is not a power of two or smaller than
/// one cache line.
#[must_use]
pub fn build(profile: &WorkloadProfile) -> Program {
    assert!(
        profile.footprint.is_power_of_two() && profile.footprint >= 64,
        "footprint must be a power of two of at least 64 bytes"
    );
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let data = build_data(profile, &mut rng);
    let mut b = ProgramBuilder::new(profile.name).with_data(data);

    // Prologue.
    let base = DATA_BASE;
    b.load_addr(Reg::of(R_BASE), base);
    b.mov(Reg::of(R_PTR), Reg::of(R_BASE));
    b.addi(Reg::of(R_IDX), Reg::ZERO, 0);
    b.load_addr(Reg::of(R_LCG), 0x2545_F491_4F6C_DD1D);
    b.load_addr(Reg::of(R_LCG_A), 6_364_136_223_846_793_005);
    // Scratch ring lives just past the working set so stores can never
    // corrupt the pointer-chase chain.
    b.load_addr(Reg::of(R_SCR), base + profile.footprint);
    for r in POOL {
        b.addi(Reg::of(r), Reg::ZERO, i16::from(r) * 7 + 1);
    }

    let top = b.here();
    emit_walk(&mut b, profile);
    emit_body(&mut b, profile, &mut rng);
    b.br(top);
    b.build().expect("proxy kernel is structurally valid")
}

fn build_data(profile: &WorkloadProfile, rng: &mut SmallRng) -> DataSegment {
    let mut data = DataSegment::zeroed(profile.footprint as usize);
    if profile.pattern == AccessPattern::PointerChase {
        // Shuffled Hamiltonian cycle over the lines (Sattolo's algorithm
        // keeps it a single cycle, so the chase covers the footprint).
        let n = (profile.footprint / 64) as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for w in 0..n {
            let from = order[w];
            let to = order[(w + 1) % n];
            data.put_u64(from * 64, DATA_BASE + (to * 64) as u64);
        }
    }
    data
}

fn emit_walk(b: &mut ProgramBuilder, profile: &WorkloadProfile) {
    match profile.pattern {
        AccessPattern::PointerChase => {
            b.ldq(Reg::of(R_PTR), Reg::of(R_PTR), 0);
        }
        AccessPattern::Strided | AccessPattern::Resident => {
            let mask = (profile.footprint - 64) as i16;
            if profile.footprint <= 32 * 1024 {
                // Small sets: mask fits an immediate.
                b.addi(Reg::of(R_IDX), Reg::of(R_IDX), profile.stride as i16);
                b.alu_ri(Opcode::And, Reg::of(R_IDX), Reg::of(R_IDX), mask);
            } else {
                // Large sets: wrap by shifting out the high bits.
                let bits = 64 - profile.footprint.trailing_zeros() as i16;
                b.addi(Reg::of(R_IDX), Reg::of(R_IDX), profile.stride as i16);
                b.alu_ri(Opcode::Sll, Reg::of(R_IDX), Reg::of(R_IDX), bits);
                b.alu_ri(Opcode::Srl, Reg::of(R_IDX), Reg::of(R_IDX), bits);
            }
            b.alu_rr(Opcode::Add, Reg::of(R_PTR), Reg::of(R_BASE), Reg::of(R_IDX));
        }
    }
}

fn emit_body(b: &mut ProgramBuilder, profile: &WorkloadProfile, rng: &mut SmallRng) {
    let pool: Vec<u8> = POOL.collect();
    let mut pool_idx = 0usize;
    let next_pool = |idx: &mut usize| -> u8 {
        let r = pool[*idx % pool.len()];
        *idx += 1;
        r
    };

    // Loads from the walked region.
    let mut loaded: Vec<u8> = Vec::new();
    for i in 0..profile.loads {
        let dest = next_pool(&mut pool_idx);
        let wide = rng.gen_bool(0.75);
        let off = (i as i32 % 8) * 8;
        if wide {
            b.ldq(Reg::of(dest), Reg::of(R_PTR), off);
        } else {
            b.ldl(Reg::of(dest), Reg::of(R_PTR), off);
        }
        loaded.push(dest);
    }

    // Arithmetic: `dep_chain` ops run serially on one accumulator before
    // rotating to the next, mixing loaded values in.
    let mut chain_pos = 0u32;
    let mut acc = next_pool(&mut pool_idx);
    for _ in 0..profile.alu {
        let op = if rng.gen_bool(profile.mul_frac) {
            Opcode::Mul
        } else {
            [Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::Sll][rng.gen_range(0..4)]
        };
        let operand = if !loaded.is_empty() && rng.gen_bool(0.4) {
            loaded[rng.gen_range(0..loaded.len())]
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        if op == Opcode::Sll {
            b.alu_ri(op, Reg::of(acc), Reg::of(acc), rng.gen_range(1..5));
        } else {
            b.alu_rr(op, Reg::of(acc), Reg::of(acc), Reg::of(operand));
        }
        chain_pos += 1;
        if chain_pos >= profile.dep_chain {
            chain_pos = 0;
            acc = next_pool(&mut pool_idx);
        }
    }

    // Dead instructions and NOPs (compiler junk).
    let extra = profile.base_ops() as f64;
    for _ in 0..((extra * profile.dead_frac).round() as u32) {
        b.addi(Reg::of(R_DEAD), Reg::ZERO, rng.gen_range(1..100));
    }
    for _ in 0..((extra * profile.nop_frac).round() as u32) {
        b.nop();
    }

    // Stores: half to the walked region, half to a scratch ring.
    for j in 0..profile.stores {
        let src = pool[rng.gen_range(0..pool.len())];
        let (base_reg, off) = if j % 2 == 0 {
            (R_PTR, 8 + (j as i32 % 7) * 8)
        } else {
            (R_SCR, (j as i32 % 16) * 8)
        };
        if rng.gen_bool(0.75) {
            b.stq(Reg::of(src), Reg::of(base_reg), off);
        } else {
            b.stl(Reg::of(src), Reg::of(base_reg), off);
        }
    }

    // Data-dependent branches driven by an LCG: entropy controls how often
    // the direction flips (and thus the misprediction rate).
    for _ in 0..profile.branches {
        b.alu_rr(
            Opcode::Mul,
            Reg::of(R_LCG),
            Reg::of(R_LCG),
            Reg::of(R_LCG_A),
        );
        b.alu_ri(Opcode::Add, Reg::of(R_LCG), Reg::of(R_LCG), 12345);
        b.alu_ri(Opcode::Srl, Reg::of(R_TMP), Reg::of(R_LCG), 33);
        let threshold = (profile.branch_entropy * 255.0) as i16;
        b.alu_ri(Opcode::And, Reg::of(R_TMP), Reg::of(R_TMP), 0xFF);
        b.alu_ri(Opcode::Cmplt, Reg::of(R_TMP), Reg::of(R_TMP), threshold);
        let skip = b.label();
        b.beq(Reg::of(R_TMP), skip);
        let v = pool[rng.gen_range(0..pool.len())];
        b.alu_ri(Opcode::Add, Reg::of(v), Reg::of(v), 1);
        b.bind(skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Suite;

    fn profile(pattern: AccessPattern) -> WorkloadProfile {
        WorkloadProfile {
            name: "test",
            suite: Suite::MiBench,
            footprint: 64 * 1024,
            pattern,
            stride: 64,
            loads: 3,
            stores: 2,
            alu: 8,
            mul_frac: 0.2,
            dep_chain: 2,
            branches: 1,
            branch_entropy: 0.3,
            dead_frac: 0.05,
            nop_frac: 0.02,
            seed: 42,
        }
    }

    #[test]
    fn builds_all_patterns() {
        for pattern in [
            AccessPattern::PointerChase,
            AccessPattern::Strided,
            AccessPattern::Resident,
        ] {
            let p = build(&profile(pattern));
            assert!(p.len() > 10);
        }
    }

    #[test]
    fn chase_data_is_single_cycle() {
        let prof = profile(AccessPattern::PointerChase);
        let p = build(&prof);
        let n = (prof.footprint / 64) as usize;
        let data = p.data();
        let mut at = DATA_BASE;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            assert!(
                seen.insert(at),
                "revisited {at:#x} before covering the cycle"
            );
            let off = (at - data.base) as usize;
            at = u64::from_le_bytes(data.bytes[off..off + 8].try_into().unwrap());
        }
        assert_eq!(at, DATA_BASE, "chain must be a single cycle");
    }

    #[test]
    fn kernel_runs_functionally_without_leaving_text() {
        use avf_isa::{ExecState, Memory};
        for pattern in [
            AccessPattern::PointerChase,
            AccessPattern::Strided,
            AccessPattern::Resident,
        ] {
            let p = build(&profile(pattern));
            let mut mem = Memory::new();
            let mut st = ExecState::new(&p, &mut mem);
            for _ in 0..50_000 {
                st.exec(&p, &mut mem).expect("kernel must loop forever");
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let a = build(&profile(AccessPattern::Strided));
        let b = build(&profile(AccessPattern::Strided));
        assert_eq!(a.insts(), b.insts());
    }

    #[test]
    fn dead_and_nop_fractions_emit_padding() {
        let mut prof = profile(AccessPattern::Resident);
        prof.dead_frac = 0.5;
        prof.nop_frac = 0.3;
        let with = build(&prof);
        prof.dead_frac = 0.0;
        prof.nop_frac = 0.0;
        let without = build(&prof);
        assert!(with.len() > without.len());
        assert!(with.insts().iter().any(|i| i.op == Opcode::Nop));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_footprint_rejected() {
        let mut prof = profile(AccessPattern::Strided);
        prof.footprint = 100_000;
        let _ = build(&prof);
    }
}
