//! # avf-workloads
//!
//! Synthetic proxy kernels standing in for the benchmark suites the AVF
//! stressmark paper evaluates against (Nair, John & Eeckhout, MICRO 2010,
//! Section V): 11 SPEC CPU2006 integer, 10 SPEC CPU2006 floating-point and
//! 12 MiBench programs.
//!
//! The proxies are *behaviour-class* substitutes, not ports (DESIGN.md §2):
//! each encodes its namesake's working-set size and access pattern,
//! instruction mix, dependence structure, branch predictability, and
//! realistic dead-instruction/NOP fractions. Their role in the evaluation
//! is to span an SER coverage range against which the stressmark's headroom
//! is measured (Figures 3, 4, 6, 7 and Table III).
//!
//! ## Example
//!
//! ```
//! use avf_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 33);
//! let mcf = by_name("429.mcf").expect("mcf proxy exists");
//! let program = mcf.build();
//! assert!(program.len() > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod profile;
mod profiles;
mod suite;
pub mod testkit;

pub use kernel::build;
pub use profile::{AccessPattern, Suite, WorkloadProfile};
pub use profiles::{
    mibench as mibench_profiles, spec_fp as spec_fp_profiles, spec_int as spec_int_profiles,
};
pub use suite::{all, by_name, mibench, spec_all, spec_fp, spec_int, Workload};
