/// Which benchmark suite a proxy stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 integer.
    SpecInt,
    /// SPEC CPU2006 floating point.
    SpecFp,
    /// MiBench embedded suite.
    MiBench,
}

impl Suite {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::SpecInt => "SPEC CPU2006 int",
            Suite::SpecFp => "SPEC CPU2006 fp",
            Suite::MiBench => "MiBench",
        }
    }
}

/// How the kernel walks its data working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Dependent pointer chasing over a shuffled cycle (irregular,
    /// serialized misses — 429.mcf-like).
    PointerChase,
    /// Strided sweep with wraparound (streaming — libquantum/bwaves-like).
    Strided,
    /// Small hot set revisited continuously (cache-resident — MiBench-like).
    Resident,
}

/// Behaviour-class parameters of one proxy kernel.
///
/// These are *microarchitecture-dependent program characteristics* in the
/// sense of the paper's Section IV-A: instruction mix, dependence
/// structure, branch behaviour, working-set size/coverage, and the amount
/// of dynamically dead and NOP "compiler junk" (3–16% of instructions are
/// dead in real programs per Butts & Sohi, and the paper notes compilers
/// introduce un-ACE instructions).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Proxy name (the benchmark it stands in for).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Data working set in bytes (power of two).
    pub footprint: u64,
    /// Walk pattern over the working set.
    pub pattern: AccessPattern,
    /// Walk stride in bytes (strided/resident patterns).
    pub stride: u64,
    /// Loads per loop iteration.
    pub loads: u32,
    /// Stores per loop iteration.
    pub stores: u32,
    /// Arithmetic instructions per iteration.
    pub alu: u32,
    /// Fraction of arithmetic that is long-latency multiply (the FP-like
    /// compute knob; the integer pipeline models FP latency via the
    /// multiplier, DESIGN.md §7).
    pub mul_frac: f64,
    /// Serial dependence-chain length (1 = fully parallel).
    pub dep_chain: u32,
    /// Data-dependent conditional branches per iteration.
    pub branches: u32,
    /// Probability each such branch flips direction (0 = fully biased,
    /// 0.5 = unpredictable coin).
    pub branch_entropy: f64,
    /// Fraction of extra deliberately-dead instructions.
    pub dead_frac: f64,
    /// Fraction of extra alignment NOPs.
    pub nop_frac: f64,
    /// Seed for the kernel's internal randomization.
    pub seed: u64,
}

impl WorkloadProfile {
    /// Total explicit instructions per iteration (before dead/NOP padding).
    #[must_use]
    pub fn base_ops(&self) -> u32 {
        self.loads + self.stores + self.alu + self.branches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names() {
        assert!(Suite::SpecInt.name().contains("int"));
        assert!(Suite::SpecFp.name().contains("fp"));
        assert!(Suite::MiBench.name().contains("MiBench"));
    }
}
