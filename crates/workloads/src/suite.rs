//! Workload registry: named proxies with lazy program construction.

use avf_isa::Program;

use crate::kernel;
use crate::profile::{Suite, WorkloadProfile};
use crate::profiles;

/// A named workload: a profile plus on-demand program construction
/// (programs with multi-megabyte data segments are only materialized when
/// simulated).
#[derive(Debug, Clone)]
pub struct Workload {
    profile: WorkloadProfile,
}

impl Workload {
    /// Wraps a profile.
    #[must_use]
    pub fn new(profile: WorkloadProfile) -> Workload {
        Workload { profile }
    }

    /// Benchmark name (e.g. `"403.gcc"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// Suite membership.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.profile.suite
    }

    /// The underlying profile.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Builds the runnable proxy program.
    #[must_use]
    pub fn build(&self) -> Program {
        kernel::build(&self.profile)
    }
}

/// The 11 SPEC CPU2006 integer proxies.
#[must_use]
pub fn spec_int() -> Vec<Workload> {
    profiles::spec_int()
        .into_iter()
        .map(Workload::new)
        .collect()
}

/// The 10 SPEC CPU2006 floating-point proxies.
#[must_use]
pub fn spec_fp() -> Vec<Workload> {
    profiles::spec_fp().into_iter().map(Workload::new).collect()
}

/// The 12 MiBench proxies.
#[must_use]
pub fn mibench() -> Vec<Workload> {
    profiles::mibench().into_iter().map(Workload::new).collect()
}

/// All 21 SPEC CPU2006 proxies (int + fp).
#[must_use]
pub fn spec_all() -> Vec<Workload> {
    let mut v = spec_int();
    v.extend(spec_fp());
    v
}

/// The full 33-program evaluation suite.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = spec_all();
    v.extend(mibench());
    v
}

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_33_programs() {
        assert_eq!(all().len(), 33);
        assert_eq!(spec_all().len(), 21);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("429.mcf").is_some());
        assert!(by_name("susan").is_some());
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn every_workload_builds() {
        for w in all() {
            let p = w.build();
            assert!(p.len() > 5, "{} produced a trivial program", w.name());
        }
    }
}
