//! Tiny deterministic kernels shared by the fault-injection test
//! suites (they are not part of the 33-program proxy suite).
//!
//! The campaign tests in `avf-inject` and the loopback determinism
//! tests in `avf-service` must exercise *the same* workload — a drifted
//! copy would silently decouple what those suites measure — so the
//! kernels live here, next to the other synthetic programs.

use avf_isa::{Opcode, Program, ProgramBuilder, Reg, DATA_BASE};

/// The mixed-liveness kernel of the campaign tests: a live accumulator
/// chain plus stores, so structures converge at very different rates.
///
/// Sixteen registers stay architecturally live across the whole loop —
/// every iteration folds each of them into a stored accumulator and
/// then updates them in place — the paper's long dependency-distance
/// pattern, the shape that maximizes register-file AVF.
#[must_use]
pub fn register_chain() -> Program {
    let acc = Reg::of(1);
    let counter = Reg::of(2);
    let base = Reg::of(3);
    let mut b = ProgramBuilder::new("register-chain");
    b.addi(counter, Reg::ZERO, 200);
    b.load_addr(base, DATA_BASE);
    b.addi(acc, Reg::ZERO, 1);
    for k in 8..24u8 {
        b.addi(Reg::of(k), Reg::ZERO, i16::from(k));
    }
    let top = b.here();
    for k in 8..24u8 {
        b.alu_rr(Opcode::Xor, acc, acc, Reg::of(k));
    }
    for k in 8..24u8 {
        b.alu_ri(Opcode::Add, Reg::of(k), Reg::of(k), i16::from(k));
    }
    b.stq(acc, base, 0);
    b.subi(counter, counter, 1);
    b.bne(counter, top);
    b.halt();
    b.build().expect("valid program")
}

/// A deliberately un-ACE kernel at the opposite extreme: every
/// iteration computes values into registers that the next iteration
/// unconditionally overwrites, and nothing is ever stored. The only
/// live state is the loop counter and the (constant) operand
/// registers, so almost every flip must be masked.
#[must_use]
pub fn idle_loop() -> Program {
    let counter = Reg::of(1);
    let mut b = ProgramBuilder::new("idle-loop");
    b.addi(counter, Reg::ZERO, 400);
    let top = b.here();
    for dead in 8..16u8 {
        b.addi(Reg::of(dead), Reg::ZERO, i16::from(dead));
    }
    b.subi(counter, counter, 1);
    b.bne(counter, top);
    b.halt();
    b.build().expect("valid program")
}
