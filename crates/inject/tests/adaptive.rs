//! Campaign engine v2 properties: adaptive determinism across thread
//! counts, sequential-sampling early exit, checkpoint-restore
//! equivalence, and the adaptive-beats-fixed efficiency claim.

use avf_inject::{
    classify_trial, golden_run_checkpointed, Campaign, CampaignConfig, SamplingPlan, StopReason,
};
use avf_sim::{golden_run, InjectionSim, InjectionTarget, MachineConfig};

use avf_workloads::testkit::register_chain;

fn adaptive_config(ci_target: f64, cap: u64, threads: usize) -> CampaignConfig {
    CampaignConfig {
        injections: cap,
        seed: 11,
        threads,
        instr_budget: 6_000,
        ci_target: Some(ci_target),
        batch_size: 64,
        ..CampaignConfig::default()
    }
}

#[test]
fn adaptive_campaign_is_deterministic_across_thread_counts() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let reports: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| Campaign::new(&machine, &program, adaptive_config(0.12, 600, threads)).run())
        .collect();
    let (one, two, four) = (&reports[0], &reports[1], &reports[2]);
    assert_eq!(one.injections, two.injections);
    assert_eq!(one.injections, four.injections);
    assert_eq!(one.stop, two.stop);
    assert_eq!(one.stop, four.stop);
    assert_eq!(one.batches.len(), two.batches.len());
    assert_eq!(one.batches.len(), four.batches.len());
    for ((a, b), c) in one.targets.iter().zip(&two.targets).zip(&four.targets) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.counts, b.counts, "{}: 1 vs 2 threads differ", a.target);
        assert_eq!(a.counts, c.counts, "{}: 1 vs 4 threads differ", a.target);
    }
    for (a, b) in one.batches.iter().zip(&four.batches) {
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.cumulative, b.cumulative);
        assert_eq!(a.widest, b.widest);
        assert_eq!(a.max_half_width.to_bits(), b.max_half_width.to_bits());
    }
}

#[test]
fn loose_ci_target_exits_early() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    // ±0.45 is satisfied by almost any data: the first batch must
    // already converge every target, far below the cap.
    let report = Campaign::new(&machine, &program, adaptive_config(0.45, 10_000, 1)).run();
    assert_eq!(report.stop, StopReason::CiTarget);
    assert!(
        report.injections <= 128,
        "one small batch should satisfy ±0.45, used {}",
        report.injections
    );
    assert!(report.converged_to(0.45), "{report}");
    assert_eq!(report.unreached(), 0);
}

#[test]
fn convergence_on_the_last_allowed_batch_reports_ci_target() {
    // The cap is spent by exactly the batch that converges every
    // target: the stop reason must credit the CI target, not the cap.
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let report = Campaign::new(
        &machine,
        &program,
        CampaignConfig {
            injections: 64,
            seed: 11,
            threads: 1,
            instr_budget: 6_000,
            ci_target: Some(0.45),
            batch_size: 64,
            ..CampaignConfig::default()
        },
    )
    .run();
    assert_eq!(report.injections, 64);
    assert!(report.converged_to(0.45));
    assert_eq!(report.stop, StopReason::CiTarget);
}

#[test]
fn trial_cap_stops_an_unreachable_target() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    // ±0.001 needs ~1M trials/structure; a 200-trial cap must win.
    let report = Campaign::new(&machine, &program, adaptive_config(0.001, 200, 2)).run();
    assert_eq!(report.stop, StopReason::TrialCap);
    assert_eq!(report.injections, 200);
    assert!(!report.converged_to(0.001));
}

#[test]
fn adaptive_reaches_precision_with_fewer_trials_than_fixed() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let ci_target = 0.11;
    let adaptive = Campaign::new(&machine, &program, adaptive_config(ci_target, 4_000, 2)).run();
    assert_eq!(
        adaptive.stop,
        StopReason::CiTarget,
        "adaptive must converge under the cap: {adaptive}"
    );
    assert!(adaptive.converged_to(ci_target));

    // A fixed round-robin campaign of the same total size spreads
    // trials evenly, so the slow-converging structures (the ones the
    // adaptive planner fed) must still be above the target — i.e. fixed
    // needs strictly more trials for the same precision.
    let fixed = Campaign::new(
        &machine,
        &program,
        CampaignConfig {
            injections: adaptive.injections,
            seed: 11,
            threads: 2,
            instr_budget: 6_000,
            ..CampaignConfig::default()
        },
    )
    .run();
    assert_eq!(fixed.injections, adaptive.injections);
    assert!(
        !fixed.converged_to(ci_target),
        "fixed plan with {} trials already meets ±{ci_target}; adaptive shows no gain",
        fixed.injections
    );
}

#[test]
fn checkpoint_restored_trials_classify_like_full_prefix_replay() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let instr_budget = 6_000;
    let golden = golden_run(&machine, &program, instr_budget);
    let (golden_cp, store) =
        golden_run_checkpointed(&machine, &program, instr_budget, golden.cycles / 7 + 1);
    assert_eq!(golden.digest, golden_cp.digest);
    assert_eq!(golden.cycles, golden_cp.cycles);
    assert!(store.len() >= 4, "several checkpoints in play");

    let plan = SamplingPlan::new(
        &machine,
        &InjectionTarget::ALL,
        160,
        golden.cycles,
        23,
        None,
    );
    for trial in plan.trials() {
        // Full-prefix replay: fresh sim walked from cycle 0.
        let mut slow = InjectionSim::new(&machine, &program, instr_budget);
        let a = classify_trial(&mut slow, trial, golden.digest);
        // Checkpointed fork: restore the nearest checkpoint, catch up.
        let mut fast = InjectionSim::new(&machine, &program, instr_budget);
        let at = fast
            .restore_nearest(&store, trial.cycle)
            .expect("store covers every plan cycle");
        assert!(at <= trial.cycle);
        let b = classify_trial(&mut fast, trial, golden.digest);
        assert_eq!(
            a, b,
            "trial {} ({} cycle {} entry {} bit {}) diverged",
            trial.index, trial.target, trial.cycle, trial.entry, trial.bit
        );
    }
}

#[test]
fn fixed_and_adaptive_record_progress_metadata() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let fixed = Campaign::new(
        &machine,
        &program,
        CampaignConfig {
            injections: 64,
            seed: 5,
            threads: 1,
            instr_budget: 6_000,
            ..CampaignConfig::default()
        },
    )
    .run();
    assert_eq!(fixed.stop, StopReason::FixedPlan);
    assert_eq!(fixed.batches.len(), 1);
    assert_eq!(fixed.batches[0].cumulative, 64);
    assert!(fixed.checkpoints >= 1);
    assert!(fixed.ci_target.is_none());

    let adaptive = Campaign::new(&machine, &program, adaptive_config(0.2, 800, 1)).run();
    assert!(!adaptive.batches.is_empty());
    let last = adaptive.batches.last().unwrap();
    assert_eq!(last.cumulative, adaptive.injections);
    assert!(
        adaptive
            .batches
            .windows(2)
            .all(|w| w[0].max_half_width >= w[1].max_half_width - 0.05),
        "convergence should be broadly monotone: {:?}",
        adaptive.batches
    );
    // Display renders the batch lines and stop reason.
    let text = adaptive.to_string();
    assert!(text.contains("batch"));
    assert!(text.contains("adaptive stop"));
}
