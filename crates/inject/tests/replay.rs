//! Micro-op replay oracle: classification-model tests.
//!
//! Three properties pin the replay oracle's contract:
//!
//! 1. **Data-field equivalence** — flips in pure data fields (register
//!    file, cache arrays, DTLB, the LQ/SQ data halves) classify
//!    identically under `trap` and `replay`; only queueing-structure
//!    control/tag handling moves between the models.
//! 2. **Determinism** — a replay campaign's outcome tallies are
//!    independent of the worker thread count, exactly like the trap
//!    engine's.
//! 3. **Taxonomy** — a corrupted entry that decodes to an
//!    architecturally impossible state (a destination tag past the
//!    physical register file) is classified `ReplayDiverged` without
//!    mutating machine state, while padding bits of the byte-aligned
//!    tag fields mask.

use avf_inject::{
    classify_trial, golden_run_checkpointed, Campaign, CampaignConfig, FaultModel, FlipEffect,
    InjectionTarget, MaskReason, Outcome, Trial,
};
use avf_sim::{InjectionSim, MachineConfig};
use avf_workloads::testkit::register_chain;

fn campaign_counts(
    model: FaultModel,
    threads: usize,
    targets: Vec<InjectionTarget>,
) -> Vec<(InjectionTarget, avf_inject::OutcomeCounts)> {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = CampaignConfig {
        injections: 400,
        seed: 7,
        threads,
        instr_budget: 6_000,
        targets,
        fault_model: model,
        ..CampaignConfig::default()
    };
    Campaign::new(&machine, &program, config)
        .run()
        .targets
        .into_iter()
        .map(|t| (t.target, t.counts))
        .collect()
}

#[test]
fn data_field_flips_classify_identically_under_both_models() {
    // Campaign-level: the pure data-field structures must tally
    // identically — the fault model only governs ROB/IQ/LQ/SQ
    // control/tag handling.
    let data_targets = vec![
        InjectionTarget::RegFile,
        InjectionTarget::Dl1,
        InjectionTarget::L2,
        InjectionTarget::Dtlb,
    ];
    let trap = campaign_counts(FaultModel::Trap, 2, data_targets.clone());
    let replay = campaign_counts(FaultModel::Replay, 2, data_targets);
    assert_eq!(trap, replay, "data-field tallies must not depend on model");
}

#[test]
fn lsq_data_half_flips_classify_identically_under_both_models() {
    // Direct per-trial equivalence on the LQ/SQ *data halves* (bits
    // 64..128), which a campaign cannot sample in isolation.
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let (golden, store) = golden_run_checkpointed(&machine, &program, 6_000, 256);
    let mut compared = 0u64;
    for target in [InjectionTarget::Lq, InjectionTarget::Sq] {
        for cycle in (1..golden.cycles).step_by(199) {
            for entry in [0u64, 1, 5] {
                for bit in [64u32, 77, 100, 127] {
                    let mut outcomes = Vec::new();
                    for model in [FaultModel::Trap, FaultModel::Replay] {
                        let mut sim = InjectionSim::new(&machine, &program, 6_000);
                        sim.set_fault_model(model);
                        sim.restore_nearest(&store, cycle).expect("store decodes");
                        let trial = Trial {
                            index: 0,
                            target,
                            cycle,
                            entry,
                            bit,
                        };
                        outcomes.push(classify_trial(&mut sim, &trial, golden.digest));
                    }
                    assert_eq!(
                        outcomes[0], outcomes[1],
                        "{target} data-half bit {bit} at cycle {cycle} entry {entry}"
                    );
                    compared += 1;
                }
            }
        }
    }
    assert!(compared > 50, "swept a real sample, not an empty loop");
}

#[test]
fn replay_campaign_is_deterministic_across_thread_counts() {
    let all = InjectionTarget::ALL.to_vec();
    let one = campaign_counts(FaultModel::Replay, 1, all.clone());
    let two = campaign_counts(FaultModel::Replay, 2, all.clone());
    let four = campaign_counts(FaultModel::Replay, 4, all);
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(one, four, "1 vs 4 threads");
}

#[test]
fn impossible_decode_classifies_replay_diverged() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let (golden, _) = golden_run_checkpointed(&machine, &program, 6_000, 256);
    let mut sim = InjectionSim::new(&machine, &program, 6_000);
    assert!(sim.run_to_cycle(golden.cycles / 2));

    // Baseline has 80 physical registers (7 implemented tag bits).
    // Flipping implemented tag bit 6 of a destination tag in 16..64
    // lands on register number 80..127: architecturally impossible.
    // ROB control bit 64 + 6 is that tag bit.
    assert_eq!(machine.phys_regs, 80, "test assumes the baseline file");
    let mut diverged_at = None;
    for entry in 0..machine.rob_entries as u64 {
        if sim.probe_bit(InjectionTarget::Rob, entry, 64 + 6) == FlipEffect::Diverged {
            diverged_at = Some(entry);
            break;
        }
    }
    let entry = diverged_at.expect("some in-flight dest tag flips out of the physical file");

    // Probe and flip agree, no state is mutated, and the campaign
    // classification is the dedicated ReplayDiverged bucket.
    let before = sim.snapshot_wire();
    assert_eq!(
        sim.flip_bit(InjectionTarget::Rob, entry, 64 + 6),
        FlipEffect::Diverged
    );
    assert_eq!(sim.snapshot_wire(), before, "diverged flips mutate nothing");
    let trial = Trial {
        index: 0,
        target: InjectionTarget::Rob,
        cycle: sim.cycle(),
        entry,
        bit: 64 + 6,
    };
    assert_eq!(
        classify_trial(&mut sim, &trial, golden.digest),
        Outcome::ReplayDiverged
    );

    // The same field's padding bit (bit 7 of the byte-aligned tag) has
    // no storage behind it and masks instead.
    assert_eq!(
        sim.probe_bit(InjectionTarget::Rob, entry, 64 + 7),
        FlipEffect::Masked(MaskReason::UnAceBits)
    );

    // Under the trap model the same control-field flip is a blanket
    // detected error — the coarseness the oracle replaces.
    sim.set_fault_model(FaultModel::Trap);
    assert_eq!(
        sim.probe_bit(InjectionTarget::Rob, entry, 64 + 6),
        FlipEffect::Armed
    );
}

#[test]
fn replay_reaches_in_flight_consumers_the_trap_model_misses() {
    // The core fidelity claim: a corrupted result whose architected
    // register is already renamed past (trap: Masked(Overwritten)) is
    // still consumed by in-flight, not-yet-issued readers — the replay
    // walk re-executes them and the corruption reaches program output.
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let (golden, store) = golden_run_checkpointed(&machine, &program, 6_000, 128);
    let mut witnessed = false;
    'search: for cycle in (golden.cycles / 4..golden.cycles).step_by(97) {
        for entry in 0..machine.rob_entries as u64 {
            for bit in [0u32, 13] {
                let trial = Trial {
                    index: 0,
                    target: InjectionTarget::Rob,
                    cycle,
                    entry,
                    bit,
                };
                let mut trap_sim = InjectionSim::new(&machine, &program, 6_000);
                trap_sim.set_fault_model(FaultModel::Trap);
                trap_sim.restore_nearest(&store, cycle).expect("restores");
                assert!(trap_sim.run_to_cycle(cycle));
                if trap_sim.probe_bit(InjectionTarget::Rob, entry, bit)
                    != FlipEffect::Masked(MaskReason::Overwritten)
                {
                    continue;
                }
                let mut replay_sim = InjectionSim::new(&machine, &program, 6_000);
                replay_sim.set_fault_model(FaultModel::Replay);
                replay_sim.restore_nearest(&store, cycle).expect("restores");
                if classify_trial(&mut replay_sim, &trial, golden.digest) == Outcome::Sdc {
                    witnessed = true;
                    break 'search;
                }
            }
        }
    }
    assert!(
        witnessed,
        "no overwritten-in-trap flip produced an SDC under replay — \
         the in-flight walk is not propagating"
    );
}
