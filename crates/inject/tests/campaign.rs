//! Campaign-level properties: determinism, the un-ACE/ACE extremes,
//! and measured-vs-ACE consistency.

use avf_inject::{Campaign, CampaignConfig, InjectionTarget, Verdict};
use avf_isa::Program;
use avf_sim::MachineConfig;

use avf_workloads::testkit::{idle_loop, register_chain};

fn campaign(
    program: &Program,
    injections: u64,
    threads: usize,
    seed: u64,
) -> avf_inject::CampaignReport {
    let machine = MachineConfig::baseline();
    let config = CampaignConfig {
        injections,
        seed,
        threads,
        instr_budget: 6_000,
        ..CampaignConfig::default()
    };
    Campaign::new(&machine, program, config).run()
}

#[test]
fn same_seed_same_outcome_counts_across_thread_counts() {
    let program = register_chain();
    let a = campaign(&program, 96, 1, 7);
    let b = campaign(&program, 96, 3, 7);
    let c = campaign(&program, 96, 1, 7);
    for ((ta, tb), tc) in a.targets.iter().zip(&b.targets).zip(&c.targets) {
        assert_eq!(ta.target, tb.target);
        assert_eq!(ta.counts, tb.counts, "{}: 1 vs 3 threads differ", ta.target);
        assert_eq!(ta.counts, tc.counts, "{}: repeat run differs", ta.target);
        assert_eq!(ta.ace_avf.to_bits(), tc.ace_avf.to_bits());
    }
}

#[test]
fn different_seeds_sample_differently() {
    let program = register_chain();
    let a = campaign(&program, 96, 1, 1);
    let b = campaign(&program, 96, 1, 2);
    let a_counts: Vec<_> = a.targets.iter().map(|t| t.counts).collect();
    let b_counts: Vec<_> = b.targets.iter().map(|t| t.counts).collect();
    assert_ne!(
        a_counts, b_counts,
        "independent seeds should not tally identically"
    );
}

#[test]
fn un_ace_idle_loop_measures_near_zero_avf() {
    let program = idle_loop();
    let report = campaign(&program, 400, 0, 42);
    let total: u64 = report.targets.iter().map(|t| t.counts.total()).sum();
    let unmasked: u64 = report.targets.iter().map(|t| t.counts.unmasked()).sum();
    let overall = unmasked as f64 / total as f64;
    assert!(
        overall < 0.05,
        "idle loop measured overall AVF {overall:.4}; expected ~0 (unmasked {unmasked}/{total})"
    );
    // The register file specifically: only the loop counter is live.
    let rf = report
        .targets
        .iter()
        .find(|t| t.target == InjectionTarget::RegFile)
        .expect("RF targeted");
    assert!(
        rf.measured_avf() < 0.1,
        "idle-loop RF AVF {:.4} should be close to zero",
        rf.measured_avf()
    );
    assert!(report.consistent(), "ACE must still bound the idle loop");
}

#[test]
fn register_chain_rf_avf_consistent_with_ace() {
    let program = register_chain();
    let report = campaign(&program, 600, 0, 42);
    let rf = report
        .targets
        .iter()
        .find(|t| t.target == InjectionTarget::RegFile)
        .expect("RF targeted");
    // The chain keeps live values in flight continuously: injection
    // must see real vulnerability...
    assert!(
        rf.measured_avf() > 0.05,
        "register-chain RF AVF {:.4} should be clearly nonzero",
        rf.measured_avf()
    );
    // ...and the ACE estimate must be consistent with the measurement:
    // inside the 95% CI, or above it (ACE's documented conservatism),
    // never below.
    assert_ne!(
        rf.verdict(),
        Verdict::Violation,
        "ACE RF AVF {:.4} lies below the measured CI {:?}",
        rf.ace_avf,
        rf.ci95()
    );
    let (lo, _hi) = rf.ci95();
    assert!(
        rf.ace_avf >= lo,
        "ACE estimate {:.4} must not undercut the measurement CI floor {lo:.4}",
        rf.ace_avf
    );
    // Whole-report soundness: no structure may violate the bound.
    assert!(report.consistent(), "{report}");
}

#[test]
fn sdc_and_due_both_observed_on_live_code() {
    let program = register_chain();
    let report = campaign(&program, 600, 0, 42);
    let sdc: u64 = report.targets.iter().map(|t| t.counts.sdc).sum();
    let due: u64 = report.targets.iter().map(|t| t.counts.due).sum();
    assert!(sdc > 0, "a live register chain with stores must show SDCs");
    assert!(due > 0, "control-state and DTLB faults must show DUEs");
}
