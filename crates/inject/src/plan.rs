//! Deterministic sampling plans.
//!
//! AVF is defined over a structure's bit×cycle space, so an unbiased
//! estimator samples the injection cycle uniformly over the golden
//! run's cycles, the entry uniformly over the structure's *physical*
//! entries (vacant entries are legitimate masked samples — idle state
//! is exactly what makes AVF less than occupancy), and the bit
//! uniformly over the entry's bits.
//!
//! Every trial's sample is a pure function of `(seed, batch, index)`,
//! so plans — and therefore campaign outcomes — are independent of
//! thread count and execution order, and an adaptive campaign can grow
//! batch by batch without re-randomizing what came before.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_prune::PruneMap;
use avf_sim::{InjectionTarget, MachineConfig};

/// Sentinel batch id of the audit sampling stream (`--prune audit`),
/// disjoint from the sequential batch ids of the estimation stream.
pub const AUDIT_BATCH: u64 = u64::MAX;

/// Redraw bound per planned trial before the plan gives up on a
/// stratum. Expected redraws are `1/w` (residual sampling) or
/// `1/(1-w)` (audit sampling); a stratum needing more than this is too
/// thin to sample and the planner skips it rather than spinning.
const MAX_REDRAWS: u32 = 65_536;

/// One planned injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Global trial index (stable across thread counts and batches).
    pub index: u64,
    /// Structure to inject into.
    pub target: InjectionTarget,
    /// Cycle at which to inject (within the golden run).
    pub cycle: u64,
    /// Physical entry index within the structure.
    pub entry: u64,
    /// Bit index within the entry.
    pub bit: u32,
}

impl Trial {
    /// Bytes one trial occupies on the wire (all fields fixed-width).
    pub const WIRE_BYTES: usize = 8 + 1 + 8 + 8 + 4;

    /// Serializes the trial into a wire writer.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u64(self.index);
        w.u8(self.target.wire_code());
        w.u64(self.cycle);
        w.u64(self.entry);
        w.u32(self.bit);
    }

    /// Decodes a trial written by [`Trial::encode`]. Geometry bounds
    /// (`entry`, `bit`) are validated by the executing simulator, which
    /// holds the machine configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or an unknown target code.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Trial, WireError> {
        let index = r.u64()?;
        let code = r.u8()?;
        let target = InjectionTarget::from_wire_code(code).ok_or(WireError::BadTag(code))?;
        Ok(Trial {
            index,
            target,
            cycle: r.u64()?,
            entry: r.u64()?,
            bit: r.u32()?,
        })
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection, so consecutive
/// inputs map to statistically independent outputs.
///
/// The previous scheme seeded each trial's RNG with
/// `seed ^ (index * K + index)` — a *linear* mix, under which nearby
/// campaign seeds produce correlated per-trial streams (seed `s` and
/// `s ^ 1` differ in one input bit, and `SmallRng`'s seeding does not
/// repair that). Running the tuple through a proper finalizer makes
/// every `(seed, batch, index)` point an independent draw.
fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Weyl-sequence increment of the SplitMix64 generator.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The RNG for one trial, derived purely from `(seed, batch, index)`.
fn trial_rng(seed: u64, batch: u64, index: u64) -> SmallRng {
    // Two chained SplitMix64 streams: the campaign seed and batch pick a
    // stream, the trial index picks a point in it.
    let stream = splitmix64(seed.wrapping_add(batch.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)));
    SmallRng::seed_from_u64(splitmix64(
        stream.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
    ))
}

/// One batch's worth of trials, derived purely from the seed.
///
/// Execution-order concerns (cycle-sorting, striding across workers)
/// belong to the backend that runs the plan —
/// [`crate::backend::shard_trials`] — not to the plan itself.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    /// Trials in plan (global index) order.
    trials: Vec<Trial>,
}

impl SamplingPlan {
    /// Plans `injections` trials split round-robin across `targets`,
    /// with injection cycles in `[1, cycles)` — the fixed-size plan of a
    /// non-adaptive campaign (batch 0 of the sampling stream).
    ///
    /// With a [`PruneMap`], each trial redraws until it lands in the
    /// residual stratum — still a pure function of `(seed, batch,
    /// index)`, so stratified plans stay venue- and thread-independent.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `cycles < 2`.
    #[must_use]
    pub fn new(
        machine: &MachineConfig,
        targets: &[InjectionTarget],
        injections: u64,
        cycles: u64,
        seed: u64,
        prune: Option<&PruneMap>,
    ) -> SamplingPlan {
        assert!(
            !targets.is_empty(),
            "sampling plan needs at least one target"
        );
        let picks = (0..injections).map(|index| targets[(index % targets.len() as u64) as usize]);
        SamplingPlan::from_targets(machine, picks, cycles, seed, 0, 0, prune)
    }

    /// Plans one adaptive batch: `allocation` gives each target's trial
    /// count, `batch` and `first_index` place the batch in the
    /// campaign's sampling stream (`first_index` = trials planned so
    /// far, keeping global indices unique).
    ///
    /// # Panics
    ///
    /// Panics if `cycles < 2`.
    #[must_use]
    pub fn for_batch(
        machine: &MachineConfig,
        allocation: &[(InjectionTarget, u64)],
        cycles: u64,
        seed: u64,
        batch: u64,
        first_index: u64,
        prune: Option<&PruneMap>,
    ) -> SamplingPlan {
        let picks = allocation
            .iter()
            .flat_map(|&(target, n)| std::iter::repeat_n(target, n as usize));
        SamplingPlan::from_targets(machine, picks, cycles, seed, batch, first_index, prune)
    }

    /// Plans the audit stream of `--prune audit`: up to `per_target`
    /// deterministic samples drawn from each target's *pruned* strata
    /// (the inverse of residual sampling). Every one of these sites is
    /// claimed provably masked — the campaign injects into them and
    /// hard-fails on any non-masked outcome.
    ///
    /// Targets whose pruned mass is zero (or too thin to hit within the
    /// redraw bound) contribute no audit trials.
    #[must_use]
    pub fn audit(
        machine: &MachineConfig,
        map: &PruneMap,
        per_target: u64,
        cycles: u64,
        seed: u64,
    ) -> SamplingPlan {
        assert!(
            cycles >= 2,
            "golden run too short to sample injection cycles"
        );
        let sizes = machine.structure_sizes();
        let mut trials = Vec::new();
        let mut index = 0u64;
        for target in InjectionTarget::ALL {
            if map.of(target).pruned() == 0 {
                continue;
            }
            for _ in 0..per_target {
                let mut rng = trial_rng(seed, AUDIT_BATCH, index);
                let entries = target.entries(machine);
                let bits = target.entry_bits(&sizes);
                for _ in 0..MAX_REDRAWS {
                    let cycle = rng.gen_range(1..cycles);
                    let entry = rng.gen_range(0..entries);
                    let bit = rng.gen_range(0..bits);
                    if map.is_pruned(target, entry, bit, cycle) {
                        trials.push(Trial {
                            index,
                            target,
                            cycle,
                            entry,
                            bit,
                        });
                        index += 1;
                        break;
                    }
                }
            }
        }
        SamplingPlan { trials }
    }

    #[allow(clippy::too_many_arguments)]
    fn from_targets(
        machine: &MachineConfig,
        picks: impl Iterator<Item = InjectionTarget>,
        cycles: u64,
        seed: u64,
        batch: u64,
        first_index: u64,
        prune: Option<&PruneMap>,
    ) -> SamplingPlan {
        assert!(
            cycles >= 2,
            "golden run too short to sample injection cycles"
        );
        let sizes = machine.structure_sizes();
        let trials: Vec<Trial> = picks
            .enumerate()
            .map(|(offset, target)| {
                let index = first_index + offset as u64;
                let mut rng = trial_rng(seed, batch, index);
                let entries = target.entries(machine);
                let bits = target.entry_bits(&sizes);
                let mut redraws = 0u32;
                loop {
                    let cycle = rng.gen_range(1..cycles);
                    let entry = rng.gen_range(0..entries);
                    let bit = rng.gen_range(0..bits);
                    let pruned = prune.is_some_and(|m| m.is_pruned(target, entry, bit, cycle));
                    if !pruned {
                        break Trial {
                            index,
                            target,
                            cycle,
                            entry,
                            bit,
                        };
                    }
                    redraws += 1;
                    assert!(
                        redraws < MAX_REDRAWS,
                        "{target}: residual stratum too thin to sample \
                         (allocator must skip fully-pruned targets)"
                    );
                }
            })
            .collect();
        assert!(
            u32::try_from(trials.len()).is_ok(),
            "a single plan is capped at u32::MAX trials"
        );
        SamplingPlan { trials }
    }

    /// All trials in plan order.
    #[must_use]
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of planned trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the plan holds no trials.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_in_range() {
        let machine = MachineConfig::baseline();
        let a = SamplingPlan::new(&machine, &InjectionTarget::ALL, 500, 10_000, 7, None);
        let b = SamplingPlan::new(&machine, &InjectionTarget::ALL, 500, 10_000, 7, None);
        assert_eq!(a.trials(), b.trials());
        let sizes = machine.structure_sizes();
        for t in a.trials() {
            assert!((1..10_000).contains(&t.cycle));
            assert!(t.entry < t.target.entries(&machine));
            assert!(t.bit < t.target.entry_bits(&sizes));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let machine = MachineConfig::baseline();
        let a = SamplingPlan::new(&machine, &InjectionTarget::ALL, 100, 10_000, 1, None);
        let b = SamplingPlan::new(&machine, &InjectionTarget::ALL, 100, 10_000, 2, None);
        assert_ne!(a.trials(), b.trials());
    }

    #[test]
    fn nearby_seeds_are_uncorrelated() {
        // Regression for the linear `seed ^ mix(index)` derivation:
        // adjacent seeds must not share any aligned samples. With
        // independent draws the chance of one aligned (cycle, entry,
        // bit) collision in 1000 trials is ~1000/9999 per the cycle
        // dimension alone times entry/bit — effectively zero across all
        // four seed pairs; the old scheme collides almost everywhere.
        let machine = MachineConfig::baseline();
        for base in [0u64, 41, 1 << 32, u64::MAX - 1] {
            let a = SamplingPlan::new(&machine, &InjectionTarget::ALL, 1000, 10_000, base, None);
            let b = SamplingPlan::new(
                &machine,
                &InjectionTarget::ALL,
                1000,
                10_000,
                base + 1,
                None,
            );
            let aligned = a
                .trials()
                .iter()
                .zip(b.trials())
                .filter(|(x, y)| (x.cycle, x.entry, x.bit) == (y.cycle, y.entry, y.bit))
                .count();
            assert!(
                aligned <= 2,
                "seeds {base} and {} share {aligned}/1000 aligned samples",
                base + 1
            );
        }
    }

    #[test]
    fn batches_extend_the_stream_without_re_randomizing() {
        let machine = MachineConfig::baseline();
        let alloc = [(InjectionTarget::Rob, 5u64), (InjectionTarget::Iq, 3)];
        let b1 = SamplingPlan::for_batch(&machine, &alloc, 5_000, 9, 1, 100, None);
        let b1_again = SamplingPlan::for_batch(&machine, &alloc, 5_000, 9, 1, 100, None);
        assert_eq!(b1.trials(), b1_again.trials());
        assert_eq!(b1.len(), 8);
        assert_eq!(b1.trials()[0].index, 100);
        assert_eq!(b1.trials()[7].index, 107);
        assert_eq!(
            b1.trials()
                .iter()
                .filter(|t| t.target == InjectionTarget::Rob)
                .count(),
            5
        );
        // A different batch index at the same global indices samples
        // fresh points.
        let b2 = SamplingPlan::for_batch(&machine, &alloc, 5_000, 9, 2, 100, None);
        assert_ne!(b1.trials(), b2.trials());
    }

    #[test]
    fn splitmix_finalizer_avalanches() {
        // Flipping one input bit must flip roughly half the output bits.
        for x in [0u64, 1, 42, u64::MAX] {
            for bit in [0, 17, 63] {
                let d = (splitmix64(x) ^ splitmix64(x ^ (1 << bit))).count_ones();
                assert!((8..56).contains(&d), "weak avalanche: {x} bit {bit}: {d}");
            }
        }
    }
}
