//! Deterministic sampling plans.
//!
//! AVF is defined over a structure's bit×cycle space, so an unbiased
//! estimator samples the injection cycle uniformly over the golden
//! run's cycles, the entry uniformly over the structure's *physical*
//! entries (vacant entries are legitimate masked samples — idle state
//! is exactly what makes AVF less than occupancy), and the bit
//! uniformly over the entry's bits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use avf_sim::{InjectionTarget, MachineConfig};

/// One planned injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Global trial index (stable across thread counts).
    pub index: u64,
    /// Structure to inject into.
    pub target: InjectionTarget,
    /// Cycle at which to inject (within the golden run).
    pub cycle: u64,
    /// Physical entry index within the structure.
    pub entry: u64,
    /// Bit index within the entry.
    pub bit: u32,
}

/// A full campaign's worth of trials, derived purely from the seed.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    trials: Vec<Trial>,
}

impl SamplingPlan {
    /// Plans `injections` trials split round-robin across `targets`,
    /// with injection cycles in `[1, cycles)`.
    ///
    /// Every trial is derived from `(seed, index)` alone, so the plan —
    /// and therefore the campaign outcome — is independent of thread
    /// count and execution order.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `cycles < 2`.
    #[must_use]
    pub fn new(
        machine: &MachineConfig,
        targets: &[InjectionTarget],
        injections: u64,
        cycles: u64,
        seed: u64,
    ) -> SamplingPlan {
        assert!(
            !targets.is_empty(),
            "sampling plan needs at least one target"
        );
        assert!(
            cycles >= 2,
            "golden run too short to sample injection cycles"
        );
        let sizes = machine.structure_sizes();
        let trials = (0..injections)
            .map(|index| {
                let target = targets[(index % targets.len() as u64) as usize];
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ index
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(index),
                );
                Trial {
                    index,
                    target,
                    cycle: rng.gen_range(1..cycles),
                    entry: rng.gen_range(0..target.entries(machine)),
                    bit: rng.gen_range(0..target.entry_bits(&sizes)),
                }
            })
            .collect();
        SamplingPlan { trials }
    }

    /// All trials in plan order.
    #[must_use]
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// The trials assigned to worker `worker` of `workers`, sorted by
    /// injection cycle so one forward simulation pass (with
    /// snapshot/fork at each point) covers them all.
    ///
    /// Striding over the cycle-sorted order balances the per-trial
    /// tail-replay cost across workers.
    #[must_use]
    pub fn shard(&self, worker: usize, workers: usize) -> Vec<Trial> {
        let mut sorted: Vec<Trial> = self.trials.clone();
        sorted.sort_by_key(|t| (t.cycle, t.index));
        sorted
            .into_iter()
            .skip(worker)
            .step_by(workers.max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_in_range() {
        let machine = MachineConfig::baseline();
        let a = SamplingPlan::new(&machine, &InjectionTarget::ALL, 500, 10_000, 7);
        let b = SamplingPlan::new(&machine, &InjectionTarget::ALL, 500, 10_000, 7);
        assert_eq!(a.trials(), b.trials());
        let sizes = machine.structure_sizes();
        for t in a.trials() {
            assert!((1..10_000).contains(&t.cycle));
            assert!(t.entry < t.target.entries(&machine));
            assert!(t.bit < t.target.entry_bits(&sizes));
        }
    }

    #[test]
    fn shards_partition_the_plan() {
        let machine = MachineConfig::baseline();
        let plan = SamplingPlan::new(&machine, &InjectionTarget::ALL, 101, 5_000, 3);
        let mut seen: Vec<u64> = (0..4)
            .flat_map(|w| plan.shard(w, 4))
            .map(|t| t.index)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..101).collect::<Vec<_>>());
        for w in 0..4 {
            let shard = plan.shard(w, 4);
            assert!(
                shard.windows(2).all(|p| p[0].cycle <= p[1].cycle),
                "shards cycle-sorted"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let machine = MachineConfig::baseline();
        let a = SamplingPlan::new(&machine, &InjectionTarget::ALL, 100, 10_000, 1);
        let b = SamplingPlan::new(&machine, &InjectionTarget::ALL, 100, 10_000, 2);
        assert_ne!(a.trials(), b.trials());
    }
}
