//! Outcome bookkeeping and binomial confidence intervals.

use crate::Outcome;

/// Per-structure tally of classified trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Trials with no architecturally visible effect.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Detected unrecoverable errors.
    pub due: u64,
    /// Replay-oracle trials whose corrupted entry decoded to an
    /// architecturally impossible state. Unmasked (DUE-grade: hardware
    /// machine-checks malformed scheduling state), tallied separately.
    pub diverged: u64,
    /// Trials whose planned injection cycle the fault-free prefix never
    /// reached (a plan/golden mismatch). These are *invalid samples*,
    /// not observations: they are excluded from the AVF estimate and its
    /// interval, and reported so a nonzero count is visible instead of
    /// silently injecting at the wrong cycle.
    pub unreached: u64,
}

impl OutcomeCounts {
    /// Records one classified trial.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Due => self.due += 1,
            Outcome::ReplayDiverged => self.diverged += 1,
            Outcome::Unreached => self.unreached += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: OutcomeCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.due += other.due;
        self.diverged += other.diverged;
        self.unreached += other.unreached;
    }

    /// Total *valid* trials recorded (excludes unreached trials, which
    /// carry no observation).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due + self.diverged
    }

    /// Unmasked trials (the AVF numerator: SDC + DUE + diverged).
    #[must_use]
    pub fn unmasked(&self) -> u64 {
        self.sdc + self.due + self.diverged
    }

    /// Injection-measured AVF: the unmasked fraction.
    #[must_use]
    pub fn avf(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unmasked() as f64 / self.total() as f64
        }
    }

    /// 95% Wilson score interval around [`OutcomeCounts::avf`].
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        wilson_interval(self.unmasked(), self.total(), 1.96)
    }

    /// Half-width of [`OutcomeCounts::ci95`] — the adaptive planner's
    /// per-structure precision measure (and its stopping criterion).
    #[must_use]
    pub fn half_width95(&self) -> f64 {
        let (lo, hi) = self.ci95();
        (hi - lo) / 2.0
    }
}

/// Wilson score interval for `successes` out of `n` Bernoulli trials at
/// normal quantile `z` (1.96 for 95%).
///
/// Preferred over the normal approximation because injection campaigns
/// routinely measure proportions at or near 0 (fully masked structures),
/// where the Wald interval collapses to a meaningless `[0, 0]`.
#[must_use]
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    let lo = ((center - margin) / denom).max(0.0);
    let hi = ((center + margin) / denom).min(1.0);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_avf() {
        let mut c = OutcomeCounts::default();
        for _ in 0..70 {
            c.record(Outcome::Masked);
        }
        for _ in 0..20 {
            c.record(Outcome::Sdc);
        }
        for _ in 0..10 {
            c.record(Outcome::Due);
        }
        assert_eq!(c.total(), 100);
        assert_eq!(c.unmasked(), 30);
        assert!((c.avf() - 0.3).abs() < 1e-12);
        let (lo, hi) = c.ci95();
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(hi - lo < 0.2, "CI at n=100 should be tighter than ±10%");
    }

    #[test]
    fn wilson_handles_extremes() {
        let (lo, hi) = wilson_interval(0, 500, 1.96);
        assert_eq!(lo, 0.0);
        assert!(
            hi > 0.0 && hi < 0.02,
            "zero successes still bound away from 0: {hi}"
        );
        let (lo, hi) = wilson_interval(500, 500, 1.96);
        assert!(hi > 0.9999, "all-successes upper bound ~1: {hi}");
        assert!(lo > 0.98);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn interval_tightens_with_n() {
        let (lo_s, hi_s) = wilson_interval(5, 10, 1.96);
        let (lo_l, hi_l) = wilson_interval(500, 1000, 1.96);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = OutcomeCounts {
            masked: 1,
            sdc: 2,
            due: 3,
            diverged: 0,
            unreached: 0,
        };
        a.merge(OutcomeCounts {
            masked: 10,
            sdc: 20,
            due: 30,
            diverged: 0,
            unreached: 1,
        });
        assert_eq!(
            a,
            OutcomeCounts {
                masked: 11,
                sdc: 22,
                due: 33,
                diverged: 0,
                unreached: 1,
            }
        );
    }

    #[test]
    fn unreached_trials_carry_no_observation() {
        let mut c = OutcomeCounts::default();
        c.record(Outcome::Masked);
        c.record(Outcome::Unreached);
        assert_eq!(c.total(), 1, "unreached excluded from the denominator");
        assert_eq!(c.unreached, 1);
        assert_eq!(c.avf(), 0.0);
    }

    #[test]
    fn half_width_is_half_the_interval() {
        let c = OutcomeCounts {
            masked: 70,
            sdc: 20,
            due: 10,
            diverged: 0,
            unreached: 0,
        };
        let (lo, hi) = c.ci95();
        assert!((c.half_width95() - (hi - lo) / 2.0).abs() < 1e-15);
        assert_eq!(OutcomeCounts::default().half_width95(), 0.5);
    }
}
