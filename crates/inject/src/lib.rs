//! # avf-inject
//!
//! Parallel statistical fault-injection campaigns that cross-validate
//! the ACE-based AVF estimates of `avf-sim`/`avf-ace`.
//!
//! The paper's central claim — that the GA stressmark *bounds*
//! worst-case vulnerability — rests entirely on the ACE analysis behind
//! its SER fitness. The standard way to validate an ACE-derived AVF is
//! statistical fault injection (SFI): sample a (cycle, entry, bit)
//! point uniformly from a structure's bit×cycle space, flip it, run to
//! completion, and classify the outcome against a fault-free golden run
//! as **masked**, **SDC** (silent data corruption: program output
//! differs) or **DUE** (detected unrecoverable error: trap, wrong
//! translation, hang). The measured AVF is the unmasked fraction; with
//! a Wilson score interval it becomes a second, independent estimate of
//! the same quantity ACE analysis computes analytically — and because
//! ACE analysis is deliberately conservative, a sound simulator shows
//! `measured ≤ ACE` per structure, with equality approached on
//! fully-ACE code like the stressmark.
//!
//! ## Architecture
//!
//! * [`SamplingPlan`] — a deterministic, seed-derived list of trials
//!   (every trial's sample is a pure function of `(seed, trial index)`,
//!   so campaign results are identical for any thread count);
//! * [`Campaign`] — the embarrassingly parallel driver: trials are
//!   strided across worker threads, each worker walks one
//!   [`avf_sim::InjectionSim`] forward in cycle order and uses
//!   [`avf_sim::InjectionSim::snapshot`]/`restore` to fork at each
//!   injection point instead of re-simulating the prefix;
//! * [`CampaignReport`] — per-structure outcome counts, measured AVF
//!   with 95% Wilson confidence intervals, and the ACE AVF measured on
//!   the same run for side-by-side comparison.
//!
//! ## Example
//!
//! ```no_run
//! use avf_inject::{Campaign, CampaignConfig};
//! use avf_sim::MachineConfig;
//! # let program = avf_workloads::by_name("429.mcf").unwrap().build();
//!
//! let machine = MachineConfig::baseline();
//! let config = CampaignConfig { injections: 1000, seed: 42, ..CampaignConfig::default() };
//! let report = Campaign::new(&machine, &program, config).run();
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod plan;
mod report;
mod stats;

pub use campaign::{Campaign, CampaignConfig};
pub use plan::{SamplingPlan, Trial};
pub use report::{CampaignReport, TargetReport, Verdict};
pub use stats::{wilson_interval, OutcomeCounts};

pub use avf_sim::{FlipEffect, InjectionTarget, MaskReason, RunEnd};

/// Classified outcome of one injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No architecturally visible effect: the program produced the same
    /// output as the golden run (or the flip hit provably dead state).
    Masked,
    /// Silent data corruption: the run completed but program output
    /// differs from the golden run.
    Sdc,
    /// Detected unrecoverable error: trap, wrong translation consumed,
    /// control-state corruption, or a hang past the cycle budget.
    Due,
}
