//! # avf-inject
//!
//! Parallel statistical fault-injection campaigns that cross-validate
//! the ACE-based AVF estimates of `avf-sim`/`avf-ace`.
//!
//! The paper's central claim — that the GA stressmark *bounds*
//! worst-case vulnerability — rests entirely on the ACE analysis behind
//! its SER fitness. The standard way to validate an ACE-derived AVF is
//! statistical fault injection (SFI): sample a (cycle, entry, bit)
//! point uniformly from a structure's bit×cycle space, flip it, run to
//! completion, and classify the outcome against a fault-free golden run
//! as **masked**, **SDC** (silent data corruption: program output
//! differs) or **DUE** (detected unrecoverable error: trap, wrong
//! translation, hang). The measured AVF is the unmasked fraction; with
//! a Wilson score interval it becomes a second, independent estimate of
//! the same quantity ACE analysis computes analytically — and because
//! ACE analysis is deliberately conservative, a sound simulator shows
//! `measured ≤ ACE` per structure, with equality approached on
//! fully-ACE code like the stressmark.
//!
//! ## Architecture
//!
//! * [`SamplingPlan`] — a deterministic, seed-derived list of trials
//!   (every trial's sample is a pure function of `(seed, batch, trial
//!   index)` through a SplitMix64 finalizer, so campaign results are
//!   identical for any thread count and nearby seeds are uncorrelated);
//! * [`Campaign`] — the driver: the golden pass serializes periodic
//!   checkpoints ([`avf_sim::CheckpointStore`]), then batches of trials
//!   are submitted through the [`CampaignBackend`] protocol while the
//!   ACE reference simulation runs concurrently. With
//!   [`CampaignConfig::ci_target`] set, trials are planned in batches
//!   allocated to the structures with the widest Wilson intervals,
//!   stopping as soon as every target reaches the precision target
//!   (sequential sampling);
//! * [`CampaignBackend`] / [`CampaignSession`] — the execution seam: a
//!   backend binds a [`JobSpec`] (program, machine, budget, and a
//!   [`GoldenSpec`] saying whether the venue receives the checkpoint
//!   store or executes the golden pass itself) and streams per-trial
//!   [`TrialEvent`]s back as they complete. [`LocalBackend`] is the
//!   in-process thread pool (cycle-sorted strided shards, each worker
//!   restoring the nearest checkpoint and forking with
//!   [`avf_sim::InjectionSim::snapshot`]/`restore` at each injection
//!   point); `avf-service` adds a TCP `RemoteBackend` plus the matching
//!   long-running server — with content-hash checkpoint caching,
//!   parallel worker-side golden runs (digest cross-checked), and
//!   re-dispatch of a dead worker's unacknowledged trials — and a
//!   fixed seed yields identical reports on any of them, worker
//!   failures included;
//! * [`CampaignReport`] — per-structure outcome counts, measured AVF
//!   with 95% Wilson confidence intervals, per-batch convergence
//!   progress with the early-exit reason ([`StopReason`]), and the ACE
//!   AVF measured on the same run for side-by-side comparison.
//!
//! ## Example
//!
//! ```no_run
//! use avf_inject::{Campaign, CampaignConfig};
//! use avf_sim::MachineConfig;
//! # let program = avf_workloads::by_name("429.mcf").unwrap().build();
//!
//! let machine = MachineConfig::baseline();
//! let config = CampaignConfig { injections: 1000, seed: 42, ..CampaignConfig::default() };
//! let report = Campaign::new(&machine, &program, config).run();
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod backend;
mod campaign;
mod plan;
mod report;
mod stats;

pub use backend::{
    classify_trial, cycle_budget_of, decode_trial_batch, encode_trial_batch, shard_trials,
    BackendError, CampaignBackend, CampaignSession, DispatchRecord, GoldenSpec, JobSpec,
    LocalBackend, OpenedJob, StoreSource, TrialEvent, TrialStream, WorkerProvision,
};
pub use campaign::{Campaign, CampaignConfig, GoldenMode};
pub use plan::{SamplingPlan, Trial, AUDIT_BATCH};
pub use report::{BatchProgress, CampaignReport, StopReason, TargetReport, Verdict};
pub use stats::{wilson_interval, OutcomeCounts};

pub use avf_prune::{ProofTag, PruneMap, PruneMode};
pub use avf_sim::{
    golden_run_checkpointed, golden_run_with_evidence, CheckpointStore, DecodedCheckpoints,
    FaultModel, FlipEffect, InjectionTarget, MaskReason, PruneEvidence, RunEnd, PRUNE_WINDOW,
};

/// Classified outcome of one injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No architecturally visible effect: the program produced the same
    /// output as the golden run (or the flip hit provably dead state).
    Masked,
    /// Silent data corruption: the run completed but program output
    /// differs from the golden run.
    Sdc,
    /// Detected unrecoverable error: trap, wrong translation consumed,
    /// control-state corruption, or a hang past the cycle budget.
    Due,
    /// Invalid sample: the fault-free prefix ended before the planned
    /// injection cycle, so nothing was injected. Counted separately in
    /// the report and excluded from the AVF estimate (a healthy
    /// plan/golden pair never produces these).
    Unreached,
    /// The corrupted entry decodes to an architecturally impossible
    /// state (unencodable opcode or stage code, a register tag past the
    /// physical file or naming no live definition): the replay oracle
    /// cannot express the faulty machine. Counted as unmasked — real
    /// hardware detects exactly these malformed states (a machine
    /// check), so the taxonomy treats them as DUE-grade events — but
    /// tallied in its own bucket so the report shows how much of a
    /// structure's vulnerability rests on impossible decodes.
    ReplayDiverged,
}

impl Outcome {
    /// Stable single-byte code used by the trial-event wire codec.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            Outcome::Masked => 0,
            Outcome::Sdc => 1,
            Outcome::Due => 2,
            Outcome::Unreached => 3,
            Outcome::ReplayDiverged => 4,
        }
    }

    /// Inverse of [`Outcome::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<Outcome> {
        match code {
            0 => Some(Outcome::Masked),
            1 => Some(Outcome::Sdc),
            2 => Some(Outcome::Due),
            3 => Some(Outcome::Unreached),
            4 => Some(Outcome::ReplayDiverged),
            _ => None,
        }
    }
}
