//! Campaign results: per-structure measured-vs-ACE AVF comparison.

use std::fmt;
use std::time::Duration;

use avf_ace::{AceGap, AvfReport};
use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_prune::PruneMode;
use avf_sim::{FaultModel, GoldenRun, InjectionTarget};

use crate::backend::{DispatchRecord, StoreSource, WorkerProvision};
use crate::stats::OutcomeCounts;

/// Numerical slack when comparing a point estimate to a CI edge.
const EPS: f64 = 1e-9;

/// How the ACE estimate relates to the injection measurement for one
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The ACE AVF lies inside the 95% CI of the measurement.
    Agree,
    /// The ACE AVF lies above the CI: the analysis is conservative
    /// here, which is its design intent (lifetime over-approximation,
    /// whole-entry ACE credit).
    Bounded,
    /// The ACE AVF lies *below* the CI: injection observed more
    /// vulnerability than the analysis claims — a soundness red flag
    /// that must not happen.
    Violation,
}

impl Verdict {
    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Agree => "agree",
            Verdict::Bounded => "bounded",
            Verdict::Violation => "VIOLATION",
        }
    }
}

/// One structure's campaign result.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// Injected structure.
    pub target: InjectionTarget,
    /// Classified trial tally.
    pub counts: OutcomeCounts,
    /// ACE-estimated AVF of the same structure on the same run
    /// (bit-weighted across tag/data arrays where the target spans
    /// both).
    pub ace_avf: f64,
    /// Residual fraction of the target's bit×cycle space under
    /// pre-campaign pruning (1.0 without a prune map). Trials sample
    /// only the residual stratum; the pruned strata are provably masked,
    /// so the stratified estimator scales the residual proportion — and
    /// its interval — by this mass.
    pub residual: f64,
}

impl TargetReport {
    /// Injection-measured AVF — the stratified estimate `w · p̂_R`,
    /// where `w` is the residual fraction and `p̂_R` the unmasked
    /// proportion observed over the residual stratum. Without pruning
    /// `w = 1` and this is the plain proportion.
    #[must_use]
    pub fn measured_avf(&self) -> f64 {
        self.residual * self.counts.avf()
    }

    /// 95% Wilson interval of the measurement. Under pruning both ends
    /// scale by the residual fraction: the pruned strata contribute
    /// exact zeros, so the stratified interval is `[w·lo, w·hi]`.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let (lo, hi) = self.counts.ci95();
        (self.residual * lo, self.residual * hi)
    }

    /// Half-width of [`TargetReport::ci95`] — the overall precision of
    /// the stratified estimate (`w` times the raw half-width).
    #[must_use]
    pub fn half_width95(&self) -> f64 {
        self.residual * self.counts.half_width95()
    }

    /// Trials the stratified estimator avoided for this target: the
    /// expected number of draws that would have landed in pruned space
    /// had the same residual-stratum sample been taken by uniform
    /// sampling, `n·(1−w)/w`. Zero without pruning (and for a
    /// fully-pruned target, which needs no trials at all).
    #[must_use]
    pub fn trials_saved(&self) -> u64 {
        let n = self.counts.total() + self.counts.unreached;
        if self.residual <= 0.0 || self.residual >= 1.0 {
            return 0;
        }
        (n as f64 * (1.0 - self.residual) / self.residual).round() as u64
    }

    /// The measured-vs-ACE gap for this structure: how much of the
    /// analysis' conservatism the measurement leaves uncovered. The
    /// replay oracle's reason to exist is making this strictly smaller
    /// on the queueing structures than the trap model does.
    #[must_use]
    pub fn gap(&self) -> AceGap {
        AceGap {
            ace_avf: self.ace_avf,
            measured_avf: self.measured_avf(),
        }
    }

    /// Relation of the ACE estimate to the measurement.
    ///
    /// The violation test is one-sided at 99.5% (z = 2.576) rather
    /// than reusing the displayed 95% interval, and requires at least
    /// 30 trials *and* at least 3 unmasked events: a `validate` run
    /// makes 32 simultaneous comparisons (8 structures × 4 programs),
    /// so a 2.5% one-sided test would flag ~0.8 borderline false
    /// alarms per clean run, and near-zero ACE estimates make 1–2
    /// unlucky events in a small sample clear the strict bound (e.g.
    /// 2 DUEs in 30 trials against a true rate the larger-sample
    /// measurement confirms) — the standard rare-event minimum-count
    /// guard. A genuine soundness bug produces many unmasked events
    /// and overshoots by far more than the gap between the quantiles
    /// (and shows up at any sane campaign size).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let (_, hi) = self.ci95();
        let (raw_strict_lo, _) =
            crate::stats::wilson_interval(self.counts.unmasked(), self.counts.total(), 2.576);
        // Under pruning the measurement (and thus both quantile bounds)
        // scales by the residual mass — the pruned strata are exact
        // zeros, never evidence against the ACE bound.
        let strict_lo = self.residual * raw_strict_lo;
        if self.counts.total() >= 30
            && self.counts.unmasked() >= 3
            && self.ace_avf + EPS < strict_lo
        {
            Verdict::Violation
        } else if self.ace_avf <= hi + EPS {
            Verdict::Agree
        } else {
            Verdict::Bounded
        }
    }
}

/// Why a campaign stopped planning batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Non-adaptive campaign: the single fixed-size plan ran to the end.
    FixedPlan,
    /// Every target's 95% CI half-width fell below the configured
    /// `ci_target` — the sequential-sampling early exit.
    CiTarget,
    /// The trial cap was reached before every target converged.
    TrialCap,
}

impl StopReason {
    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StopReason::FixedPlan => "fixed plan exhausted",
            StopReason::CiTarget => "CI target reached",
            StopReason::TrialCap => "trial cap reached",
        }
    }

    /// Stable wire code (broker report codec).
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            StopReason::FixedPlan => 0,
            StopReason::CiTarget => 1,
            StopReason::TrialCap => 2,
        }
    }

    /// Inverse of [`StopReason::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<StopReason> {
        match code {
            0 => Some(StopReason::FixedPlan),
            1 => Some(StopReason::CiTarget),
            2 => Some(StopReason::TrialCap),
            _ => None,
        }
    }
}

/// Progress of one adaptive batch, recorded as the campaign aggregates
/// incrementally.
#[derive(Debug, Clone, Copy)]
pub struct BatchProgress {
    /// Batch index (0-based).
    pub batch: u64,
    /// Trials executed in this batch.
    pub trials: u64,
    /// Trials executed so far, this batch included.
    pub cumulative: u64,
    /// The least-converged target after this batch.
    pub widest: InjectionTarget,
    /// That target's 95% CI half-width after this batch.
    pub max_half_width: f64,
}

/// Full result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Program name.
    pub program: String,
    /// Injections actually executed (for an adaptive campaign this is
    /// where sequential sampling stopped, not the configured cap).
    pub injections: u64,
    /// How queueing-structure control/tag flips were resolved.
    pub fault_model: FaultModel,
    /// Plan seed.
    pub seed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Per-structure results, in configured target order.
    pub targets: Vec<TargetReport>,
    /// CI half-width target of an adaptive campaign (`None` = fixed plan).
    pub ci_target: Option<f64>,
    /// Pre-campaign pruning mode the campaign ran under.
    pub prune: PruneMode,
    /// Audit trials executed against pruned strata (`--prune audit`
    /// only; each one observed masked, or the campaign hard-failed).
    pub audited: u64,
    /// Why the campaign stopped.
    pub stop: StopReason,
    /// Per-batch convergence progress.
    pub batches: Vec<BatchProgress>,
    /// Golden-run checkpoints the trial workers restored from.
    pub checkpoints: usize,
    /// How each worker obtained the checkpoint store at job setup
    /// (cache hit, shipped bytes, or its own golden run).
    pub provisioning: Vec<WorkerProvision>,
    /// Every dispatch of trials to a worker, in dispatch order — the
    /// per-worker trajectory, including re-dispatches of shards whose
    /// worker died mid-batch. Venue-dependent metadata: two runs with
    /// different worker fates still produce identical statistical
    /// results (counts, CIs, trajectory, stop reason).
    pub dispatches: Vec<DispatchRecord>,
    /// Campaign wall-clock time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Structures whose measurement the ACE estimate fails to cover.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.verdict() == Verdict::Violation)
            .count()
    }

    /// Structures where the ACE AVF falls inside the measurement CI.
    #[must_use]
    pub fn agreements(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.verdict() == Verdict::Agree)
            .count()
    }

    /// Whether the campaign is consistent with ACE analysis being a
    /// sound upper bound (no violations).
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.violations() == 0
    }

    /// Injection trials per second of wall-clock time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.injections as f64 / secs
        }
    }

    /// Trials whose planned cycle the fault-free prefix never reached
    /// (must be zero on a healthy plan/golden pair).
    #[must_use]
    pub fn unreached(&self) -> u64 {
        self.targets.iter().map(|t| t.counts.unreached).sum()
    }

    /// Whether every target's overall 95% CI half-width (residual-scaled
    /// under pruning) is at or below `target`.
    #[must_use]
    pub fn converged_to(&self, target: f64) -> bool {
        self.targets.iter().all(|t| t.half_width95() <= target)
    }

    /// Trials the stratified estimator avoided across all targets
    /// (zero without pruning).
    #[must_use]
    pub fn trials_saved(&self) -> u64 {
        self.targets.iter().map(TargetReport::trials_saved).sum()
    }

    /// Trials that had to be re-dispatched because their worker's
    /// connection died mid-batch (0 on a fault-free run).
    #[must_use]
    pub fn redispatched_trials(&self) -> u64 {
        self.dispatches
            .iter()
            .filter(|d| d.redispatched)
            .map(|d| d.trials)
            .sum()
    }

    /// Serializes the complete report (every field, bit-exact floats)
    /// into `w`. The broker's durable log and its `BROKER_REPORT`
    /// frames carry reports this way, so a driver that re-attaches
    /// after a disconnect receives a report bit-identical to the one a
    /// connected driver would have streamed.
    pub fn encode(&self, w: &mut WireWriter) {
        w.str(&self.program);
        w.u64(self.injections);
        w.u8(self.fault_model.wire_code());
        w.u64(self.seed);
        w.usize(self.workers);
        w.u64(self.golden.cycles);
        w.u64(self.golden.committed);
        w.u64(self.golden.digest);
        w.usize(self.targets.len());
        for t in &self.targets {
            w.u8(t.target.wire_code());
            w.u64(t.counts.masked);
            w.u64(t.counts.sdc);
            w.u64(t.counts.due);
            w.u64(t.counts.diverged);
            w.u64(t.counts.unreached);
            w.f64(t.ace_avf);
            w.f64(t.residual);
        }
        match self.ci_target {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                w.f64(v);
            }
        }
        w.u8(prune_wire_code(self.prune));
        w.u64(self.audited);
        w.u8(self.stop.wire_code());
        w.usize(self.batches.len());
        for b in &self.batches {
            w.u64(b.batch);
            w.u64(b.trials);
            w.u64(b.cumulative);
            w.u8(b.widest.wire_code());
            w.f64(b.max_half_width);
        }
        w.usize(self.checkpoints);
        w.usize(self.provisioning.len());
        for p in &self.provisioning {
            w.str(&p.worker);
            w.u8(store_source_wire_code(p.source));
        }
        w.usize(self.dispatches.len());
        for d in &self.dispatches {
            w.u64(d.batch);
            w.str(&d.worker);
            w.u64(d.trials);
            w.bool(d.redispatched);
        }
        w.u64(self.wall.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Decodes a report written by [`CampaignReport::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or unknown codes.
    pub fn decode(r: &mut WireReader<'_>) -> Result<CampaignReport, WireError> {
        let program = r.str()?;
        let injections = r.u64()?;
        let model_code = r.u8()?;
        let fault_model =
            FaultModel::from_wire_code(model_code).ok_or(WireError::BadTag(model_code))?;
        let seed = r.u64()?;
        let workers = r.usize()?;
        let golden = GoldenRun {
            cycles: r.u64()?,
            committed: r.u64()?,
            digest: r.u64()?,
        };
        let n_targets = r.seq_len(1)?;
        let mut targets = Vec::with_capacity(n_targets);
        for _ in 0..n_targets {
            let code = r.u8()?;
            let target = InjectionTarget::from_wire_code(code).ok_or(WireError::BadTag(code))?;
            let counts = OutcomeCounts {
                masked: r.u64()?,
                sdc: r.u64()?,
                due: r.u64()?,
                diverged: r.u64()?,
                unreached: r.u64()?,
            };
            targets.push(TargetReport {
                target,
                counts,
                ace_avf: r.f64()?,
                residual: r.f64()?,
            });
        }
        let ci_target = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            t => return Err(WireError::BadTag(t)),
        };
        let prune_code = r.u8()?;
        let prune = prune_from_wire_code(prune_code).ok_or(WireError::BadTag(prune_code))?;
        let audited = r.u64()?;
        let stop_code = r.u8()?;
        let stop = StopReason::from_wire_code(stop_code).ok_or(WireError::BadTag(stop_code))?;
        let n_batches = r.seq_len(1)?;
        let mut batches = Vec::with_capacity(n_batches);
        for _ in 0..n_batches {
            let batch = r.u64()?;
            let trials = r.u64()?;
            let cumulative = r.u64()?;
            let code = r.u8()?;
            let widest = InjectionTarget::from_wire_code(code).ok_or(WireError::BadTag(code))?;
            batches.push(BatchProgress {
                batch,
                trials,
                cumulative,
                widest,
                max_half_width: r.f64()?,
            });
        }
        let checkpoints = r.usize()?;
        let n_prov = r.seq_len(1)?;
        let mut provisioning = Vec::with_capacity(n_prov);
        for _ in 0..n_prov {
            let worker = r.str()?;
            let code = r.u8()?;
            let source = store_source_from_wire_code(code).ok_or(WireError::BadTag(code))?;
            provisioning.push(WorkerProvision { worker, source });
        }
        let n_disp = r.seq_len(1)?;
        let mut dispatches = Vec::with_capacity(n_disp);
        for _ in 0..n_disp {
            dispatches.push(DispatchRecord {
                batch: r.u64()?,
                worker: r.str()?,
                trials: r.u64()?,
                redispatched: r.bool()?,
            });
        }
        let wall = Duration::from_nanos(r.u64()?);
        Ok(CampaignReport {
            program,
            injections,
            fault_model,
            seed,
            workers,
            golden,
            targets,
            ci_target,
            prune,
            audited,
            stop,
            batches,
            checkpoints,
            provisioning,
            dispatches,
            wall,
        })
    }
}

/// Stable wire code of a [`PruneMode`] (defined here because the prune
/// crate has no wire dependency).
fn prune_wire_code(mode: PruneMode) -> u8 {
    match mode {
        PruneMode::Off => 0,
        PruneMode::On => 1,
        PruneMode::Audit => 2,
    }
}

fn prune_from_wire_code(code: u8) -> Option<PruneMode> {
    match code {
        0 => Some(PruneMode::Off),
        1 => Some(PruneMode::On),
        2 => Some(PruneMode::Audit),
        _ => None,
    }
}

fn store_source_wire_code(source: StoreSource) -> u8 {
    match source {
        StoreSource::Cached => 0,
        StoreSource::Shipped => 1,
        StoreSource::GoldenRun => 2,
    }
}

fn store_source_from_wire_code(code: u8) -> Option<StoreSource> {
    match code {
        0 => Some(StoreSource::Cached),
        1 => Some(StoreSource::Shipped),
        2 => Some(StoreSource::GoldenRun),
        _ => None,
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault-injection campaign: `{}` — {} injections, {} fault model, seed {}, \
             {} worker(s), golden {} cycles / {} instrs, {} checkpoint(s)",
            self.program,
            self.injections,
            self.fault_model,
            self.seed,
            self.workers,
            self.golden.cycles,
            self.golden.committed,
            self.checkpoints
        )?;
        if let Some(target) = self.ci_target {
            for b in &self.batches {
                writeln!(
                    f,
                    "  batch {:>3}: {:>5} trials ({:>6} total), widest CI ±{:.4} ({})",
                    b.batch, b.trials, b.cumulative, b.max_half_width, b.widest
                )?;
            }
            writeln!(
                f,
                "  adaptive stop: {} (target ±{:.4} after {} trials)",
                self.stop.name(),
                target,
                self.injections
            )?;
        }
        // Pruning columns append AFTER the verdict so the first twelve
        // whitespace-separated fields of each row are identical with
        // pruning off — CI scripts parse those by position.
        let prune = self.prune.enabled();
        writeln!(
            f,
            "{:<6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9} {:>17} {:>9} {:>8}  verdict{}",
            "struct",
            "trials",
            "masked",
            "sdc",
            "due",
            "divg",
            "inj-AVF",
            "95% CI",
            "ACE-AVF",
            "gap",
            if prune { "  pruned   saved" } else { "" }
        )?;
        for t in &self.targets {
            let (lo, hi) = t.ci95();
            write!(
                f,
                "{:<6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9.4} [{:>6.4}, {:>6.4}] {:>9.4} {:>8.4}  {}",
                t.target.name(),
                t.counts.total(),
                t.counts.masked,
                t.counts.sdc,
                t.counts.due,
                t.counts.diverged,
                t.measured_avf(),
                lo,
                hi,
                t.ace_avf,
                t.gap().gap(),
                t.verdict().name()
            )?;
            if prune {
                write!(f, " {:>8.4} {:>7}", 1.0 - t.residual, t.trials_saved())?;
            }
            writeln!(f)?;
        }
        if prune {
            writeln!(
                f,
                "  prune {}: stratified estimator skipped ~{} trial(s); {} audit trial(s), all masked",
                self.prune,
                self.trials_saved(),
                self.audited
            )?;
        }
        if self.redispatched_trials() > 0 {
            writeln!(
                f,
                "  re-dispatched {} trial(s) to surviving workers after connection loss",
                self.redispatched_trials()
            )?;
        }
        if self.unreached() > 0 {
            writeln!(
                f,
                "WARNING: {} trial(s) planned past the end of the fault-free prefix \
                 (excluded from AVF estimates)",
                self.unreached()
            )?;
        }
        writeln!(
            f,
            "agreement: {} within CI, {} bounded above, {} violations — {} ({:.0} inj/s)",
            self.agreements(),
            self.targets.len() - self.agreements() - self.violations(),
            self.violations(),
            if self.consistent() {
                "ACE bound holds"
            } else {
                "ACE BOUND VIOLATED"
            },
            self.throughput()
        )
    }
}

/// Bit-weighted ACE AVF of the arrays an injection target spans.
#[must_use]
pub fn ace_avf_of(report: &AvfReport, target: InjectionTarget) -> f64 {
    report.merged_avf(target.ace_structures())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OutcomeCounts;

    fn report_with(unmasked: u64, total: u64, ace_avf: f64) -> TargetReport {
        TargetReport {
            target: InjectionTarget::Dtlb,
            counts: OutcomeCounts {
                masked: total - unmasked,
                sdc: 0,
                due: unmasked,
                diverged: 0,
                unreached: 0,
            },
            ace_avf,
            residual: 1.0,
        }
    }

    #[test]
    fn sparse_events_never_flag_a_violation() {
        // 2 DUEs in 30 trials against a small-but-correct ACE estimate:
        // the strict interval clears the estimate, but two events are
        // rare-event noise, not evidence (regression: seed-level flake
        // in the CI smoke campaign).
        let t = report_with(2, 30, 0.0075);
        assert_ne!(t.verdict(), Verdict::Violation);
    }

    #[test]
    fn gross_overshoot_still_flags() {
        // A genuine soundness bug: measured ~0.33 against ACE ~0.
        let t = report_with(10, 30, 0.0001);
        assert_eq!(t.verdict(), Verdict::Violation);
    }

    #[test]
    fn tiny_samples_never_flag() {
        let t = report_with(5, 10, 0.0);
        assert_ne!(t.verdict(), Verdict::Violation);
    }

    #[test]
    fn campaign_report_wire_round_trips_bit_exact() {
        let report = CampaignReport {
            program: "avf-stressmark".to_owned(),
            injections: 800,
            fault_model: FaultModel::Replay,
            seed: 42,
            workers: 2,
            golden: GoldenRun {
                cycles: 123_456,
                committed: 30_000,
                digest: 0xDEAD_BEEF_CAFE_F00D,
            },
            targets: vec![
                report_with(2, 30, 0.0075),
                TargetReport {
                    target: InjectionTarget::Rob,
                    counts: OutcomeCounts {
                        masked: 70,
                        sdc: 11,
                        due: 13,
                        diverged: 5,
                        unreached: 1,
                    },
                    ace_avf: 0.123_456_789,
                    residual: 0.75,
                },
            ],
            ci_target: Some(0.1),
            prune: PruneMode::Audit,
            audited: 64,
            stop: StopReason::CiTarget,
            batches: vec![BatchProgress {
                batch: 0,
                trials: 128,
                cumulative: 128,
                widest: InjectionTarget::Lq,
                max_half_width: 0.217,
            }],
            checkpoints: 9,
            provisioning: vec![
                WorkerProvision {
                    worker: "127.0.0.1:7001".to_owned(),
                    source: StoreSource::GoldenRun,
                },
                WorkerProvision {
                    worker: "127.0.0.1:7002".to_owned(),
                    source: StoreSource::Cached,
                },
            ],
            dispatches: vec![DispatchRecord {
                batch: 0,
                worker: "127.0.0.1:7001".to_owned(),
                trials: 64,
                redispatched: true,
            }],
            wall: Duration::from_nanos(987_654_321),
        };
        let mut w = WireWriter::new();
        report.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = CampaignReport::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.program, report.program);
        assert_eq!(back.injections, report.injections);
        assert_eq!(back.fault_model, report.fault_model);
        assert_eq!(back.seed, report.seed);
        assert_eq!(back.workers, report.workers);
        assert_eq!(back.golden, report.golden);
        assert_eq!(back.targets.len(), report.targets.len());
        for (a, b) in back.targets.iter().zip(&report.targets) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.ace_avf.to_bits(), b.ace_avf.to_bits());
            assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        }
        assert_eq!(
            back.ci_target.map(f64::to_bits),
            report.ci_target.map(f64::to_bits)
        );
        assert_eq!(back.prune, report.prune);
        assert_eq!(back.audited, report.audited);
        assert_eq!(back.stop, report.stop);
        assert_eq!(back.batches.len(), report.batches.len());
        assert_eq!(back.batches[0].widest, report.batches[0].widest);
        assert_eq!(
            back.batches[0].max_half_width.to_bits(),
            report.batches[0].max_half_width.to_bits()
        );
        assert_eq!(back.checkpoints, report.checkpoints);
        assert_eq!(back.provisioning, report.provisioning);
        assert_eq!(back.dispatches, report.dispatches);
        assert_eq!(back.wall, report.wall);
    }

    #[test]
    fn report_decode_rejects_unknown_codes() {
        let mut w = WireWriter::new();
        w.str("p");
        w.u64(1);
        w.u8(99); // no such fault model
        let bytes = w.into_bytes();
        let err = CampaignReport::decode(&mut WireReader::new(&bytes)).unwrap_err();
        assert_eq!(err, WireError::BadTag(99));
    }

    #[test]
    fn residual_scales_estimate_interval_and_verdict() {
        let mut t = report_with(30, 100, 0.08);
        // Unpruned: measured 0.30 against ACE 0.08 → a gross overshoot.
        assert_eq!(t.verdict(), Verdict::Violation);
        // The same counts over a 25% residual stratum estimate
        // 0.25·0.30 = 0.075 overall — inside the bound.
        t.residual = 0.25;
        assert!((t.measured_avf() - 0.075).abs() < 1e-12);
        let (lo, hi) = t.ci95();
        let (raw_lo, raw_hi) = t.counts.ci95();
        assert!((lo - 0.25 * raw_lo).abs() < 1e-12);
        assert!((hi - 0.25 * raw_hi).abs() < 1e-12);
        assert!((t.half_width95() - 0.25 * t.counts.half_width95()).abs() < 1e-12);
        assert_ne!(t.verdict(), Verdict::Violation);
        // 100 residual trials over w = 0.25 stand in for ~300 pruned-space draws.
        assert_eq!(t.trials_saved(), 300);
    }
}
