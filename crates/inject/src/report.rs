//! Campaign results: per-structure measured-vs-ACE AVF comparison.

use std::fmt;
use std::time::Duration;

use avf_ace::{AceGap, AvfReport};
use avf_sim::{FaultModel, GoldenRun, InjectionTarget};

use crate::backend::{DispatchRecord, WorkerProvision};
use crate::stats::OutcomeCounts;

/// Numerical slack when comparing a point estimate to a CI edge.
const EPS: f64 = 1e-9;

/// How the ACE estimate relates to the injection measurement for one
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The ACE AVF lies inside the 95% CI of the measurement.
    Agree,
    /// The ACE AVF lies above the CI: the analysis is conservative
    /// here, which is its design intent (lifetime over-approximation,
    /// whole-entry ACE credit).
    Bounded,
    /// The ACE AVF lies *below* the CI: injection observed more
    /// vulnerability than the analysis claims — a soundness red flag
    /// that must not happen.
    Violation,
}

impl Verdict {
    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Agree => "agree",
            Verdict::Bounded => "bounded",
            Verdict::Violation => "VIOLATION",
        }
    }
}

/// One structure's campaign result.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// Injected structure.
    pub target: InjectionTarget,
    /// Classified trial tally.
    pub counts: OutcomeCounts,
    /// ACE-estimated AVF of the same structure on the same run
    /// (bit-weighted across tag/data arrays where the target spans
    /// both).
    pub ace_avf: f64,
}

impl TargetReport {
    /// Injection-measured AVF.
    #[must_use]
    pub fn measured_avf(&self) -> f64 {
        self.counts.avf()
    }

    /// 95% Wilson interval of the measurement.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        self.counts.ci95()
    }

    /// The measured-vs-ACE gap for this structure: how much of the
    /// analysis' conservatism the measurement leaves uncovered. The
    /// replay oracle's reason to exist is making this strictly smaller
    /// on the queueing structures than the trap model does.
    #[must_use]
    pub fn gap(&self) -> AceGap {
        AceGap {
            ace_avf: self.ace_avf,
            measured_avf: self.measured_avf(),
        }
    }

    /// Relation of the ACE estimate to the measurement.
    ///
    /// The violation test is one-sided at 99.5% (z = 2.576) rather
    /// than reusing the displayed 95% interval, and requires at least
    /// 30 trials *and* at least 3 unmasked events: a `validate` run
    /// makes 32 simultaneous comparisons (8 structures × 4 programs),
    /// so a 2.5% one-sided test would flag ~0.8 borderline false
    /// alarms per clean run, and near-zero ACE estimates make 1–2
    /// unlucky events in a small sample clear the strict bound (e.g.
    /// 2 DUEs in 30 trials against a true rate the larger-sample
    /// measurement confirms) — the standard rare-event minimum-count
    /// guard. A genuine soundness bug produces many unmasked events
    /// and overshoots by far more than the gap between the quantiles
    /// (and shows up at any sane campaign size).
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let (_, hi) = self.ci95();
        let (strict_lo, _) =
            crate::stats::wilson_interval(self.counts.unmasked(), self.counts.total(), 2.576);
        if self.counts.total() >= 30
            && self.counts.unmasked() >= 3
            && self.ace_avf + EPS < strict_lo
        {
            Verdict::Violation
        } else if self.ace_avf <= hi + EPS {
            Verdict::Agree
        } else {
            Verdict::Bounded
        }
    }
}

/// Why a campaign stopped planning batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Non-adaptive campaign: the single fixed-size plan ran to the end.
    FixedPlan,
    /// Every target's 95% CI half-width fell below the configured
    /// `ci_target` — the sequential-sampling early exit.
    CiTarget,
    /// The trial cap was reached before every target converged.
    TrialCap,
}

impl StopReason {
    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StopReason::FixedPlan => "fixed plan exhausted",
            StopReason::CiTarget => "CI target reached",
            StopReason::TrialCap => "trial cap reached",
        }
    }
}

/// Progress of one adaptive batch, recorded as the campaign aggregates
/// incrementally.
#[derive(Debug, Clone, Copy)]
pub struct BatchProgress {
    /// Batch index (0-based).
    pub batch: u64,
    /// Trials executed in this batch.
    pub trials: u64,
    /// Trials executed so far, this batch included.
    pub cumulative: u64,
    /// The least-converged target after this batch.
    pub widest: InjectionTarget,
    /// That target's 95% CI half-width after this batch.
    pub max_half_width: f64,
}

/// Full result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Program name.
    pub program: String,
    /// Injections actually executed (for an adaptive campaign this is
    /// where sequential sampling stopped, not the configured cap).
    pub injections: u64,
    /// How queueing-structure control/tag flips were resolved.
    pub fault_model: FaultModel,
    /// Plan seed.
    pub seed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Per-structure results, in configured target order.
    pub targets: Vec<TargetReport>,
    /// CI half-width target of an adaptive campaign (`None` = fixed plan).
    pub ci_target: Option<f64>,
    /// Why the campaign stopped.
    pub stop: StopReason,
    /// Per-batch convergence progress.
    pub batches: Vec<BatchProgress>,
    /// Golden-run checkpoints the trial workers restored from.
    pub checkpoints: usize,
    /// How each worker obtained the checkpoint store at job setup
    /// (cache hit, shipped bytes, or its own golden run).
    pub provisioning: Vec<WorkerProvision>,
    /// Every dispatch of trials to a worker, in dispatch order — the
    /// per-worker trajectory, including re-dispatches of shards whose
    /// worker died mid-batch. Venue-dependent metadata: two runs with
    /// different worker fates still produce identical statistical
    /// results (counts, CIs, trajectory, stop reason).
    pub dispatches: Vec<DispatchRecord>,
    /// Campaign wall-clock time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Structures whose measurement the ACE estimate fails to cover.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.verdict() == Verdict::Violation)
            .count()
    }

    /// Structures where the ACE AVF falls inside the measurement CI.
    #[must_use]
    pub fn agreements(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.verdict() == Verdict::Agree)
            .count()
    }

    /// Whether the campaign is consistent with ACE analysis being a
    /// sound upper bound (no violations).
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.violations() == 0
    }

    /// Injection trials per second of wall-clock time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.injections as f64 / secs
        }
    }

    /// Trials whose planned cycle the fault-free prefix never reached
    /// (must be zero on a healthy plan/golden pair).
    #[must_use]
    pub fn unreached(&self) -> u64 {
        self.targets.iter().map(|t| t.counts.unreached).sum()
    }

    /// Whether every target's 95% CI half-width is at or below `target`.
    #[must_use]
    pub fn converged_to(&self, target: f64) -> bool {
        self.targets
            .iter()
            .all(|t| t.counts.half_width95() <= target)
    }

    /// Trials that had to be re-dispatched because their worker's
    /// connection died mid-batch (0 on a fault-free run).
    #[must_use]
    pub fn redispatched_trials(&self) -> u64 {
        self.dispatches
            .iter()
            .filter(|d| d.redispatched)
            .map(|d| d.trials)
            .sum()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault-injection campaign: `{}` — {} injections, {} fault model, seed {}, \
             {} worker(s), golden {} cycles / {} instrs, {} checkpoint(s)",
            self.program,
            self.injections,
            self.fault_model,
            self.seed,
            self.workers,
            self.golden.cycles,
            self.golden.committed,
            self.checkpoints
        )?;
        if let Some(target) = self.ci_target {
            for b in &self.batches {
                writeln!(
                    f,
                    "  batch {:>3}: {:>5} trials ({:>6} total), widest CI ±{:.4} ({})",
                    b.batch, b.trials, b.cumulative, b.max_half_width, b.widest
                )?;
            }
            writeln!(
                f,
                "  adaptive stop: {} (target ±{:.4} after {} trials)",
                self.stop.name(),
                target,
                self.injections
            )?;
        }
        writeln!(
            f,
            "{:<6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9} {:>17} {:>9} {:>8}  verdict",
            "struct",
            "trials",
            "masked",
            "sdc",
            "due",
            "divg",
            "inj-AVF",
            "95% CI",
            "ACE-AVF",
            "gap"
        )?;
        for t in &self.targets {
            let (lo, hi) = t.ci95();
            writeln!(
                f,
                "{:<6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9.4} [{:>6.4}, {:>6.4}] {:>9.4} {:>8.4}  {}",
                t.target.name(),
                t.counts.total(),
                t.counts.masked,
                t.counts.sdc,
                t.counts.due,
                t.counts.diverged,
                t.measured_avf(),
                lo,
                hi,
                t.ace_avf,
                t.gap().gap(),
                t.verdict().name()
            )?;
        }
        if self.redispatched_trials() > 0 {
            writeln!(
                f,
                "  re-dispatched {} trial(s) to surviving workers after connection loss",
                self.redispatched_trials()
            )?;
        }
        if self.unreached() > 0 {
            writeln!(
                f,
                "WARNING: {} trial(s) planned past the end of the fault-free prefix \
                 (excluded from AVF estimates)",
                self.unreached()
            )?;
        }
        writeln!(
            f,
            "agreement: {} within CI, {} bounded above, {} violations — {} ({:.0} inj/s)",
            self.agreements(),
            self.targets.len() - self.agreements() - self.violations(),
            self.violations(),
            if self.consistent() {
                "ACE bound holds"
            } else {
                "ACE BOUND VIOLATED"
            },
            self.throughput()
        )
    }
}

/// Bit-weighted ACE AVF of the arrays an injection target spans.
#[must_use]
pub fn ace_avf_of(report: &AvfReport, target: InjectionTarget) -> f64 {
    report.merged_avf(target.ace_structures())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OutcomeCounts;

    fn report_with(unmasked: u64, total: u64, ace_avf: f64) -> TargetReport {
        TargetReport {
            target: InjectionTarget::Dtlb,
            counts: OutcomeCounts {
                masked: total - unmasked,
                sdc: 0,
                due: unmasked,
                diverged: 0,
                unreached: 0,
            },
            ace_avf,
        }
    }

    #[test]
    fn sparse_events_never_flag_a_violation() {
        // 2 DUEs in 30 trials against a small-but-correct ACE estimate:
        // the strict interval clears the estimate, but two events are
        // rare-event noise, not evidence (regression: seed-level flake
        // in the CI smoke campaign).
        let t = report_with(2, 30, 0.0075);
        assert_ne!(t.verdict(), Verdict::Violation);
    }

    #[test]
    fn gross_overshoot_still_flags() {
        // A genuine soundness bug: measured ~0.33 against ACE ~0.
        let t = report_with(10, 30, 0.0001);
        assert_eq!(t.verdict(), Verdict::Violation);
    }

    #[test]
    fn tiny_samples_never_flag() {
        let t = report_with(5, 10, 0.0);
        assert_ne!(t.verdict(), Verdict::Violation);
    }
}
