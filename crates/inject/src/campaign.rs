//! The campaign driver (engine v3): planning and aggregation only.
//!
//! Engine v2 added checkpointed forks and adaptive sequential sampling;
//! v3 splits the *driver* (batch planning, CI-driven allocation,
//! aggregation) from the *execution venue*. All trial execution goes
//! through the [`CampaignBackend`] protocol: the driver opens a
//! session with a [`JobSpec`] (program + machine + budget + golden-run
//! source), submits trial batches, and folds the [`TrialEvent`] stream
//! into outcome counts. Even the golden pass belongs to the venue by
//! default ([`GoldenMode::Worker`]): remote workers execute it in
//! parallel and the driver simulates nothing. [`LocalBackend`] gives
//! the classic in-process thread pool; `avf-service`'s `RemoteBackend`
//! fans the same batches out over TCP — with a fixed seed both produce
//! identical reports, because every sample is a pure function of
//! `(seed, batch, index)` and outcome counts merge commutatively.
//!
//! The ACE reference simulation has no data dependence on the injection
//! sweep, so it runs concurrently with the batch loop inside the same
//! thread scope (on a single hardware thread the two simply serialize).

use std::sync::Arc;
use std::time::Instant;

use avf_isa::Program;
use avf_prune::{PruneMap, PruneMode};
use avf_sim::{
    golden_run_checkpointed, golden_run_with_evidence, simulate, MachineConfig, PRUNE_WINDOW,
};

use crate::adaptive::allocate_batch;
use crate::backend::{
    cycle_budget_of, BackendError, CampaignBackend, GoldenSpec, JobSpec, LocalBackend,
};
use crate::plan::SamplingPlan;
use crate::report::{ace_avf_of, BatchProgress, CampaignReport, StopReason, TargetReport};
use crate::stats::OutcomeCounts;
use crate::Outcome;

/// Deterministic audit trials drawn per target from the pruned strata
/// under [`PruneMode::Audit`] — every one must observe masked.
const AUDIT_TRIALS_PER_TARGET: u64 = 64;

/// Who executes the fault-free golden pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GoldenMode {
    /// The execution venue runs the golden pass itself
    /// ([`GoldenSpec::Delegated`]): remote workers warm up in parallel
    /// and the driver never simulates the prefix locally. The driver
    /// cross-checks that every worker reports the identical golden
    /// digest.
    #[default]
    Worker,
    /// The driver runs the golden pass locally and ships the
    /// checkpoint store ([`GoldenSpec::Shipped`]) — subject to the
    /// content-hash cache handshake, so a worker that already holds
    /// the store never receives the bytes again.
    Driver,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total injection budget. For a fixed campaign (`ci_target: None`)
    /// every trial is executed, split round-robin across `targets`; for
    /// an adaptive campaign this is the trial *cap* sequential sampling
    /// may stop well short of.
    pub injections: u64,
    /// Seed deriving the whole sampling plan.
    pub seed: u64,
    /// Worker threads of the default [`LocalBackend`] (0 = all
    /// available cores). A backend passed to [`Campaign::run_on`]
    /// brings its own parallelism and ignores this.
    pub threads: usize,
    /// Committed-instruction budget for the golden run and every trial.
    pub instr_budget: u64,
    /// Structures to inject into.
    pub targets: Vec<avf_sim::InjectionTarget>,
    /// Adaptive mode: stop once every target's 95% CI half-width is at
    /// or below this value. `None` runs the fixed plan.
    pub ci_target: Option<f64>,
    /// Trials planned per adaptive batch (clamped to at least one).
    pub batch_size: u64,
    /// Golden-run checkpoint spacing in cycles (0 = auto: an eighth of
    /// the instruction budget, which lands near 4–16 checkpoints at
    /// typical IPC).
    pub checkpoint_interval: u64,
    /// Who executes the golden pass (default: the execution venue).
    /// Either mode yields a bit-identical report at a fixed seed — the
    /// golden run is deterministic, so only *where* it executes moves.
    pub golden_mode: GoldenMode,
    /// How queueing-structure control/tag flips are resolved (default:
    /// the micro-op replay oracle; `trap` restores the coarse
    /// control-corruption-is-DUE model for comparison).
    pub fault_model: avf_sim::FaultModel,
    /// Pre-campaign injection-site pruning (default: off). `On`
    /// stratifies sampling over the residual site space and credits the
    /// provably-masked strata analytically; `Audit` additionally injects
    /// a deterministic sample of *pruned* sites and hard-fails the
    /// campaign on any non-masked observation.
    pub prune: PruneMode,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            injections: 800,
            seed: 42,
            threads: 0,
            instr_budget: 30_000,
            targets: avf_sim::InjectionTarget::ALL.to_vec(),
            ci_target: None,
            batch_size: 128,
            checkpoint_interval: 0,
            golden_mode: GoldenMode::Worker,
            fault_model: avf_sim::FaultModel::default(),
            prune: PruneMode::Off,
        }
    }
}

impl CampaignConfig {
    fn effective_checkpoint_interval(&self) -> u64 {
        if self.checkpoint_interval > 0 {
            self.checkpoint_interval
        } else {
            (self.instr_budget / 8).max(64)
        }
    }
}

/// A configured fault-injection campaign over one program.
pub struct Campaign<'a> {
    machine: &'a MachineConfig,
    program: &'a Program,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Binds a campaign to a machine and program.
    #[must_use]
    pub fn new(
        machine: &'a MachineConfig,
        program: &'a Program,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign {
            machine,
            program,
            config,
        }
    }

    /// Runs the campaign on the in-process [`LocalBackend`]
    /// ([`CampaignConfig::threads`] workers).
    ///
    /// Results are deterministic in `(seed, injections, instr_budget,
    /// ci_target, batch_size)` — the thread count (and execution venue,
    /// see [`Campaign::run_on`]) only changes wall-clock time.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        self.run_on(&LocalBackend::new(self.config.threads))
            .expect("the local backend is infallible on a store it just captured")
    }

    /// Runs the campaign on an arbitrary execution backend: checkpointed
    /// golden run, then batched trial submission overlapped with the
    /// ACE reference measurement.
    ///
    /// With a fixed seed the report is identical across backends — the
    /// sampling plan is derived purely from `(seed, batch, index)` and
    /// event aggregation is order-independent.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the backend cannot execute the
    /// campaign (unreachable workers, protocol violation, codec skew).
    pub fn run_on(&self, backend: &dyn CampaignBackend) -> Result<CampaignReport, BackendError> {
        let start = Instant::now();
        let prune_requested = self.config.prune.enabled();
        // In driver golden mode the driver runs the (instrumented)
        // golden pass itself and builds the prune map locally; in worker
        // mode the venue builds it during its delegated golden run and
        // returns it in the opened job.
        let mut driver_map: Option<Arc<PruneMap>> = None;
        let golden_spec = match self.config.golden_mode {
            GoldenMode::Worker => GoldenSpec::Delegated {
                checkpoint_interval: self.config.effective_checkpoint_interval(),
            },
            GoldenMode::Driver => {
                let (golden, store) = if prune_requested {
                    let (golden, store, evidence) = golden_run_with_evidence(
                        self.machine,
                        self.program,
                        self.config.instr_budget,
                        self.config.effective_checkpoint_interval(),
                        PRUNE_WINDOW,
                    );
                    driver_map = Some(Arc::new(PruneMap::build(
                        self.machine,
                        self.program,
                        self.config.fault_model,
                        &evidence,
                    )));
                    (golden, store)
                } else {
                    golden_run_checkpointed(
                        self.machine,
                        self.program,
                        self.config.instr_budget,
                        self.config.effective_checkpoint_interval(),
                    )
                };
                GoldenSpec::Shipped {
                    store: Arc::new(store),
                    decoded: None,
                    golden,
                    cycle_budget: cycle_budget_of(golden.cycles),
                }
            }
        };
        let opened = backend.open(JobSpec {
            machine: self.machine.clone(),
            program: self.program.clone(),
            instr_budget: self.config.instr_budget,
            fault_model: self.config.fault_model,
            golden: golden_spec,
            prune: prune_requested,
        })?;
        let golden = opened.golden;
        let checkpoints = opened.checkpoints;
        let provisioning = opened.provisioning;
        let mut session = opened.session;

        let prune_map: Option<Arc<PruneMap>> = if prune_requested {
            let map = driver_map.or(opened.prune).ok_or_else(|| {
                BackendError::Protocol(
                    "pruning requested but neither the driver nor the venue produced a prune map"
                        .to_owned(),
                )
            })?;
            if map.cycles() != golden.cycles {
                return Err(BackendError::Protocol(format!(
                    "prune map covers {} golden cycles but the venue's golden run has {}",
                    map.cycles(),
                    golden.cycles
                )));
            }
            Some(map)
        } else {
            None
        };
        // Per-target residual masses: the stratified estimator samples
        // only the residual stratum and scales by these (1.0 unpruned).
        let residual: Vec<f64> = self
            .config
            .targets
            .iter()
            .map(|&t| prune_map.as_ref().map_or(1.0, |m| m.residual_fraction(t)))
            .collect();

        let mut counts = vec![OutcomeCounts::default(); self.config.targets.len()];
        let mut batches: Vec<BatchProgress> = Vec::new();
        let mut executed = 0u64;
        let mut stop = StopReason::FixedPlan;

        // The ACE reference has no dependence on the sweep: overlap it
        // with the trial batches instead of running it afterwards.
        let ace = std::thread::scope(|outer| {
            let ace_handle =
                outer.spawn(|| simulate(self.machine, self.program, self.config.instr_budget));

            loop {
                let plan = match self.config.ci_target {
                    None => {
                        if executed > 0 {
                            stop = StopReason::FixedPlan;
                            break;
                        }
                        // A fully-pruned target is an exact zero: the
                        // fixed plan round-robins over the targets that
                        // still have residual mass to sample.
                        let active: Vec<avf_sim::InjectionTarget> = self
                            .config
                            .targets
                            .iter()
                            .zip(&residual)
                            .filter(|&(_, &w)| w > 0.0)
                            .map(|(&t, _)| t)
                            .collect();
                        if active.is_empty() {
                            stop = StopReason::FixedPlan;
                            break;
                        }
                        SamplingPlan::new(
                            self.machine,
                            &active,
                            self.config.injections,
                            golden.cycles,
                            self.config.seed,
                            prune_map.as_deref(),
                        )
                    }
                    Some(ci_target) => {
                        // Convergence is tested before the budget (with a
                        // 1-trial probe when the cap is spent), so a campaign
                        // that converges on its last allowed batch reports
                        // the CI target, not the trial cap.
                        let budget_left = self.config.injections.saturating_sub(executed);
                        let alloc = allocate_batch(
                            &self.config.targets,
                            &counts,
                            &residual,
                            ci_target,
                            self.config.batch_size.max(1).min(budget_left.max(1)),
                        );
                        if alloc.is_empty() {
                            stop = StopReason::CiTarget;
                            break;
                        }
                        if budget_left == 0 {
                            stop = StopReason::TrialCap;
                            break;
                        }
                        SamplingPlan::for_batch(
                            self.machine,
                            &alloc,
                            golden.cycles,
                            self.config.seed,
                            batches.len() as u64,
                            executed,
                            prune_map.as_deref(),
                        )
                    }
                };
                if plan.is_empty() {
                    stop = StopReason::FixedPlan;
                    break;
                }

                let mut received = 0u64;
                for event in session.submit(plan.trials())? {
                    let event = event?;
                    let slot = self
                        .config
                        .targets
                        .iter()
                        .position(|&t| t == event.target)
                        .ok_or_else(|| {
                            BackendError::Protocol(format!(
                                "event for unplanned target {}",
                                event.target
                            ))
                        })?;
                    counts[slot].record(event.outcome);
                    received += 1;
                }
                if received != plan.len() as u64 {
                    // A lossy backend would silently skew the estimate;
                    // fail loudly instead.
                    return Err(BackendError::Protocol(format!(
                        "batch planned {} trials but {} events arrived",
                        plan.len(),
                        received
                    )));
                }
                executed += plan.len() as u64;

                let (widest_slot, max_half_width) = counts
                    .iter()
                    .map(OutcomeCounts::half_width95)
                    .zip(&residual)
                    .map(|(hw, &w)| w * hw)
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("at least one target");
                batches.push(BatchProgress {
                    batch: batches.len() as u64,
                    trials: plan.len() as u64,
                    cumulative: executed,
                    widest: self.config.targets[widest_slot],
                    max_half_width,
                });
            }

            Ok::<_, BackendError>(ace_handle.join().expect("ACE reference thread panicked"))
        })?;

        // Audit mode: inject a deterministic sample of the *pruned*
        // sites. Every one is claimed provably masked by the classifier,
        // so a single non-masked observation is a soundness bug and
        // fails the campaign outright.
        let mut audited = 0u64;
        if self.config.prune == PruneMode::Audit {
            let map = prune_map
                .as_deref()
                .expect("audit mode always resolves a prune map");
            let plan = SamplingPlan::audit(
                self.machine,
                map,
                AUDIT_TRIALS_PER_TARGET,
                golden.cycles,
                self.config.seed,
            );
            for event in session.submit(plan.trials())? {
                let event = event?;
                if event.outcome != Outcome::Masked {
                    return Err(BackendError::Protocol(format!(
                        "prune audit failed: site claimed provably masked on {} \
                         observed {:?} (audit trial {})",
                        event.target, event.outcome, event.index
                    )));
                }
                audited += 1;
            }
        }

        let targets = self
            .config
            .targets
            .iter()
            .zip(counts)
            .zip(&residual)
            .map(|((&target, counts), &residual)| TargetReport {
                target,
                counts,
                ace_avf: ace_avf_of(&ace.report, target),
                residual,
            })
            .collect();

        Ok(CampaignReport {
            program: self.program.name().to_owned(),
            injections: executed,
            fault_model: self.config.fault_model,
            seed: self.config.seed,
            workers: backend.workers(),
            golden,
            targets,
            ci_target: self.config.ci_target,
            prune: self.config.prune,
            audited,
            stop,
            batches,
            checkpoints,
            provisioning,
            dispatches: session.dispatch_log(),
            wall: start.elapsed(),
        })
    }
}
