//! The parallel campaign driver.

use std::time::Instant;

use avf_isa::Program;
use avf_sim::{
    golden_run, simulate, FlipEffect, InjectionSim, InjectionTarget, MachineConfig, RunEnd,
};

use crate::plan::{SamplingPlan, Trial};
use crate::report::{ace_avf_of, CampaignReport, TargetReport};
use crate::stats::OutcomeCounts;
use crate::Outcome;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total injections, split round-robin across `targets`.
    pub injections: u64,
    /// Seed deriving the whole sampling plan.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Committed-instruction budget for the golden run and every trial.
    pub instr_budget: u64,
    /// Structures to inject into.
    pub targets: Vec<InjectionTarget>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            injections: 800,
            seed: 42,
            threads: 0,
            instr_budget: 30_000,
            targets: InjectionTarget::ALL.to_vec(),
        }
    }
}

impl CampaignConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A configured fault-injection campaign over one program.
pub struct Campaign<'a> {
    machine: &'a MachineConfig,
    program: &'a Program,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Binds a campaign to a machine and program.
    #[must_use]
    pub fn new(
        machine: &'a MachineConfig,
        program: &'a Program,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign {
            machine,
            program,
            config,
        }
    }

    /// Runs the campaign: golden run, ACE reference measurement, then
    /// the sharded injection sweep.
    ///
    /// Results are deterministic in `(seed, injections, instr_budget)`
    /// — the thread count only changes wall-clock time.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        let start = Instant::now();
        let golden = golden_run(self.machine, self.program, self.config.instr_budget);
        let plan = SamplingPlan::new(
            self.machine,
            &self.config.targets,
            self.config.injections,
            golden.cycles,
            self.config.seed,
        );
        // Hang watchdog: a faulty run materially slower than the golden
        // run counts as a detected (timeout) error.
        let cycle_budget = golden.cycles.saturating_mul(4).saturating_add(50_000);

        let workers = self.config.worker_count().max(1);
        let mut tallies: Vec<Vec<(InjectionTarget, OutcomeCounts)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shard = plan.shard(w, workers);
                    let machine = self.machine;
                    let program = self.program;
                    let instr_budget = self.config.instr_budget;
                    scope.spawn(move || {
                        run_shard(
                            machine,
                            program,
                            instr_budget,
                            cycle_budget,
                            golden.digest,
                            &shard,
                        )
                    })
                })
                .collect();
            for h in handles {
                tallies.push(h.join().expect("campaign worker panicked"));
            }
        });

        let mut counts = vec![OutcomeCounts::default(); self.config.targets.len()];
        for tally in tallies {
            for (target, c) in tally {
                let slot = self
                    .config
                    .targets
                    .iter()
                    .position(|&t| t == target)
                    .expect("worker reported an unplanned target");
                counts[slot].merge(c);
            }
        }

        // ACE reference: one analyzer-enabled simulation of the same
        // program and budget.
        let ace = simulate(self.machine, self.program, self.config.instr_budget);
        let targets = self
            .config
            .targets
            .iter()
            .zip(counts)
            .map(|(&target, counts)| TargetReport {
                target,
                counts,
                ace_avf: ace_avf_of(&ace.report, target),
            })
            .collect();

        CampaignReport {
            program: self.program.name().to_owned(),
            injections: self.config.injections,
            seed: self.config.seed,
            workers,
            golden,
            targets,
            wall: start.elapsed(),
        }
    }
}

/// Executes one worker's cycle-sorted shard on a single forward pass:
/// advance to each injection cycle, snapshot, flip, run the faulty
/// future out, classify, rewind.
fn run_shard(
    machine: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    cycle_budget: u64,
    golden_digest: u64,
    shard: &[Trial],
) -> Vec<(InjectionTarget, OutcomeCounts)> {
    let mut tally: Vec<(InjectionTarget, OutcomeCounts)> = Vec::new();
    let record = |target: InjectionTarget,
                  outcome: Outcome,
                  tally: &mut Vec<(InjectionTarget, OutcomeCounts)>| {
        match tally.iter_mut().find(|(t, _)| *t == target) {
            Some((_, c)) => c.record(outcome),
            None => {
                let mut c = OutcomeCounts::default();
                c.record(outcome);
                tally.push((target, c));
            }
        }
    };

    let mut sim = InjectionSim::new(machine, program, instr_budget);
    sim.set_cycle_budget(cycle_budget);
    for trial in shard {
        let reached = sim.run_to_cycle(trial.cycle);
        debug_assert!(
            reached,
            "fault-free prefix ended before a planned injection cycle"
        );
        // Dry-probe first: provably masked flips touch no machine
        // state, so they need neither the snapshot nor the rewind —
        // on masked-heavy programs that halves the deep-clone cost.
        let outcome = match sim.probe_bit(trial.target, trial.entry, trial.bit) {
            FlipEffect::Masked(_) => Outcome::Masked,
            FlipEffect::Armed => {
                let snap = sim.snapshot();
                let armed = sim.flip_bit(trial.target, trial.entry, trial.bit);
                debug_assert_eq!(armed, FlipEffect::Armed, "probe and flip must agree");
                let outcome = match sim.run_to_end() {
                    RunEnd::Trapped | RunEnd::Timeout => Outcome::Due,
                    RunEnd::Completed => {
                        if sim.memory_digest() == golden_digest {
                            Outcome::Masked
                        } else {
                            Outcome::Sdc
                        }
                    }
                };
                sim.restore(&snap);
                outcome
            }
        };
        record(trial.target, outcome, &mut tally);
    }
    tally
}
