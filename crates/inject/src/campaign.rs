//! The parallel campaign driver (engine v2).
//!
//! Two additions over the v1 fixed-plan engine:
//!
//! * **Checkpointed forks** — the golden pass serializes periodic
//!   [`CheckpointStore`] snapshots; every trial worker restores the
//!   nearest checkpoint at-or-before its first injection cycle instead
//!   of re-simulating the fault-free prefix, so per-batch setup is
//!   `O(checkpoint interval)` rather than `O(injection cycle)`.
//! * **Adaptive sequential sampling** — with a `ci_target`, trials are
//!   planned in batches; between batches new trials go to the
//!   structures with the widest 95% Wilson intervals
//!   ([`crate::adaptive`]), and the campaign stops as soon as every
//!   target's half-width is at or below the target (or the trial cap is
//!   hit). Every batch is derived purely from `(seed, batch index)`, so
//!   results stay independent of thread count.
//!
//! The ACE reference simulation has no data dependence on the injection
//! sweep, so it runs concurrently with the trial workers inside the
//! same thread scope (on a single hardware thread the two simply
//! serialize).

use std::time::Instant;

use avf_isa::Program;
use avf_sim::{
    golden_run_checkpointed, simulate, DecodedCheckpoints, FlipEffect, InjectionSim,
    InjectionTarget, MachineConfig, RunEnd,
};

use crate::adaptive::allocate_batch;
use crate::plan::{SamplingPlan, Trial};
use crate::report::{ace_avf_of, BatchProgress, CampaignReport, StopReason, TargetReport};
use crate::stats::OutcomeCounts;
use crate::Outcome;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total injection budget. For a fixed campaign (`ci_target: None`)
    /// every trial is executed, split round-robin across `targets`; for
    /// an adaptive campaign this is the trial *cap* sequential sampling
    /// may stop well short of.
    pub injections: u64,
    /// Seed deriving the whole sampling plan.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Committed-instruction budget for the golden run and every trial.
    pub instr_budget: u64,
    /// Structures to inject into.
    pub targets: Vec<InjectionTarget>,
    /// Adaptive mode: stop once every target's 95% CI half-width is at
    /// or below this value. `None` runs the fixed plan.
    pub ci_target: Option<f64>,
    /// Trials planned per adaptive batch (clamped to at least one).
    pub batch_size: u64,
    /// Golden-run checkpoint spacing in cycles (0 = auto: an eighth of
    /// the instruction budget, which lands near 4–16 checkpoints at
    /// typical IPC).
    pub checkpoint_interval: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            injections: 800,
            seed: 42,
            threads: 0,
            instr_budget: 30_000,
            targets: InjectionTarget::ALL.to_vec(),
            ci_target: None,
            batch_size: 128,
            checkpoint_interval: 0,
        }
    }
}

impl CampaignConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    fn effective_checkpoint_interval(&self) -> u64 {
        if self.checkpoint_interval > 0 {
            self.checkpoint_interval
        } else {
            (self.instr_budget / 8).max(64)
        }
    }
}

/// A configured fault-injection campaign over one program.
pub struct Campaign<'a> {
    machine: &'a MachineConfig,
    program: &'a Program,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Binds a campaign to a machine and program.
    #[must_use]
    pub fn new(
        machine: &'a MachineConfig,
        program: &'a Program,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign {
            machine,
            program,
            config,
        }
    }

    /// Runs the campaign: checkpointed golden run, then batched
    /// injection sweeps overlapped with the ACE reference measurement.
    ///
    /// Results are deterministic in `(seed, injections, instr_budget,
    /// ci_target, batch_size)` — the thread count only changes
    /// wall-clock time.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        let start = Instant::now();
        let (golden, store) = golden_run_checkpointed(
            self.machine,
            self.program,
            self.config.instr_budget,
            self.config.effective_checkpoint_interval(),
        );
        // Hang watchdog: a faulty run materially slower than the golden
        // run counts as a detected (timeout) error.
        let cycle_budget = golden.cycles.saturating_mul(4).saturating_add(50_000);
        let workers = self.config.worker_count().max(1);
        // Decode each checkpoint once up front; workers restore by deep
        // clone (the v1 fork cost) instead of re-parsing blobs per batch.
        let decoded = store
            .decode_all(self.machine, self.program)
            .expect("a freshly captured checkpoint store decodes on its own machine/program");
        let decoded = &decoded;

        let mut counts = vec![OutcomeCounts::default(); self.config.targets.len()];
        let mut batches: Vec<BatchProgress> = Vec::new();
        let mut executed = 0u64;
        let mut stop = StopReason::FixedPlan;

        // The ACE reference has no dependence on the sweep: overlap it
        // with the injection workers instead of running it afterwards.
        let ace = std::thread::scope(|outer| {
            let ace_handle =
                outer.spawn(|| simulate(self.machine, self.program, self.config.instr_budget));

            loop {
                let plan = match self.config.ci_target {
                    None => {
                        if executed > 0 {
                            stop = StopReason::FixedPlan;
                            break;
                        }
                        SamplingPlan::new(
                            self.machine,
                            &self.config.targets,
                            self.config.injections,
                            golden.cycles,
                            self.config.seed,
                        )
                    }
                    Some(ci_target) => {
                        // Convergence is tested before the budget (with a
                        // 1-trial probe when the cap is spent), so a campaign
                        // that converges on its last allowed batch reports
                        // the CI target, not the trial cap.
                        let budget_left = self.config.injections.saturating_sub(executed);
                        let alloc = allocate_batch(
                            &self.config.targets,
                            &counts,
                            ci_target,
                            self.config.batch_size.max(1).min(budget_left.max(1)),
                        );
                        if alloc.is_empty() {
                            stop = StopReason::CiTarget;
                            break;
                        }
                        if budget_left == 0 {
                            stop = StopReason::TrialCap;
                            break;
                        }
                        SamplingPlan::for_batch(
                            self.machine,
                            &alloc,
                            golden.cycles,
                            self.config.seed,
                            batches.len() as u64,
                            executed,
                        )
                    }
                };
                if plan.is_empty() {
                    stop = StopReason::FixedPlan;
                    break;
                }

                let tallies = run_plan(
                    self.machine,
                    self.program,
                    self.config.instr_budget,
                    cycle_budget,
                    golden.digest,
                    decoded,
                    &plan,
                    workers,
                );
                for tally in tallies {
                    for (target, c) in tally {
                        let slot = self
                            .config
                            .targets
                            .iter()
                            .position(|&t| t == target)
                            .expect("worker reported an unplanned target");
                        counts[slot].merge(c);
                    }
                }
                executed += plan.len() as u64;

                let (widest_slot, max_half_width) = counts
                    .iter()
                    .map(OutcomeCounts::half_width95)
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("at least one target");
                batches.push(BatchProgress {
                    batch: batches.len() as u64,
                    trials: plan.len() as u64,
                    cumulative: executed,
                    widest: self.config.targets[widest_slot],
                    max_half_width,
                });
            }

            ace_handle.join().expect("ACE reference thread panicked")
        });

        let targets = self
            .config
            .targets
            .iter()
            .zip(counts)
            .map(|(&target, counts)| TargetReport {
                target,
                counts,
                ace_avf: ace_avf_of(&ace.report, target),
            })
            .collect();

        CampaignReport {
            program: self.program.name().to_owned(),
            injections: executed,
            seed: self.config.seed,
            workers,
            golden,
            targets,
            ci_target: self.config.ci_target,
            stop,
            batches,
            checkpoints: store.len(),
            wall: start.elapsed(),
        }
    }
}

/// Runs one plan (a fixed campaign or one adaptive batch) sharded
/// across `workers` threads, returning each worker's tally.
#[allow(clippy::too_many_arguments)]
fn run_plan(
    machine: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    cycle_budget: u64,
    golden_digest: u64,
    checkpoints: &DecodedCheckpoints,
    plan: &SamplingPlan,
    workers: usize,
) -> Vec<Vec<(InjectionTarget, OutcomeCounts)>> {
    let mut tallies = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    run_shard(
                        machine,
                        program,
                        instr_budget,
                        cycle_budget,
                        golden_digest,
                        checkpoints,
                        plan.shard(w, workers),
                    )
                })
            })
            .collect();
        for h in handles {
            tallies.push(h.join().expect("campaign worker panicked"));
        }
    });
    tallies
}

/// Executes one worker's cycle-sorted shard on a single forward pass:
/// restore the nearest golden checkpoint, advance to each injection
/// cycle, snapshot, flip, run the faulty future out, classify, rewind.
fn run_shard<'t>(
    machine: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    cycle_budget: u64,
    golden_digest: u64,
    checkpoints: &DecodedCheckpoints,
    shard: impl Iterator<Item = &'t Trial>,
) -> Vec<(InjectionTarget, OutcomeCounts)> {
    let mut tally: Vec<(InjectionTarget, OutcomeCounts)> = Vec::new();
    let mut sim: Option<InjectionSim<'_>> = None;
    for trial in shard {
        // Lazy init: restore the nearest checkpoint below the shard's
        // first (lowest) injection cycle instead of simulating the
        // prefix from cycle 0.
        let sim = sim.get_or_insert_with(|| {
            let mut s = InjectionSim::new(machine, program, instr_budget);
            s.set_cycle_budget(cycle_budget);
            let (_, snap) = checkpoints
                .nearest(trial.cycle)
                .expect("store always holds the cycle-0 checkpoint");
            s.restore(snap);
            s
        });
        let outcome = classify_trial(sim, trial, golden_digest);
        match tally.iter_mut().find(|(t, _)| *t == trial.target) {
            Some((_, c)) => c.record(outcome),
            None => {
                let mut c = OutcomeCounts::default();
                c.record(outcome);
                tally.push((trial.target, c));
            }
        }
    }
    tally
}

/// Classifies a single trial on `sim`, which must be positioned at or
/// before the trial's injection cycle (and on the fault-free path).
/// Returns with `sim` rewound to the injection point, ready for the
/// next (equal-or-later-cycle) trial.
///
/// A trial whose injection cycle the fault-free prefix never reaches is
/// classified [`Outcome::Unreached`] — an explicit invalid-sample
/// verdict rather than the old `debug_assert!`, which in release builds
/// silently injected at whatever earlier cycle the run ended on.
pub fn classify_trial(sim: &mut InjectionSim<'_>, trial: &Trial, golden_digest: u64) -> Outcome {
    if !sim.run_to_cycle(trial.cycle) {
        return Outcome::Unreached;
    }
    // Dry-probe first: provably masked flips touch no machine state, so
    // they need neither the snapshot nor the rewind — on masked-heavy
    // programs that halves the deep-clone cost.
    match sim.probe_bit(trial.target, trial.entry, trial.bit) {
        FlipEffect::Masked(_) => Outcome::Masked,
        FlipEffect::Armed => {
            let snap = sim.snapshot();
            let armed = sim.flip_bit(trial.target, trial.entry, trial.bit);
            debug_assert_eq!(armed, FlipEffect::Armed, "probe and flip must agree");
            let outcome = match sim.run_to_end() {
                RunEnd::Trapped | RunEnd::Timeout => Outcome::Due,
                RunEnd::Completed => {
                    if sim.memory_digest() == golden_digest {
                        Outcome::Masked
                    } else {
                        Outcome::Sdc
                    }
                }
            };
            sim.restore(&snap);
            outcome
        }
    }
}
