//! The campaign backend protocol: *where* trials execute, decoupled
//! from *how* a campaign is driven.
//!
//! [`Campaign::run`](crate::Campaign::run) used to own its worker
//! threads directly; bounding worst-case AVF at paper scale needs
//! millions of trials across many (program, machine) pairs, which means
//! the driver must not care whether trials run on this process's thread
//! pool or on a rack of remote workers. This module is the seam:
//!
//! * [`JobSpec`] — everything a worker needs to execute trials for one
//!   campaign: the program, the machine configuration, the serialized
//!   fault-free [`CheckpointStore`], and the execution budgets. It has
//!   a self-contained wire encoding (enveloped with
//!   [`avf_isa::wire::kind::JOB_SETUP`]) so the same value can cross a
//!   socket unchanged.
//! * [`CampaignBackend::open`] — binds a job to an execution venue and
//!   returns a [`CampaignSession`].
//! * [`CampaignSession::submit`] — hands the session one batch of
//!   [`Trial`]s and returns a [`TrialStream`]: an iterator of
//!   [`TrialEvent`]s that yields each classified outcome *as it
//!   completes*, so an adaptive driver can re-allocate the next batch
//!   no matter where (or in what order) the trials actually ran.
//! * [`LocalBackend`] — the in-process thread pool, now just one client
//!   of this API. The TCP server and `RemoteBackend` in `avf-service`
//!   are the other.
//!
//! Outcome counts merge commutatively, and every trial's sample is a
//! pure function of `(seed, batch, index)`, so a campaign report is
//! identical for any backend, worker count, or event arrival order.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use avf_isa::wire::{kind, WireError, WireReader, WireWriter};
use avf_isa::Program;
use avf_sim::{
    CheckpointStore, DecodedCheckpoints, FlipEffect, InjectionSim, InjectionTarget, MachineConfig,
    RunEnd,
};

use crate::plan::Trial;
use crate::Outcome;

/// Why a backend could not execute (part of) a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A payload failed to encode or decode.
    Wire(WireError),
    /// A transport-level I/O failure (connect, read, write).
    Io(String),
    /// A frame larger than the transport's safety limit.
    Oversized {
        /// Length announced by the frame header.
        len: u64,
        /// The transport's limit.
        max: u64,
    },
    /// The peer violated the campaign protocol (wrong frame kind,
    /// missing events, events for unplanned targets).
    Protocol(String),
    /// A worker reported a fatal error of its own.
    Remote(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Wire(e) => write!(f, "wire codec: {e}"),
            BackendError::Io(e) => write!(f, "transport: {e}"),
            BackendError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            BackendError::Protocol(what) => write!(f, "protocol violation: {what}"),
            BackendError::Remote(what) => write!(f, "worker error: {what}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<WireError> for BackendError {
    fn from(e: WireError) -> BackendError {
        BackendError::Wire(e)
    }
}

impl From<std::io::Error> for BackendError {
    fn from(e: std::io::Error) -> BackendError {
        BackendError::Io(e.to_string())
    }
}

/// Everything an execution venue needs to run trials for one campaign:
/// program, machine, golden-run checkpoints, and budgets. The driver
/// builds one per campaign; backends may clone it to any number of
/// workers.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Machine configuration the plan was sampled against.
    pub machine: MachineConfig,
    /// Program under injection.
    pub program: Program,
    /// Serialized fault-free checkpoints (workers restore the nearest
    /// one instead of replaying the prefix).
    pub store: CheckpointStore,
    /// Committed-instruction budget of every trial.
    pub instr_budget: u64,
    /// Cycle watchdog budget of every trial (hang ⇒ DUE).
    pub cycle_budget: u64,
    /// Memory digest of the fault-free run (the SDC comparator).
    pub golden_digest: u64,
}

impl JobSpec {
    /// Serializes the job to a self-contained enveloped blob.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::JOB_SETUP);
        self.machine.encode(&mut w);
        self.program.encode(&mut w);
        self.store.encode(&mut w);
        w.u64(self.instr_budget);
        w.u64(self.cycle_budget);
        w.u64(self.golden_digest);
        w.into_bytes()
    }

    /// Decodes a job written by [`JobSpec::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// invalid machine/program payload.
    pub fn from_wire(bytes: &[u8]) -> Result<JobSpec, WireError> {
        let mut r = WireReader::new(bytes);
        r.expect_envelope(kind::JOB_SETUP)?;
        let machine = MachineConfig::decode(&mut r)?;
        let program = Program::decode(&mut r)?;
        let store = CheckpointStore::decode(&mut r)?;
        let spec = JobSpec {
            machine,
            program,
            store,
            instr_budget: r.u64()?,
            cycle_budget: r.u64()?,
            golden_digest: r.u64()?,
        };
        r.finish()?;
        Ok(spec)
    }
}

/// One classified trial outcome, streamed back from wherever the trial
/// executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialEvent {
    /// Global trial index (from the plan).
    pub index: u64,
    /// Structure the trial injected into.
    pub target: InjectionTarget,
    /// Classified outcome.
    pub outcome: Outcome,
}

impl TrialEvent {
    /// Serializes the event to a self-contained enveloped blob.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::TRIAL_EVENT);
        w.u64(self.index);
        w.u8(self.target.wire_code());
        w.u8(self.outcome.wire_code());
        w.into_bytes()
    }

    /// Decodes the payload of a [`kind::TRIAL_EVENT`] envelope whose
    /// header `r` has already consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or unknown codes.
    pub fn decode_body(r: &mut WireReader<'_>) -> Result<TrialEvent, WireError> {
        let index = r.u64()?;
        let target_code = r.u8()?;
        let outcome_code = r.u8()?;
        Ok(TrialEvent {
            index,
            target: InjectionTarget::from_wire_code(target_code)
                .ok_or(WireError::BadTag(target_code))?,
            outcome: Outcome::from_wire_code(outcome_code)
                .ok_or(WireError::BadTag(outcome_code))?,
        })
    }

    /// Decodes an event written by [`TrialEvent::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch or truncation.
    pub fn from_wire(bytes: &[u8]) -> Result<TrialEvent, WireError> {
        let mut r = WireReader::new(bytes);
        r.expect_envelope(kind::TRIAL_EVENT)?;
        let ev = TrialEvent::decode_body(&mut r)?;
        r.finish()?;
        Ok(ev)
    }
}

/// Serializes one batch of trials to an enveloped blob
/// ([`kind::TRIAL_BATCH`]).
#[must_use]
pub fn encode_trial_batch(trials: &[Trial]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.envelope(kind::TRIAL_BATCH);
    w.usize(trials.len());
    for t in trials {
        t.encode(&mut w);
    }
    w.into_bytes()
}

/// Decodes a batch written by [`encode_trial_batch`].
///
/// # Errors
///
/// Returns a [`WireError`] on envelope mismatch, truncation, or unknown
/// target codes.
pub fn decode_trial_batch(bytes: &[u8]) -> Result<Vec<Trial>, WireError> {
    let mut r = WireReader::new(bytes);
    r.expect_envelope(kind::TRIAL_BATCH)?;
    let n = r.seq_len(Trial::WIRE_BYTES)?;
    let mut trials = Vec::with_capacity(n);
    for _ in 0..n {
        trials.push(Trial::decode(&mut r)?);
    }
    r.finish()?;
    Ok(trials)
}

/// An execution venue for campaign trials.
///
/// Implementations bind a [`JobSpec`] once (paying setup — checkpoint
/// decode, connections — a single time) and then execute any number of
/// trial batches against it.
pub trait CampaignBackend {
    /// Degree of parallelism this backend reports (recorded in the
    /// campaign report; never affects results).
    fn workers(&self) -> usize;

    /// Binds a job to this venue, returning the session batches are
    /// submitted through.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the venue cannot accept the job
    /// (bad checkpoints, unreachable workers).
    fn open(&self, spec: JobSpec) -> Result<Box<dyn CampaignSession>, BackendError>;
}

/// One campaign's execution state on a backend.
pub trait CampaignSession {
    /// Executes one batch of trials, streaming classified outcomes back
    /// as they complete. The stream must be drained before the next
    /// `submit` (the `&mut` receiver enforces it).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the batch cannot be dispatched.
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError>;
}

/// Streaming iterator of per-trial outcomes for one submitted batch.
///
/// Yields events in completion order (which is execution-venue
/// dependent and irrelevant to the result: outcome counts commute).
/// The stream ends when every worker has reported; worker threads are
/// joined on exhaustion or drop.
pub struct TrialStream {
    rx: mpsc::Receiver<Result<TrialEvent, BackendError>>,
    handles: Vec<JoinHandle<()>>,
}

impl TrialStream {
    /// Wraps a channel of events plus the worker threads feeding it.
    #[must_use]
    pub fn new(
        rx: mpsc::Receiver<Result<TrialEvent, BackendError>>,
        handles: Vec<JoinHandle<()>>,
    ) -> TrialStream {
        TrialStream { rx, handles }
    }

    fn join_workers(&mut self) {
        for h in self.handles.drain(..) {
            // A panicking worker dropped its sender, which already
            // terminated the stream; surface the panic to the caller.
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Iterator for TrialStream {
    type Item = Result<TrialEvent, BackendError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.rx.recv() {
            Ok(item) => Some(item),
            Err(_) => {
                self.join_workers();
                None
            }
        }
    }
}

impl Drop for TrialStream {
    fn drop(&mut self) {
        // Stop buffering for senders, then wait the workers out so an
        // abandoned stream cannot leak threads into the next batch.
        drop(std::mem::replace(&mut self.rx, mpsc::channel().1));
        self.join_workers();
    }
}

/// Splits `trials` into `workers` cycle-sorted strided shards.
///
/// Each shard ascends in injection cycle, so one forward simulation
/// pass (checkpoint restore at the head, snapshot/flip/rewind at each
/// point) covers it; striding balances the per-trial tail-replay cost
/// across workers. Shards partition the input: every trial appears in
/// exactly one.
#[must_use]
pub fn shard_trials(trials: &[Trial], workers: usize) -> Vec<Vec<Trial>> {
    let mut by_cycle: Vec<usize> = (0..trials.len()).collect();
    by_cycle.sort_by_key(|&i| (trials[i].cycle, trials[i].index));
    let workers = workers.max(1);
    let mut shards = vec![Vec::with_capacity(trials.len() / workers + 1); workers];
    for (pos, &i) in by_cycle.iter().enumerate() {
        shards[pos % workers].push(trials[i]);
    }
    shards
}

/// Classifies a single trial on `sim`, which must be positioned at or
/// before the trial's injection cycle (and on the fault-free path).
/// Returns with `sim` rewound to the injection point, ready for the
/// next (equal-or-later-cycle) trial.
///
/// A trial whose injection cycle the fault-free prefix never reaches is
/// classified [`Outcome::Unreached`] — an explicit invalid-sample
/// verdict rather than the old `debug_assert!`, which in release builds
/// silently injected at whatever earlier cycle the run ended on.
pub fn classify_trial(sim: &mut InjectionSim<'_>, trial: &Trial, golden_digest: u64) -> Outcome {
    if !sim.run_to_cycle(trial.cycle) {
        return Outcome::Unreached;
    }
    // Dry-probe first: provably masked flips touch no machine state, so
    // they need neither the snapshot nor the rewind — on masked-heavy
    // programs that halves the deep-clone cost.
    match sim.probe_bit(trial.target, trial.entry, trial.bit) {
        FlipEffect::Masked(_) => Outcome::Masked,
        FlipEffect::Armed => {
            let snap = sim.snapshot();
            let armed = sim.flip_bit(trial.target, trial.entry, trial.bit);
            debug_assert_eq!(armed, FlipEffect::Armed, "probe and flip must agree");
            let outcome = match sim.run_to_end() {
                RunEnd::Trapped | RunEnd::Timeout => Outcome::Due,
                RunEnd::Completed => {
                    if sim.memory_digest() == golden_digest {
                        Outcome::Masked
                    } else {
                        Outcome::Sdc
                    }
                }
            };
            sim.restore(&snap);
            outcome
        }
    }
}

/// The decoded, shareable execution state of one local campaign.
struct LocalJob {
    machine: MachineConfig,
    program: Program,
    checkpoints: DecodedCheckpoints,
    instr_budget: u64,
    cycle_budget: u64,
    golden_digest: u64,
}

impl LocalJob {
    /// Executes one cycle-sorted shard on a single forward pass,
    /// emitting an event per trial.
    fn run_shard(&self, shard: &[Trial], tx: &mpsc::Sender<Result<TrialEvent, BackendError>>) {
        let mut sim: Option<InjectionSim<'_>> = None;
        for trial in shard {
            // Lazy init: restore the nearest checkpoint below the
            // shard's first (lowest) injection cycle instead of
            // simulating the prefix from cycle 0.
            let sim = sim.get_or_insert_with(|| {
                let mut s = InjectionSim::new(&self.machine, &self.program, self.instr_budget);
                s.set_cycle_budget(self.cycle_budget);
                let (_, snap) = self
                    .checkpoints
                    .nearest(trial.cycle)
                    .expect("store always holds the cycle-0 checkpoint");
                s.restore(snap);
                s
            });
            let outcome = classify_trial(sim, trial, self.golden_digest);
            let event = TrialEvent {
                index: trial.index,
                target: trial.target,
                outcome,
            };
            if tx.send(Ok(event)).is_err() {
                return; // the stream was dropped; no one is listening
            }
        }
    }
}

/// The in-process thread-pool backend: the execution engine
/// [`Campaign::run`](crate::Campaign::run) always had, refit behind the
/// backend API.
pub struct LocalBackend {
    workers: usize,
}

impl LocalBackend {
    /// A local backend with `threads` workers (0 = all available
    /// cores).
    #[must_use]
    pub fn new(threads: usize) -> LocalBackend {
        let workers = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        LocalBackend { workers }
    }
}

impl CampaignBackend for LocalBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn open(&self, spec: JobSpec) -> Result<Box<dyn CampaignSession>, BackendError> {
        // Decode each checkpoint once per campaign; workers restore by
        // deep clone instead of re-parsing blobs per batch.
        let checkpoints = spec.store.decode_all(&spec.machine, &spec.program)?;
        Ok(Box::new(LocalSession {
            job: Arc::new(LocalJob {
                machine: spec.machine,
                program: spec.program,
                checkpoints,
                instr_budget: spec.instr_budget,
                cycle_budget: spec.cycle_budget,
                golden_digest: spec.golden_digest,
            }),
            workers: self.workers,
        }))
    }
}

struct LocalSession {
    job: Arc<LocalJob>,
    workers: usize,
}

impl CampaignSession for LocalSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let (tx, rx) = mpsc::channel();
        let handles = shard_trials(trials, self.workers)
            .into_iter()
            .filter(|shard| !shard.is_empty())
            .map(|shard| {
                let job = Arc::clone(&self.job);
                let tx = tx.clone();
                std::thread::spawn(move || job.run_shard(&shard, &tx))
            })
            .collect();
        // Drop the prototype sender so the stream terminates when the
        // last worker finishes.
        drop(tx);
        Ok(TrialStream::new(rx, handles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(index: u64, cycle: u64) -> Trial {
        Trial {
            index,
            target: InjectionTarget::ALL[(index % 8) as usize],
            cycle,
            entry: index * 3,
            bit: (index % 60) as u32,
        }
    }

    #[test]
    fn trial_batch_round_trips() {
        let trials: Vec<Trial> = (0..17).map(|i| trial(i, 1000 - i * 7)).collect();
        let bytes = encode_trial_batch(&trials);
        assert_eq!(decode_trial_batch(&bytes).unwrap(), trials);
        assert!(decode_trial_batch(&bytes[..bytes.len() - 1]).is_err());
        assert!(matches!(
            decode_trial_batch(&[0u8; 32]),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn trial_event_round_trips() {
        for (i, outcome) in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Due,
            Outcome::Unreached,
        ]
        .into_iter()
        .enumerate()
        {
            let ev = TrialEvent {
                index: i as u64 * 1000,
                target: InjectionTarget::ALL[i * 2],
                outcome,
            };
            assert_eq!(TrialEvent::from_wire(&ev.to_wire()).unwrap(), ev);
        }
    }

    #[test]
    fn shards_partition_and_sort_by_cycle() {
        let trials: Vec<Trial> = (0..101).map(|i| trial(i, (i * 37) % 500)).collect();
        let shards = shard_trials(&trials, 4);
        assert_eq!(shards.len(), 4);
        let mut seen: Vec<u64> = shards.iter().flatten().map(|t| t.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..101).collect::<Vec<_>>());
        for shard in &shards {
            assert!(shard.windows(2).all(|p| p[0].cycle <= p[1].cycle));
        }
        // Zero workers degrades to one shard rather than panicking.
        assert_eq!(shard_trials(&trials, 0).len(), 1);
    }
}
