//! The campaign backend protocol: *where* trials execute, decoupled
//! from *how* a campaign is driven.
//!
//! [`Campaign::run`](crate::Campaign::run) used to own its worker
//! threads directly; bounding worst-case AVF at paper scale needs
//! millions of trials across many (program, machine) pairs, which means
//! the driver must not care whether trials run on this process's thread
//! pool or on a rack of remote workers. This module is the seam:
//!
//! * [`JobSpec`] — everything a worker needs to execute trials for one
//!   campaign: the program, the machine configuration, the instruction
//!   budget, and a [`GoldenSpec`] saying where the fault-free reference
//!   comes from — either a [`CheckpointStore`] the driver already
//!   captured ([`GoldenSpec::Shipped`]) or an instruction to the venue
//!   to execute the golden pass itself ([`GoldenSpec::Delegated`], the
//!   default: N remote workers warm up in parallel and the driver
//!   never simulates the prefix locally).
//! * [`CampaignBackend::open`] — binds a job to an execution venue and
//!   returns an [`OpenedJob`]: the [`CampaignSession`] plus the golden
//!   run the venue resolved (measured or received) and a per-worker
//!   record of how each worker obtained the checkpoint store.
//! * [`CampaignSession::submit`] — hands the session one batch of
//!   [`Trial`]s and returns a [`TrialStream`]: an iterator of
//!   [`TrialEvent`]s that yields each classified outcome *as it
//!   completes*, so an adaptive driver can re-allocate the next batch
//!   no matter where (or in what order) the trials actually ran.
//! * [`LocalBackend`] — the in-process thread pool, now just one client
//!   of this API. The TCP server and `RemoteBackend` in `avf-service`
//!   are the other.
//!
//! Outcome counts merge commutatively, and every trial's sample is a
//! pure function of `(seed, batch, index)`, so a campaign report is
//! identical for any backend, worker count, or event arrival order.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use avf_isa::wire::{kind, WireError, WireReader, WireWriter};
use avf_isa::Program;
use avf_prune::PruneMap;
use avf_sim::{
    golden_run_checkpointed, golden_run_with_evidence, CheckpointStore, DecodedCheckpoints,
    FaultModel, FlipEffect, GoldenRun, InjectionSim, InjectionTarget, MachineConfig, RunEnd,
    PRUNE_WINDOW,
};

use crate::plan::Trial;
use crate::Outcome;

/// Why a backend could not execute (part of) a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A payload failed to encode or decode.
    Wire(WireError),
    /// A transport-level I/O failure (connect, read, write).
    Io(String),
    /// A worker's connection died mid-session: the stream closed or
    /// truncated between frames. Distinct from [`BackendError::Remote`]
    /// (the worker is alive and reported a job-level error) because the
    /// remote backend treats a dead connection as *retryable* — the
    /// worker's unacknowledged trials are re-dispatched to survivors —
    /// while a reported error is always fatal.
    Disconnected {
        /// The worker whose connection died (address, or `all` when no
        /// survivor remained to re-dispatch to).
        worker: String,
        /// What the transport reported.
        detail: String,
    },
    /// A frame larger than the transport's safety limit.
    Oversized {
        /// Length announced by the frame header.
        len: u64,
        /// The transport's limit.
        max: u64,
    },
    /// The peer violated the campaign protocol (wrong frame kind,
    /// missing events, events for unplanned targets, golden-run
    /// divergence between workers).
    Protocol(String),
    /// A worker reported a fatal error of its own.
    Remote(String),
    /// A frame failed keyed-hash authentication: missing or mismatched
    /// tag, a replayed sequence number, or an unauthenticated peer
    /// talking to a keyed endpoint. Always fatal for the session —
    /// authentication failures are never retried or silently ignored.
    Auth(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Wire(e) => write!(f, "wire codec: {e}"),
            BackendError::Io(e) => write!(f, "transport: {e}"),
            BackendError::Disconnected { worker, detail } => {
                write!(f, "worker {worker} disconnected: {detail}")
            }
            BackendError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            BackendError::Protocol(what) => write!(f, "protocol violation: {what}"),
            BackendError::Remote(what) => write!(f, "worker error: {what}"),
            BackendError::Auth(what) => write!(f, "frame authentication failed: {what}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<WireError> for BackendError {
    fn from(e: WireError) -> BackendError {
        BackendError::Wire(e)
    }
}

impl From<std::io::Error> for BackendError {
    fn from(e: std::io::Error) -> BackendError {
        BackendError::Io(e.to_string())
    }
}

/// Where a job's fault-free reference (golden run + checkpoint store)
/// comes from.
#[derive(Debug, Clone)]
pub enum GoldenSpec {
    /// The driver already executed the golden pass and hands the
    /// results over. Over the wire only the store's *content hash*
    /// travels with the setup — a worker that already caches the store
    /// replies `HAVE` and the bytes are never re-shipped.
    Shipped {
        /// Serialized fault-free checkpoints (`Arc` so a cache or a
        /// multi-worker fan-out never deep-copies the blobs).
        store: Arc<CheckpointStore>,
        /// Already-decoded snapshots of the same store, when the venue
        /// has them at hand (a worker's decoded-checkpoint cache): the
        /// local backend then skips the per-campaign `decode_all`.
        /// `None` means "decode from the bytes".
        decoded: Option<Arc<DecodedCheckpoints>>,
        /// The fault-free reference run the store was captured from.
        golden: GoldenRun,
        /// Cycle watchdog budget of every trial (hang ⇒ DUE).
        cycle_budget: u64,
    },
    /// The execution venue runs [`avf_sim::golden_run_checkpointed`]
    /// itself from the shipped program/machine. N remote workers warm
    /// up in parallel, the driver never simulates the prefix, and the
    /// driver cross-checks that every worker reports the identical
    /// golden digest.
    Delegated {
        /// Golden-run checkpoint spacing in cycles (must be positive).
        checkpoint_interval: u64,
    },
}

/// Everything an execution venue needs to run trials for one campaign:
/// program, machine, instruction budget, and the golden-run source.
/// The driver builds one per campaign; backends may clone it to any
/// number of workers.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Machine configuration the plan was sampled against.
    pub machine: MachineConfig,
    /// Program under injection.
    pub program: Program,
    /// Committed-instruction budget of every trial (and of a delegated
    /// golden run).
    pub instr_budget: u64,
    /// How queueing-structure control/tag flips are resolved (the
    /// golden run is fault-free, so the model changes trial
    /// classification only — never the store or the reference digest).
    pub fault_model: FaultModel,
    /// Where the fault-free reference comes from.
    pub golden: GoldenSpec,
    /// Whether the campaign samples under a prune map. In delegated
    /// golden mode this asks the venue to capture ACE evidence during
    /// its golden pass and return the classifier's [`PruneMap`] in the
    /// opened job; in shipped mode the driver built the map alongside
    /// the store it ships, so the venue has nothing to add.
    pub prune: bool,
}

/// The hang watchdog every trial runs under, derived from the golden
/// run's length: a faulty run materially slower than the reference
/// counts as a detected (timeout) error. One shared formula so the
/// driver, the local backend, and every remote worker agree bit-for-bit
/// on trial classification.
#[must_use]
pub fn cycle_budget_of(golden_cycles: u64) -> u64 {
    golden_cycles.saturating_mul(4).saturating_add(50_000)
}

/// How one worker obtained the job's checkpoint store at `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSource {
    /// The worker already held the store (content-hash cache hit).
    Cached,
    /// The store was shipped to the worker over the session.
    Shipped,
    /// The worker executed the golden run itself.
    GoldenRun,
}

impl fmt::Display for StoreSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreSource::Cached => "cached",
            StoreSource::Shipped => "shipped",
            StoreSource::GoldenRun => "golden-run",
        })
    }
}

/// Per-worker record of how `open` provisioned the checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerProvision {
    /// Worker identity (remote address, or `local`).
    pub worker: String,
    /// How the worker obtained the store.
    pub source: StoreSource,
}

/// One dispatch of trials to one worker, recorded by the session so the
/// campaign report carries the full per-worker dispatch/re-dispatch
/// trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRecord {
    /// Driver batch index (0-based submit counter of the session).
    pub batch: u64,
    /// Worker the shard went to (remote address, or `local#k`).
    pub worker: String,
    /// Trials in the shard.
    pub trials: u64,
    /// Whether this dispatch re-queued trials a dead worker never
    /// acknowledged (`false` for the batch's initial fan-out).
    pub redispatched: bool,
}

/// A bound job: the batch session plus everything the venue resolved
/// while setting it up.
pub struct OpenedJob {
    /// The session trial batches are submitted through.
    pub session: Box<dyn CampaignSession>,
    /// The fault-free reference — measured by the venue in delegated
    /// mode, echoed back in shipped mode.
    pub golden: GoldenRun,
    /// Checkpoints in the job's store.
    pub checkpoints: usize,
    /// How each worker obtained the store.
    pub provisioning: Vec<WorkerProvision>,
    /// The prune map the venue built during a delegated golden pass
    /// (`None` when the job did not request pruning, or when the driver
    /// shipped the reference and therefore already holds the map). When
    /// multiple workers build it independently, the backend must
    /// cross-check they agree bit-for-bit before returning one.
    pub prune: Option<Arc<PruneMap>>,
}

/// One classified trial outcome, streamed back from wherever the trial
/// executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialEvent {
    /// Global trial index (from the plan).
    pub index: u64,
    /// Structure the trial injected into.
    pub target: InjectionTarget,
    /// Classified outcome.
    pub outcome: Outcome,
}

impl TrialEvent {
    /// Serializes the event to a self-contained enveloped blob.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::TRIAL_EVENT);
        w.u64(self.index);
        w.u8(self.target.wire_code());
        w.u8(self.outcome.wire_code());
        w.into_bytes()
    }

    /// Decodes the payload of a [`kind::TRIAL_EVENT`] envelope whose
    /// header `r` has already consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or unknown codes.
    pub fn decode_body(r: &mut WireReader<'_>) -> Result<TrialEvent, WireError> {
        let index = r.u64()?;
        let target_code = r.u8()?;
        let outcome_code = r.u8()?;
        Ok(TrialEvent {
            index,
            target: InjectionTarget::from_wire_code(target_code)
                .ok_or(WireError::BadTag(target_code))?,
            outcome: Outcome::from_wire_code(outcome_code)
                .ok_or(WireError::BadTag(outcome_code))?,
        })
    }

    /// Decodes an event written by [`TrialEvent::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch or truncation.
    pub fn from_wire(bytes: &[u8]) -> Result<TrialEvent, WireError> {
        let mut r = WireReader::new(bytes);
        r.expect_envelope(kind::TRIAL_EVENT)?;
        let ev = TrialEvent::decode_body(&mut r)?;
        r.finish()?;
        Ok(ev)
    }
}

/// Serializes one batch of trials to an enveloped blob
/// ([`kind::TRIAL_BATCH`]).
#[must_use]
pub fn encode_trial_batch(trials: &[Trial]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.envelope(kind::TRIAL_BATCH);
    w.usize(trials.len());
    for t in trials {
        t.encode(&mut w);
    }
    w.into_bytes()
}

/// Decodes a batch written by [`encode_trial_batch`].
///
/// # Errors
///
/// Returns a [`WireError`] on envelope mismatch, truncation, or unknown
/// target codes.
pub fn decode_trial_batch(bytes: &[u8]) -> Result<Vec<Trial>, WireError> {
    let mut r = WireReader::new(bytes);
    r.expect_envelope(kind::TRIAL_BATCH)?;
    let n = r.seq_len(Trial::WIRE_BYTES)?;
    let mut trials = Vec::with_capacity(n);
    for _ in 0..n {
        trials.push(Trial::decode(&mut r)?);
    }
    r.finish()?;
    Ok(trials)
}

/// An execution venue for campaign trials.
///
/// Implementations bind a [`JobSpec`] once (paying setup — golden run
/// or checkpoint decode, connections — a single time) and then execute
/// any number of trial batches against it.
pub trait CampaignBackend {
    /// Degree of parallelism this backend reports (recorded in the
    /// campaign report; never affects results).
    fn workers(&self) -> usize;

    /// Binds a job to this venue, returning the opened session plus the
    /// golden run the venue resolved.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the venue cannot accept the job
    /// (bad checkpoints, unreachable workers, golden-run divergence
    /// between workers).
    fn open(&self, spec: JobSpec) -> Result<OpenedJob, BackendError>;
}

/// One campaign's execution state on a backend.
pub trait CampaignSession {
    /// Executes one batch of trials, streaming classified outcomes back
    /// as they complete. The stream must be drained before the next
    /// `submit` (the `&mut` receiver enforces it).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the batch cannot be dispatched.
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError>;

    /// Every dispatch the session performed so far, in dispatch order —
    /// including re-dispatches of trials a dead worker never
    /// acknowledged. Default: no record kept.
    fn dispatch_log(&self) -> Vec<DispatchRecord> {
        Vec::new()
    }
}

/// Streaming iterator of per-trial outcomes for one submitted batch.
///
/// Yields events in completion order (which is execution-venue
/// dependent and irrelevant to the result: outcome counts commute).
/// The stream ends when every worker has reported; worker threads are
/// joined on exhaustion or drop.
pub struct TrialStream {
    rx: mpsc::Receiver<Result<TrialEvent, BackendError>>,
    handles: Vec<JoinHandle<()>>,
}

impl TrialStream {
    /// Wraps a channel of events plus the worker threads feeding it.
    #[must_use]
    pub fn new(
        rx: mpsc::Receiver<Result<TrialEvent, BackendError>>,
        handles: Vec<JoinHandle<()>>,
    ) -> TrialStream {
        TrialStream { rx, handles }
    }

    fn join_workers(&mut self) {
        for h in self.handles.drain(..) {
            // A panicking worker dropped its sender, which already
            // terminated the stream; surface the panic to the caller.
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Iterator for TrialStream {
    type Item = Result<TrialEvent, BackendError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.rx.recv() {
            Ok(item) => Some(item),
            Err(_) => {
                self.join_workers();
                None
            }
        }
    }
}

impl Drop for TrialStream {
    fn drop(&mut self) {
        // Stop buffering for senders, then wait the workers out so an
        // abandoned stream cannot leak threads into the next batch.
        drop(std::mem::replace(&mut self.rx, mpsc::channel().1));
        self.join_workers();
    }
}

/// Splits `trials` into `workers` cycle-sorted strided shards.
///
/// Each shard ascends in injection cycle, so one forward simulation
/// pass (checkpoint restore at the head, snapshot/flip/rewind at each
/// point) covers it; striding balances the per-trial tail-replay cost
/// across workers. Shards partition the input: every trial appears in
/// exactly one.
#[must_use]
pub fn shard_trials(trials: &[Trial], workers: usize) -> Vec<Vec<Trial>> {
    let mut by_cycle: Vec<usize> = (0..trials.len()).collect();
    by_cycle.sort_by_key(|&i| (trials[i].cycle, trials[i].index));
    let workers = workers.max(1);
    let mut shards = vec![Vec::with_capacity(trials.len() / workers + 1); workers];
    for (pos, &i) in by_cycle.iter().enumerate() {
        shards[pos % workers].push(trials[i]);
    }
    shards
}

/// Classifies a single trial on `sim`, which must be positioned at or
/// before the trial's injection cycle (and on the fault-free path).
/// Returns with `sim` rewound to the injection point, ready for the
/// next (equal-or-later-cycle) trial.
///
/// A trial whose injection cycle the fault-free prefix never reaches is
/// classified [`Outcome::Unreached`] — an explicit invalid-sample
/// verdict rather than the old `debug_assert!`, which in release builds
/// silently injected at whatever earlier cycle the run ended on.
pub fn classify_trial(sim: &mut InjectionSim<'_>, trial: &Trial, golden_digest: u64) -> Outcome {
    if !sim.run_to_cycle(trial.cycle) {
        return Outcome::Unreached;
    }
    // Dry-probe first: provably masked flips touch no machine state, so
    // they need neither the snapshot nor the rewind — on masked-heavy
    // programs that halves the deep-clone cost.
    match sim.probe_bit(trial.target, trial.entry, trial.bit) {
        FlipEffect::Masked(_) => Outcome::Masked,
        // An architecturally impossible decode mutates nothing either:
        // the verdict is immediate.
        FlipEffect::Diverged => Outcome::ReplayDiverged,
        FlipEffect::Armed => {
            let snap = sim.snapshot();
            let armed = sim.flip_bit(trial.target, trial.entry, trial.bit);
            debug_assert_eq!(armed, FlipEffect::Armed, "probe and flip must agree");
            let outcome = match sim.run_to_end() {
                RunEnd::Trapped | RunEnd::Timeout => Outcome::Due,
                RunEnd::Completed => {
                    if sim.memory_digest() == golden_digest {
                        Outcome::Masked
                    } else {
                        Outcome::Sdc
                    }
                }
            };
            sim.restore(&snap);
            outcome
        }
    }
}

/// The decoded, shareable execution state of one local campaign.
struct LocalJob {
    machine: MachineConfig,
    program: Program,
    checkpoints: Arc<DecodedCheckpoints>,
    instr_budget: u64,
    cycle_budget: u64,
    fault_model: FaultModel,
    golden_digest: u64,
}

impl LocalJob {
    /// Executes one cycle-sorted shard on a single forward pass,
    /// emitting an event per trial.
    fn run_shard(&self, shard: &[Trial], tx: &mpsc::Sender<Result<TrialEvent, BackendError>>) {
        let mut sim: Option<InjectionSim<'_>> = None;
        for trial in shard {
            // Lazy init: restore the nearest checkpoint below the
            // shard's first (lowest) injection cycle instead of
            // simulating the prefix from cycle 0.
            let sim = sim.get_or_insert_with(|| {
                let mut s = InjectionSim::new(&self.machine, &self.program, self.instr_budget);
                s.set_cycle_budget(self.cycle_budget);
                s.set_fault_model(self.fault_model);
                let (_, snap) = self
                    .checkpoints
                    .nearest(trial.cycle)
                    .expect("store always holds the cycle-0 checkpoint");
                s.restore(snap);
                s
            });
            let outcome = classify_trial(sim, trial, self.golden_digest);
            let event = TrialEvent {
                index: trial.index,
                target: trial.target,
                outcome,
            };
            if tx.send(Ok(event)).is_err() {
                return; // the stream was dropped; no one is listening
            }
        }
    }
}

/// The in-process thread-pool backend: the execution engine
/// [`Campaign::run`](crate::Campaign::run) always had, refit behind the
/// backend API.
pub struct LocalBackend {
    workers: usize,
}

impl LocalBackend {
    /// A local backend with `threads` workers (0 = all available
    /// cores).
    #[must_use]
    pub fn new(threads: usize) -> LocalBackend {
        let workers = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        LocalBackend { workers }
    }
}

impl CampaignBackend for LocalBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn open(&self, spec: JobSpec) -> Result<OpenedJob, BackendError> {
        let mut prune = None;
        let (store, decoded, golden, cycle_budget, source) = match spec.golden {
            GoldenSpec::Shipped {
                store,
                decoded,
                golden,
                cycle_budget,
            } => (store, decoded, golden, cycle_budget, StoreSource::Shipped),
            GoldenSpec::Delegated {
                checkpoint_interval,
            } => {
                if checkpoint_interval == 0 {
                    return Err(BackendError::Protocol(
                        "delegated golden run needs a positive checkpoint interval".to_owned(),
                    ));
                }
                let (golden, store) = if spec.prune {
                    // The instrumented golden pass captures ACE evidence
                    // for the site classifier while producing the exact
                    // same checkpoint stream.
                    let (golden, store, evidence) = golden_run_with_evidence(
                        &spec.machine,
                        &spec.program,
                        spec.instr_budget,
                        checkpoint_interval,
                        PRUNE_WINDOW,
                    );
                    prune = Some(Arc::new(PruneMap::build(
                        &spec.machine,
                        &spec.program,
                        spec.fault_model,
                        &evidence,
                    )));
                    (golden, store)
                } else {
                    golden_run_checkpointed(
                        &spec.machine,
                        &spec.program,
                        spec.instr_budget,
                        checkpoint_interval,
                    )
                };
                (
                    Arc::new(store),
                    None,
                    golden,
                    cycle_budget_of(golden.cycles),
                    StoreSource::GoldenRun,
                )
            }
        };
        let checkpoints_total = store.len();
        // Decode each checkpoint once per campaign (workers restore by
        // deep clone instead of re-parsing blobs per batch) — unless the
        // venue already holds the decoded snapshots (a cache hit in a
        // long-lived worker), in which case even that single decode is
        // skipped.
        let checkpoints = match decoded {
            Some(decoded) => decoded,
            None => Arc::new(store.decode_all(&spec.machine, &spec.program)?),
        };
        Ok(OpenedJob {
            session: Box::new(LocalSession {
                job: Arc::new(LocalJob {
                    machine: spec.machine,
                    program: spec.program,
                    checkpoints,
                    instr_budget: spec.instr_budget,
                    cycle_budget,
                    fault_model: spec.fault_model,
                    golden_digest: golden.digest,
                }),
                workers: self.workers,
                log: Vec::new(),
                batch: 0,
            }),
            golden,
            checkpoints: checkpoints_total,
            provisioning: vec![WorkerProvision {
                worker: "local".to_owned(),
                source,
            }],
            prune,
        })
    }
}

struct LocalSession {
    job: Arc<LocalJob>,
    workers: usize,
    log: Vec<DispatchRecord>,
    batch: u64,
}

impl CampaignSession for LocalSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let batch = self.batch;
        self.batch += 1;
        let (tx, rx) = mpsc::channel();
        let handles = shard_trials(trials, self.workers)
            .into_iter()
            .enumerate()
            .filter(|(_, shard)| !shard.is_empty())
            .map(|(k, shard)| {
                self.log.push(DispatchRecord {
                    batch,
                    worker: format!("local#{k}"),
                    trials: shard.len() as u64,
                    redispatched: false,
                });
                let job = Arc::clone(&self.job);
                let tx = tx.clone();
                std::thread::spawn(move || job.run_shard(&shard, &tx))
            })
            .collect();
        // Drop the prototype sender so the stream terminates when the
        // last worker finishes.
        drop(tx);
        Ok(TrialStream::new(rx, handles))
    }

    fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(index: u64, cycle: u64) -> Trial {
        Trial {
            index,
            target: InjectionTarget::ALL[(index % 8) as usize],
            cycle,
            entry: index * 3,
            bit: (index % 60) as u32,
        }
    }

    #[test]
    fn trial_batch_round_trips() {
        let trials: Vec<Trial> = (0..17).map(|i| trial(i, 1000 - i * 7)).collect();
        let bytes = encode_trial_batch(&trials);
        assert_eq!(decode_trial_batch(&bytes).unwrap(), trials);
        assert!(decode_trial_batch(&bytes[..bytes.len() - 1]).is_err());
        assert!(matches!(
            decode_trial_batch(&[0u8; 32]),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn trial_event_round_trips() {
        for (i, outcome) in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Due,
            Outcome::Unreached,
        ]
        .into_iter()
        .enumerate()
        {
            let ev = TrialEvent {
                index: i as u64 * 1000,
                target: InjectionTarget::ALL[i * 2],
                outcome,
            };
            assert_eq!(TrialEvent::from_wire(&ev.to_wire()).unwrap(), ev);
        }
    }

    #[test]
    fn shards_partition_and_sort_by_cycle() {
        let trials: Vec<Trial> = (0..101).map(|i| trial(i, (i * 37) % 500)).collect();
        let shards = shard_trials(&trials, 4);
        assert_eq!(shards.len(), 4);
        let mut seen: Vec<u64> = shards.iter().flatten().map(|t| t.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..101).collect::<Vec<_>>());
        for shard in &shards {
            assert!(shard.windows(2).all(|p| p[0].cycle <= p[1].cycle));
        }
        // Zero workers degrades to one shard rather than panicking.
        assert_eq!(shard_trials(&trials, 0).len(), 1);
    }
}
