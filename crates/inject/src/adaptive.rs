//! Adaptive trial allocation: spend the next batch where the
//! measurement is least precise.
//!
//! A fixed round-robin plan wastes most of its budget on structures
//! whose intervals are already narrow (a fully-masked cache needs far
//! fewer trials to pin near zero than a half-vulnerable issue queue
//! needs to pin near 0.5 — binomial variance peaks at p = ½). The
//! sequential-sampling practice in statistical injection frameworks
//! (OpenSEA's semi-formal analysis, the FPGA cycle-accurate SEU
//! framework) is to stop on a *precision* target instead of a trial
//! count; this module is the allocation half of that: between batches,
//! give new trials to the structures whose 95% Wilson half-widths are
//! still above the target, proportionally to how far they have to go.
//!
//! Allocation is a pure function of the accumulated per-target counts
//! (integers), so it is deterministic across thread counts and runs —
//! the floating-point weights are computed in fixed target order and
//! apportioned by largest remainder with index tie-breaks.

use avf_sim::InjectionTarget;

use crate::stats::OutcomeCounts;

/// Plans the next batch: `(target, trials)` for every target whose 95%
/// CI half-width still exceeds `ci_target`, splitting `batch` trials
/// proportionally to the half-widths. Returns an empty allocation when
/// every target has reached the precision target (the campaign's
/// early-exit signal) or `batch` is zero.
///
/// Targets with no data yet sit at the maximum half-width (0.5), so the
/// first batch spreads evenly.
///
/// `residual` gives each target's residual fraction under pruning (1.0
/// without a prune map). A stratified campaign samples only the
/// residual stratum and scales the estimate by the residual mass, so
/// the *overall* half-width is `w·hw` — targets converge once
/// `w·hw ≤ ci_target`, and fully-pruned targets (`w = 0`, an exact
/// zero) never receive trials.
#[must_use]
pub(crate) fn allocate_batch(
    targets: &[InjectionTarget],
    counts: &[OutcomeCounts],
    residual: &[f64],
    ci_target: f64,
    batch: u64,
) -> Vec<(InjectionTarget, u64)> {
    debug_assert_eq!(targets.len(), counts.len());
    debug_assert_eq!(targets.len(), residual.len());
    let unfinished: Vec<(usize, f64)> = counts
        .iter()
        .map(OutcomeCounts::half_width95)
        .zip(residual.iter())
        .map(|(hw, &w)| w * hw)
        .enumerate()
        .filter(|&(_, hw)| hw > ci_target)
        .collect();
    if unfinished.is_empty() || batch == 0 {
        return Vec::new();
    }
    let total_weight: f64 = unfinished.iter().map(|&(_, hw)| hw).sum();
    // Largest-remainder apportionment: floor the proportional shares,
    // then hand the leftover trials to the largest fractional parts
    // (ties broken by target order).
    let mut shares: Vec<(usize, u64, f64)> = unfinished
        .iter()
        .map(|&(i, hw)| {
            let exact = batch as f64 * hw / total_weight;
            (i, exact as u64, exact.fract())
        })
        .collect();
    let mut leftover = batch - shares.iter().map(|&(_, n, _)| n).sum::<u64>();
    let mut by_fraction: Vec<usize> = (0..shares.len()).collect();
    by_fraction.sort_by(|&a, &b| {
        shares[b]
            .2
            .total_cmp(&shares[a].2)
            .then(shares[a].0.cmp(&shares[b].0))
    });
    let mut round = 0usize;
    while leftover > 0 {
        shares[by_fraction[round % by_fraction.len()]].1 += 1;
        leftover -= 1;
        round += 1;
    }
    shares
        .into_iter()
        .filter(|&(_, n, _)| n > 0)
        .map(|(i, n, _)| (targets[i], n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_of(observed: &[(u64, u64)]) -> Vec<OutcomeCounts> {
        observed
            .iter()
            .map(|&(unmasked, total)| OutcomeCounts {
                masked: total - unmasked,
                sdc: unmasked,
                due: 0,
                diverged: 0,
                unreached: 0,
            })
            .collect()
    }

    #[test]
    fn first_batch_spreads_evenly() {
        let targets = &InjectionTarget::ALL;
        let counts = vec![OutcomeCounts::default(); targets.len()];
        let alloc = allocate_batch(targets, &counts, &vec![1.0; targets.len()], 0.05, 80);
        assert_eq!(alloc.len(), targets.len());
        assert!(alloc.iter().all(|&(_, n)| n == 10), "{alloc:?}");
    }

    #[test]
    fn converged_targets_get_nothing() {
        let targets = [InjectionTarget::Rob, InjectionTarget::Iq];
        // ROB: 0/10000 unmasked — razor-thin interval. IQ: 50/100 — wide.
        let counts = counts_of(&[(0, 10_000), (50, 100)]);
        let alloc = allocate_batch(&targets, &counts, &[1.0; 2], 0.05, 64);
        assert_eq!(alloc, vec![(InjectionTarget::Iq, 64)]);
    }

    #[test]
    fn all_converged_means_empty_allocation() {
        let targets = [InjectionTarget::Rob, InjectionTarget::Iq];
        let counts = counts_of(&[(0, 10_000), (5_000, 10_000)]);
        assert!(allocate_batch(&targets, &counts, &[1.0; 2], 0.05, 64).is_empty());
    }

    #[test]
    fn allocation_is_proportional_and_exact() {
        let targets = [
            InjectionTarget::Rob,
            InjectionTarget::Iq,
            InjectionTarget::Lq,
        ];
        // Half-widths roughly 0.5 (no data), ~0.097 (50/100), ~0.031 (50/1000).
        let counts = counts_of(&[(0, 0), (50, 100), (50, 1_000)]);
        let alloc = allocate_batch(&targets, &counts, &[1.0; 3], 0.01, 100);
        let total: u64 = alloc.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 100, "every batch trial is assigned");
        let rob = alloc.iter().find(|&&(t, _)| t == InjectionTarget::Rob);
        let lq = alloc.iter().find(|&&(t, _)| t == InjectionTarget::Lq);
        assert!(
            rob.unwrap().1 > lq.unwrap().1 * 5,
            "widest interval dominates: {alloc:?}"
        );
    }

    #[test]
    fn residual_scaling_converges_pruned_targets_early() {
        let targets = [InjectionTarget::Rob, InjectionTarget::Iq];
        // Identical (wide) raw intervals, but ROB's residual stratum is
        // 8% of its space: its overall half-width is already under the
        // target, so the whole batch goes to the unpruned IQ.
        let counts = counts_of(&[(50, 100), (50, 100)]);
        let alloc = allocate_batch(&targets, &counts, &[0.08, 1.0], 0.05, 64);
        assert_eq!(alloc, vec![(InjectionTarget::Iq, 64)]);
        // A fully-pruned target (w = 0, an exact zero) never gets
        // trials, even with no data at all.
        let empty = counts_of(&[(0, 0), (0, 0)]);
        let alloc = allocate_batch(&targets, &empty, &[0.0, 1.0], 0.05, 64);
        assert_eq!(alloc, vec![(InjectionTarget::Iq, 64)]);
    }

    #[test]
    fn determinism() {
        let targets = InjectionTarget::ALL;
        let counts = counts_of(&[
            (0, 0),
            (3, 17),
            (50, 100),
            (1, 400),
            (0, 9),
            (12, 12),
            (7, 30),
            (2, 2),
        ]);
        let ones = vec![1.0; targets.len()];
        let a = allocate_batch(&targets, &counts, &ones, 0.08, 97);
        let b = allocate_batch(&targets, &counts, &ones, 0.08, 97);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|&(_, n)| n).sum::<u64>(), 97);
    }
}
