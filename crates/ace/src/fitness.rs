//! Fitness functions for the stressmark search.
//!
//! The paper's fitness is the simulated SER under the active circuit-level
//! fault-rate table (Section V); re-targeting the stressmark to a protected
//! design is "only a matter of changing the fitness function to reflect the
//! new values" (Section VI-A). [`FitnessScope`] additionally allows
//! core-only searches, which Section VII uses when discussing
//! SER-mitigation trade-offs in the core.
//!
//! The fitness lives here, next to the report types it scores, so every
//! layer that evaluates candidates — the local search loop and the
//! distributed evaluation workers alike — shares one definition.

use crate::report::AvfReport;
use crate::FaultRates;

/// Which structures the fitness aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessScope {
    /// Mean of the per-class units/bit values (QS+RF, DL1+DTLB, L2).
    ///
    /// This is the default. The paper's fitness is total SER, which its
    /// 100M-instruction runs can afford: cache coverage saturates for any
    /// candidate, leaving the search gradient in the core. At this
    /// reproduction's scaled budgets a bit-weighted total is ~93% L2 bits
    /// and degenerates into a pure cache-coverage race (see
    /// [`FitnessScope::BitWeighted`]), so the default balances the classes
    /// the way the paper's own normalized reporting does.
    Overall,
    /// Total SER across all structures divided by total bits — the paper's
    /// literal fitness; appropriate at paper-scale budgets.
    BitWeighted,
    /// Queueing structures plus the register file only.
    Core,
    /// Caches only (DL1 + DTLB + L2).
    Caches,
}

/// A fault-rate-weighted SER fitness function.
#[derive(Debug, Clone)]
pub struct Fitness {
    rates: FaultRates,
    scope: FitnessScope,
}

impl Fitness {
    /// Overall SER under `rates` — the paper's fitness.
    #[must_use]
    pub fn overall(rates: FaultRates) -> Fitness {
        Fitness {
            rates,
            scope: FitnessScope::Overall,
        }
    }

    /// Core-only SER under `rates`.
    #[must_use]
    pub fn core(rates: FaultRates) -> Fitness {
        Fitness {
            rates,
            scope: FitnessScope::Core,
        }
    }

    /// Custom scope.
    #[must_use]
    pub fn with_scope(rates: FaultRates, scope: FitnessScope) -> Fitness {
        Fitness { rates, scope }
    }

    /// The fault-rate table in use.
    #[must_use]
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The aggregation scope.
    #[must_use]
    pub fn scope(&self) -> FitnessScope {
        self.scope
    }

    /// Scores an AVF report (higher is worse-case, i.e. better for the
    /// search), in normalized units/bit.
    #[must_use]
    pub fn score(&self, report: &AvfReport) -> f64 {
        let ser = report.ser(&self.rates);
        match self.scope {
            FitnessScope::Overall => (ser.qs_rf() + ser.dl1_dtlb() + ser.l2()) / 3.0,
            FitnessScope::BitWeighted => ser.overall(),
            FitnessScope::Core => ser.qs_rf(),
            FitnessScope::Caches => {
                // Bit-weighted combination of the two cache classes.
                let sizes = report.sizes();
                let d_bits = sizes.class_bits(crate::StructureClass::Dl1Dtlb) as f64;
                let l_bits = sizes.class_bits(crate::StructureClass::L2) as f64;
                (ser.dl1_dtlb() * d_bits + ser.l2() * l_bits) / (d_bits + l_bits)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeadnessStats, Structure, StructureSizes};

    fn full_report() -> AvfReport {
        let sizes = StructureSizes::baseline();
        let cycles = 100u64;
        let mut ace = [0u128; Structure::ALL.len()];
        for s in Structure::ALL {
            ace[s.index()] = u128::from(sizes.bits(s)) * u128::from(cycles);
        }
        AvfReport::new("full", cycles, sizes, ace, DeadnessStats::default())
    }

    #[test]
    fn full_avf_baseline_scores_one() {
        let r = full_report();
        assert!((Fitness::overall(FaultRates::baseline()).score(&r) - 1.0).abs() < 1e-9);
        assert!((Fitness::core(FaultRates::baseline()).score(&r) - 1.0).abs() < 1e-9);
        let caches = Fitness::with_scope(FaultRates::baseline(), FitnessScope::Caches);
        assert!((caches.score(&r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edr_rates_lower_core_score() {
        let r = full_report();
        let edr = Fitness::core(FaultRates::edr()).score(&r);
        let base = Fitness::core(FaultRates::baseline()).score(&r);
        assert!(edr < base, "EDR zeroes ROB/LQ/SQ: {edr} vs {base}");
    }
}
