use std::fmt;

use crate::deadness::DeadnessStats;
use crate::faultrates::FaultRates;
use crate::structures::{Structure, StructureClass, StructureSizes};

/// Per-structure AVF results of one simulation.
#[derive(Debug, Clone)]
pub struct AvfReport {
    name: String,
    cycles: u64,
    sizes: StructureSizes,
    ace_bit_cycles: [u128; Structure::ALL.len()],
    deadness: DeadnessStats,
}

impl AvfReport {
    /// Assembles a report from raw accumulator values.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cycles: u64,
        sizes: StructureSizes,
        ace_bit_cycles: [u128; Structure::ALL.len()],
        deadness: DeadnessStats,
    ) -> AvfReport {
        assert!(cycles > 0, "AVF is undefined for a zero-cycle run");
        AvfReport {
            name: name.into(),
            cycles,
            sizes,
            ace_bit_cycles,
            deadness,
        }
    }

    /// Name of the measured program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulated cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Structure sizes the AVFs are normalized against.
    #[must_use]
    pub fn sizes(&self) -> &StructureSizes {
        &self.sizes
    }

    /// Dead-instruction statistics from the deadness engine.
    #[must_use]
    pub fn deadness(&self) -> DeadnessStats {
        self.deadness
    }

    /// Architectural Vulnerability Factor of one structure, in `[0, 1]`.
    #[must_use]
    pub fn avf(&self, s: Structure) -> f64 {
        let denom = u128::from(self.sizes.bits(s)) * u128::from(self.cycles);
        if denom == 0 {
            return 0.0;
        }
        let v = self.ace_bit_cycles[s.index()] as f64 / denom as f64;
        v.min(1.0)
    }

    /// Bit-count-weighted AVF over a class.
    #[must_use]
    pub fn class_avf(&self, class: StructureClass) -> f64 {
        let mut ace = 0u128;
        let mut bits = 0u64;
        for s in Structure::ALL {
            if s.class() == class {
                ace += self.ace_bit_cycles[s.index()];
                bits += self.sizes.bits(s);
            }
        }
        if bits == 0 {
            return 0.0;
        }
        let v = ace as f64 / (bits as f64 * self.cycles as f64);
        v.min(1.0)
    }

    /// Bit-weighted AVF over an arbitrary structure group — the merge
    /// rule every consumer shares: an injection target or a figure
    /// column that spans tag/data arrays weighs each array by its bit
    /// count, exactly as a physical entry does.
    #[must_use]
    pub fn merged_avf(&self, structures: &[Structure]) -> f64 {
        let mut weighted = 0.0;
        let mut bits = 0u64;
        for &s in structures {
            weighted += self.avf(s) * self.sizes.bits(s) as f64;
            bits += self.sizes.bits(s);
        }
        if bits == 0 {
            0.0
        } else {
            weighted / bits as f64
        }
    }

    /// Derates the AVFs by circuit-level fault rates, producing SER.
    #[must_use]
    pub fn ser(&self, rates: &FaultRates) -> SerReport {
        let mut units = [0.0; Structure::ALL.len()];
        for s in Structure::ALL {
            units[s.index()] = self.avf(s) * self.sizes.bits(s) as f64 * rates.rate(s);
        }
        SerReport {
            name: self.name.clone(),
            rates_name: rates.name(),
            sizes: self.sizes.clone(),
            units,
        }
    }
}

/// One structure's measured-vs-ACE gap: the distance between the
/// analysis' conservative AVF bound and an injection measurement of the
/// same structure on the same run.
///
/// The paper's methodology lives or dies on this number: the ACE
/// analysis must stay an upper bound (`gap ≥ 0` within sampling noise —
/// anything else is a soundness violation), but a *large* gap means the
/// fault model is too coarse to observe vulnerability the deadness
/// analysis correctly refuses to discount — exactly what the micro-op
/// replay oracle tightens on the queueing structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AceGap {
    /// The analysis' (bit-weighted) AVF bound.
    pub ace_avf: f64,
    /// The injection-measured AVF.
    pub measured_avf: f64,
}

impl AceGap {
    /// The signed gap, `ace − measured`: positive is conservatism,
    /// negative is measured vulnerability the bound does not cover.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.ace_avf - self.measured_avf
    }
}

/// SER of one program under one fault-rate table, reported exactly the way
/// the paper does: per-class values normalized by the class's total bits
/// ("units/bit").
#[derive(Debug, Clone)]
pub struct SerReport {
    name: String,
    rates_name: &'static str,
    sizes: StructureSizes,
    units: [f64; Structure::ALL.len()],
}

impl SerReport {
    /// Name of the measured program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the fault-rate table used ("Baseline", "RHC", "EDR").
    #[must_use]
    pub fn rates_name(&self) -> &'static str {
        self.rates_name
    }

    /// Absolute SER contribution of one structure, in units.
    #[must_use]
    pub fn structure_units(&self, s: Structure) -> f64 {
        self.units[s.index()]
    }

    /// SER of a class, normalized by the class's total bits (units/bit).
    #[must_use]
    pub fn class_units_per_bit(&self, class: StructureClass) -> f64 {
        let bits = self.sizes.class_bits(class);
        if bits == 0 {
            return 0.0;
        }
        let sum: f64 = Structure::ALL
            .iter()
            .filter(|s| s.class() == class)
            .map(|s| self.units[s.index()])
            .sum();
        sum / bits as f64
    }

    /// SER of the queueing structures, units/bit (the paper's "QS" bars).
    #[must_use]
    pub fn qs(&self) -> f64 {
        self.class_units_per_bit(StructureClass::Qs)
    }

    /// SER of QS plus the register file, units/bit ("QS+RF" bars and the
    /// "core" SER of Table III).
    #[must_use]
    pub fn qs_rf(&self) -> f64 {
        let bits =
            self.sizes.class_bits(StructureClass::Qs) + self.sizes.class_bits(StructureClass::Rf);
        let sum: f64 = Structure::ALL
            .iter()
            .filter(|s| matches!(s.class(), StructureClass::Qs | StructureClass::Rf))
            .map(|s| self.units[s.index()])
            .sum();
        sum / bits as f64
    }

    /// SER of DL1 + DTLB, units/bit.
    #[must_use]
    pub fn dl1_dtlb(&self) -> f64 {
        self.class_units_per_bit(StructureClass::Dl1Dtlb)
    }

    /// SER of the L2, units/bit.
    #[must_use]
    pub fn l2(&self) -> f64 {
        self.class_units_per_bit(StructureClass::L2)
    }

    /// Overall SER across all tracked structures, units/bit.
    #[must_use]
    pub fn overall(&self) -> f64 {
        let bits: u64 = Structure::ALL.iter().map(|&s| self.sizes.bits(s)).sum();
        let sum: f64 = self.units.iter().sum();
        sum / bits as f64
    }
}

impl fmt::Display for SerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SER of `{}` under {} rates (units/bit):",
            self.name, self.rates_name
        )?;
        writeln!(f, "  QS       = {:.3}", self.qs())?;
        writeln!(f, "  QS+RF    = {:.3}", self.qs_rf())?;
        writeln!(f, "  DL1+DTLB = {:.3}", self.dl1_dtlb())?;
        writeln!(f, "  L2       = {:.3}", self.l2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(s: Structure, frac: f64) -> AvfReport {
        let sizes = StructureSizes::baseline();
        let cycles = 1000u64;
        let mut ace = [0u128; Structure::ALL.len()];
        ace[s.index()] = (frac * sizes.bits(s) as f64 * cycles as f64) as u128;
        AvfReport::new("t", cycles, sizes, ace, DeadnessStats::default())
    }

    #[test]
    fn avf_is_fraction_of_bit_cycles() {
        let r = report_with(Structure::Rob, 0.5);
        assert!((r.avf(Structure::Rob) - 0.5).abs() < 1e-9);
        assert_eq!(r.avf(Structure::Iq), 0.0);
    }

    #[test]
    fn avf_clamps_at_one() {
        let sizes = StructureSizes::baseline();
        let mut ace = [0u128; Structure::ALL.len()];
        ace[Structure::Iq.index()] = u128::from(sizes.bits(Structure::Iq)) * 2000;
        let r = AvfReport::new("t", 1000, sizes, ace, DeadnessStats::default());
        assert_eq!(r.avf(Structure::Iq), 1.0);
    }

    #[test]
    fn ser_baseline_equals_avf_weighting() {
        let r = report_with(Structure::Rob, 1.0);
        let ser = r.ser(&FaultRates::baseline());
        let sizes = StructureSizes::baseline();
        // Only the ROB contributes; QS units/bit = rob_bits / qs_bits.
        let expect =
            sizes.bits(Structure::Rob) as f64 / sizes.class_bits(StructureClass::Qs) as f64;
        assert!((ser.qs() - expect).abs() < 1e-9);
    }

    #[test]
    fn edr_zeroes_protected_contributions() {
        let r = report_with(Structure::Rob, 1.0);
        let ser = r.ser(&FaultRates::edr());
        assert_eq!(ser.qs(), 0.0, "ROB rate is 0 under EDR");
    }

    #[test]
    fn full_avf_uniform_rates_gives_one_unit_per_bit() {
        let sizes = StructureSizes::baseline();
        let cycles = 100u64;
        let mut ace = [0u128; Structure::ALL.len()];
        for s in Structure::ALL {
            ace[s.index()] = u128::from(sizes.bits(s)) * u128::from(cycles);
        }
        let r = AvfReport::new("t", cycles, sizes, ace, DeadnessStats::default());
        let ser = r.ser(&FaultRates::baseline());
        assert!((ser.qs() - 1.0).abs() < 1e-9);
        assert!((ser.qs_rf() - 1.0).abs() < 1e-9);
        assert!((ser.dl1_dtlb() - 1.0).abs() < 1e-9);
        assert!((ser.l2() - 1.0).abs() < 1e-9);
        assert!((ser.overall() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero-cycle")]
    fn zero_cycles_rejected() {
        let _ = AvfReport::new(
            "t",
            0,
            StructureSizes::baseline(),
            [0; Structure::ALL.len()],
            DeadnessStats::default(),
        );
    }
}
