//! Transitive dynamic-dead-instruction resolution over the commit stream.
//!
//! Mukherjee et al. classify dynamically dead instructions as un-ACE; Butts &
//! Sohi observe 3–16% of dynamic instructions are dead. This module decides,
//! for every committed instruction, whether its result transitively reaches a
//! program output (memory contents or control flow), and defers AVF crediting
//! until that decision is made:
//!
//! * **branches / halt** are ACE immediately (they steered committed control
//!   flow);
//! * **NOPs** are un-ACE immediately;
//! * a **value producer** (ALU op or load) is ACE iff at least one transitive
//!   consumer is ACE; it is dead once its destination register is overwritten
//!   with all consumers resolved dead;
//! * a **store** is ACE iff a committed load reads any stored word before it
//!   is overwritten, or some word survives to the end of the run (live-out
//!   memory is treated as program output, matching the lifetime-analysis
//!   Write⇒Evict rule).

use std::collections::HashMap;

use crate::record::{AceKind, DynId, InstrRecord, PregRecord, Residency};
use crate::structures::Structure;

/// Width of the ROB entry's result (data) field — the portion of a dead
/// instruction's ROB residency that genuinely is un-ACE. The remaining
/// control bits (destination tag, status) stay ACE even for dead
/// occupants.
const ROB_RESULT_FIELD_BITS: u32 = 64;

/// Resolution state of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Not yet known.
    Unknown,
    /// ACE: contributes its residency to AVF.
    Live,
    /// un-ACE: residency discarded.
    Dead,
}

/// Accumulated ACE bit-cycles per structure.
#[derive(Debug, Clone, Default)]
pub struct AceAccumulator {
    bit_cycles: [u128; Structure::ALL.len()],
}

impl AceAccumulator {
    /// Creates a zeroed accumulator.
    #[must_use]
    pub fn new() -> AceAccumulator {
        AceAccumulator::default()
    }

    /// Adds `amount` ACE bit-cycles to `structure`.
    pub fn add(&mut self, structure: Structure, amount: u128) {
        self.bit_cycles[structure.index()] += amount;
    }

    /// Total ACE bit-cycles recorded for `structure`.
    #[must_use]
    pub fn get(&self, structure: Structure) -> u128 {
        self.bit_cycles[structure.index()]
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &AceAccumulator) {
        for (a, b) in self.bit_cycles.iter_mut().zip(other.bit_cycles.iter()) {
            *a += b;
        }
    }
}

/// Aggregate counts reported by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadnessStats {
    /// Instructions committed.
    pub committed: u64,
    /// Instructions resolved ACE.
    pub live: u64,
    /// Instructions resolved un-ACE (dead, NOP).
    pub dead: u64,
}

impl DeadnessStats {
    /// Fraction of committed instructions that were dynamically dead.
    #[must_use]
    pub fn dead_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.dead as f64 / self.committed as f64
        }
    }
}

struct Node {
    kind: AceKind,
    producers: [Option<u64>; 3],
    unresolved_consumers: u32,
    closed: bool,
    residency: Residency,
    /// For stores: number of covered memory words not yet overwritten.
    words_outstanding: u32,
    /// Physical-register lifetimes waiting on this instruction's liveness:
    /// `(pending preg key, read cycle)`.
    preg_waiters: Vec<(u64, u64)>,
}

struct PregPending {
    write_cycle: u64,
    bits: u32,
    remaining: u32,
    latest_live_read: Option<u64>,
}

/// The deadness engine: consumes the commit stream, resolves liveness, and
/// credits ACE bit-cycles for resolved-live residency intervals.
pub struct DeadnessEngine {
    states: Vec<Liveness>,
    nodes: HashMap<u64, Node>,
    last_def: [Option<u64>; 32],
    mem_defs: HashMap<u64, u64>,
    pregs: HashMap<u64, PregPending>,
    next_preg: u64,
    ace: AceAccumulator,
    stats: DeadnessStats,
    worklist: Vec<u64>,
}

impl Default for DeadnessEngine {
    fn default() -> Self {
        DeadnessEngine::new()
    }
}

impl DeadnessEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> DeadnessEngine {
        DeadnessEngine {
            states: Vec::new(),
            nodes: HashMap::new(),
            last_def: [None; 32],
            mem_defs: HashMap::new(),
            pregs: HashMap::new(),
            next_preg: 0,
            ace: AceAccumulator::new(),
            stats: DeadnessStats::default(),
            worklist: Vec::new(),
        }
    }

    /// Processes one committed instruction; returns its id.
    pub fn commit(&mut self, rec: InstrRecord) -> DynId {
        let id = self.states.len() as u64;
        self.states.push(Liveness::Unknown);
        self.stats.committed += 1;

        // Register producer edges (before the destination update, so
        // read-modify-write instructions link to the previous definition).
        let mut producers = [None; 3];
        let mut n_edges = 0;
        for (slot, src) in rec.srcs.iter().enumerate() {
            if let Some(r) = src {
                if let Some(pid) = self.last_def[usize::from(*r)] {
                    if self.states[pid as usize] == Liveness::Unknown {
                        if let Some(pn) = self.nodes.get_mut(&pid) {
                            pn.unresolved_consumers += 1;
                            producers[slot] = Some(pid);
                            n_edges += 1;
                        }
                    }
                }
            }
        }
        let _ = n_edges;

        let node = Node {
            kind: rec.kind,
            producers,
            unresolved_consumers: 0,
            closed: false,
            residency: rec.residency,
            words_outstanding: 0,
            preg_waiters: Vec::new(),
        };
        self.nodes.insert(id, node);

        // Memory effects.
        match rec.kind {
            AceKind::Store => {
                if let Some(mem) = rec.mem {
                    let mut outstanding = 0;
                    let mut kills = Vec::new();
                    for w in mem.words() {
                        if let Some(prev) = self.mem_defs.insert(w, id) {
                            if prev != id {
                                kills.push(prev);
                            }
                        }
                        outstanding += 1;
                    }
                    self.nodes
                        .get_mut(&id)
                        .expect("node just inserted")
                        .words_outstanding = outstanding;
                    for prev in kills {
                        self.kill_store_word(prev);
                    }
                }
            }
            AceKind::Value => {
                if let Some(mem) = rec.mem {
                    // A committed load: its reads keep covering stores ACE.
                    for w in mem.words() {
                        if let Some(&sid) = self.mem_defs.get(&w) {
                            self.mark_live(sid);
                        }
                    }
                }
            }
            _ => {}
        }

        // Destination bookkeeping: close the previous definition.
        if let Some(dest) = rec.dest {
            let prev = self.last_def[usize::from(dest)].replace(id);
            if let Some(pid) = prev {
                self.close(pid);
            }
        }

        // Immediate resolutions by kind.
        match rec.kind {
            AceKind::Branch | AceKind::Halt => self.mark_live(id),
            AceKind::Nop => self.mark_dead(id),
            AceKind::Value if rec.dest.is_none() => {
                // A value producer with no architected destination can never
                // acquire consumers (e.g. a write to the zero register).
                self.mark_dead(id);
            }
            _ => {}
        }
        DynId(id)
    }

    /// Registers a freed physical register's lifetime; the RF ACE interval
    /// is credited once every reader's liveness is known.
    pub fn preg_freed(&mut self, rec: PregRecord) {
        let mut pending = PregPending {
            write_cycle: rec.write_cycle,
            bits: rec.bits,
            remaining: 0,
            latest_live_read: None,
        };
        let key = self.next_preg;
        let mut deferred = Vec::new();
        for (DynId(reader), cycle) in rec.reads {
            match self
                .states
                .get(reader as usize)
                .copied()
                .unwrap_or(Liveness::Dead)
            {
                Liveness::Live => {
                    pending.latest_live_read =
                        Some(pending.latest_live_read.map_or(cycle, |c| c.max(cycle)));
                }
                Liveness::Dead => {}
                Liveness::Unknown => {
                    pending.remaining += 1;
                    deferred.push((reader, cycle));
                }
            }
        }
        if pending.remaining == 0 {
            self.credit_preg(&pending);
            return;
        }
        for (reader, cycle) in deferred {
            if let Some(node) = self.nodes.get_mut(&reader) {
                node.preg_waiters.push((key, cycle));
            } else {
                // Node vanished between state check and here: impossible in
                // single-threaded use, but be safe and drop the dependency.
                pending.remaining -= 1;
            }
        }
        if pending.remaining == 0 {
            self.credit_preg(&pending);
        } else {
            self.pregs.insert(key, pending);
            self.next_preg += 1;
        }
    }

    /// Forces resolution of everything still unknown: unresolved stores are
    /// live-out (their data is program output), remaining value producers
    /// are dead (their results were never consumed).
    pub fn finish(&mut self) {
        let unresolved: Vec<u64> = self.nodes.keys().copied().collect();
        let mut stores: Vec<u64> = unresolved
            .iter()
            .copied()
            .filter(|id| {
                self.nodes
                    .get(id)
                    .map(|n| n.kind == AceKind::Store)
                    .unwrap_or(false)
            })
            .collect();
        stores.sort_unstable();
        for id in stores {
            self.mark_live(id);
        }
        let mut rest: Vec<u64> = self.nodes.keys().copied().collect();
        rest.sort_unstable();
        for id in rest {
            if self.states[id as usize] == Liveness::Unknown {
                self.mark_dead(id);
            }
        }
        // Any preg lifetime still pending had only dead readers left.
        let keys: Vec<u64> = self.pregs.keys().copied().collect();
        for key in keys {
            if let Some(p) = self.pregs.remove(&key) {
                self.credit_preg(&p);
            }
        }
    }

    /// Liveness of a committed instruction.
    #[must_use]
    pub fn liveness(&self, id: DynId) -> Liveness {
        self.states
            .get(id.0 as usize)
            .copied()
            .unwrap_or(Liveness::Unknown)
    }

    /// Aggregate resolution counts.
    #[must_use]
    pub fn stats(&self) -> DeadnessStats {
        self.stats
    }

    /// The ACE bit-cycle accumulator (populated as instructions resolve).
    #[must_use]
    pub fn accumulator(&self) -> &AceAccumulator {
        &self.ace
    }

    fn credit_preg(&mut self, pending: &PregPending) {
        if let Some(last) = pending.latest_live_read {
            if last > pending.write_cycle {
                self.ace.add(
                    Structure::RegFile,
                    u128::from(last - pending.write_cycle) * u128::from(pending.bits),
                );
            }
        }
    }

    fn kill_store_word(&mut self, store_id: u64) {
        if self.states[store_id as usize] != Liveness::Unknown {
            return;
        }
        let dead = match self.nodes.get_mut(&store_id) {
            Some(node) => {
                node.words_outstanding = node.words_outstanding.saturating_sub(1);
                node.words_outstanding == 0
            }
            None => false,
        };
        if dead {
            self.mark_dead(store_id);
        }
    }

    fn close(&mut self, id: u64) {
        if let Some(node) = self.nodes.get_mut(&id) {
            node.closed = true;
            if node.kind == AceKind::Value && node.unresolved_consumers == 0 {
                self.mark_dead(id);
            }
        }
    }

    fn mark_live(&mut self, id: u64) {
        debug_assert!(self.worklist.is_empty());
        self.worklist.push(id);
        while let Some(n) = self.worklist.pop() {
            if self.states[n as usize] != Liveness::Unknown {
                continue;
            }
            let Some(node) = self.nodes.remove(&n) else {
                continue;
            };
            self.states[n as usize] = Liveness::Live;
            self.stats.live += 1;
            for slice in node.residency.iter() {
                self.ace.add(slice.structure, slice.bit_cycles());
            }
            for p in node.producers.into_iter().flatten() {
                if self.states[p as usize] == Liveness::Unknown {
                    self.worklist.push(p);
                }
            }
            self.notify_preg_waiters(&node.preg_waiters, true);
        }
    }

    fn mark_dead(&mut self, id: u64) {
        let mut dead_list = vec![id];
        while let Some(n) = dead_list.pop() {
            if self.states[n as usize] != Liveness::Unknown {
                continue;
            }
            let Some(node) = self.nodes.remove(&n) else {
                continue;
            };
            self.states[n as usize] = Liveness::Dead;
            self.stats.dead += 1;
            // Mukherjee's dead-instruction refinement applies to *data*
            // fields only: a dynamically dead instruction's value is
            // un-ACE (never consumed), but its control and tag fields
            // stay ACE — a corrupted address redirects the write, a
            // corrupted operand or destination tag misroutes a value, a
            // corrupted opcode decodes to a different micro-op; each
            // corrupts *unrelated live* state, which injection (and the
            // micro-op replay oracle in particular) observes as SDC or a
            // detected error regardless of the occupant's own deadness.
            // Credit the control/tag residency even as the data-field
            // residency is dropped: the ROB keeps its 12 control bits
            // (entry minus the 64-bit result field), the IQ entry is all
            // control, and both LSQ tag arrays stay whole. NOPs are the
            // one exception — the model resolves them un-ACE outright
            // (they route nothing, so there is no misroute to credit),
            // and the injection engine masks every NOP-entry flip to
            // match; the flipped-NOP-opcode gap both sides share is
            // recorded in the ROADMAP.
            if node.kind != AceKind::Nop {
                for slice in node.residency.iter() {
                    let control_bits = match slice.structure {
                        Structure::Rob => slice.bits.saturating_sub(ROB_RESULT_FIELD_BITS),
                        Structure::Iq | Structure::LqTag | Structure::SqTag => slice.bits,
                        _ => 0,
                    };
                    if control_bits > 0 {
                        let mut control = *slice;
                        control.bits = control_bits;
                        self.ace.add(control.structure, control.bit_cycles());
                    }
                }
            }
            for p in node.producers.into_iter().flatten() {
                if self.states[p as usize] != Liveness::Unknown {
                    continue;
                }
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.unresolved_consumers = pn.unresolved_consumers.saturating_sub(1);
                    if pn.kind == AceKind::Value && pn.closed && pn.unresolved_consumers == 0 {
                        dead_list.push(p);
                    }
                }
            }
            self.notify_preg_waiters(&node.preg_waiters, false);
        }
    }

    fn notify_preg_waiters(&mut self, waiters: &[(u64, u64)], live: bool) {
        for &(key, cycle) in waiters {
            let done = match self.pregs.get_mut(&key) {
                Some(p) => {
                    p.remaining -= 1;
                    if live {
                        p.latest_live_read =
                            Some(p.latest_live_read.map_or(cycle, |c| c.max(cycle)));
                    }
                    p.remaining == 0
                }
                None => false,
            };
            if done {
                if let Some(p) = self.pregs.remove(&key) {
                    self.credit_preg(&p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MemRef, Slice};

    fn value(dest: Option<u8>, srcs: &[u8]) -> InstrRecord {
        let mut rec = InstrRecord::of_kind(AceKind::Value);
        rec.dest = dest;
        for (i, s) in srcs.iter().enumerate() {
            rec.srcs[i] = Some(*s);
        }
        rec
    }

    fn store(srcs: &[u8], addr: u64, bytes: u8) -> InstrRecord {
        let mut rec = InstrRecord::of_kind(AceKind::Store);
        for (i, s) in srcs.iter().enumerate() {
            rec.srcs[i] = Some(*s);
        }
        rec.mem = Some(MemRef { addr, bytes });
        rec
    }

    fn load(dest: u8, addr: u64) -> InstrRecord {
        let mut rec = InstrRecord::of_kind(AceKind::Value);
        rec.dest = Some(dest);
        rec.mem = Some(MemRef { addr, bytes: 8 });
        rec
    }

    #[test]
    fn branch_is_immediately_live() {
        let mut e = DeadnessEngine::new();
        let id = e.commit(InstrRecord::of_kind(AceKind::Branch));
        assert_eq!(e.liveness(id), Liveness::Live);
    }

    #[test]
    fn nop_is_immediately_dead() {
        let mut e = DeadnessEngine::new();
        let id = e.commit(InstrRecord::of_kind(AceKind::Nop));
        assert_eq!(e.liveness(id), Liveness::Dead);
    }

    #[test]
    fn overwritten_unread_value_is_dead() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        assert_eq!(e.liveness(a), Liveness::Unknown);
        let b = e.commit(value(Some(1), &[])); // overwrites r1 without reading
        assert_eq!(e.liveness(a), Liveness::Dead);
        assert_eq!(e.liveness(b), Liveness::Unknown);
    }

    #[test]
    fn value_feeding_store_is_live_when_store_read() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        let s = e.commit(store(&[1], 0x100, 8));
        assert_eq!(e.liveness(a), Liveness::Unknown);
        let l = e.commit(load(2, 0x100));
        assert_eq!(e.liveness(s), Liveness::Live);
        // The store being live makes its data producer live.
        assert_eq!(e.liveness(a), Liveness::Live);
        let _ = l;
    }

    #[test]
    fn store_overwritten_before_read_is_dead_and_cascades() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        let s1 = e.commit(store(&[1], 0x100, 8));
        let b = e.commit(value(Some(1), &[])); // closes a's register def
        let s2 = e.commit(store(&[1], 0x100, 8)); // kills s1's words
        assert_eq!(e.liveness(s1), Liveness::Dead);
        // `a` fed only the dead store (its register def was closed by `b`).
        assert_eq!(e.liveness(a), Liveness::Dead);
        assert_eq!(e.liveness(s2), Liveness::Unknown);
        let _ = b;
    }

    #[test]
    fn transitive_chain_resolves_live_through_branch() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        let b = e.commit(value(Some(2), &[1]));
        let mut br = InstrRecord::of_kind(AceKind::Branch);
        br.srcs[0] = Some(2);
        e.commit(br);
        assert_eq!(e.liveness(a), Liveness::Live);
        assert_eq!(e.liveness(b), Liveness::Live);
    }

    #[test]
    fn finish_marks_unread_stores_live_and_values_dead() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        let s = e.commit(store(&[1], 0x40, 8));
        let v = e.commit(value(Some(3), &[]));
        e.finish();
        assert_eq!(e.liveness(s), Liveness::Live, "live-out store");
        assert_eq!(e.liveness(a), Liveness::Live, "feeds live-out store");
        assert_eq!(e.liveness(v), Liveness::Dead, "never consumed");
    }

    #[test]
    fn dead_residency_keeps_control_bits_only() {
        let mut e = DeadnessEngine::new();
        let mut live_rec = value(Some(1), &[]);
        live_rec.residency.push(Slice {
            structure: Structure::Rob,
            start: 0,
            end: 10,
            bits: 76,
        });
        e.commit(live_rec);
        let mut dead_rec = value(Some(1), &[]); // overwrites r1 -> first dies
        dead_rec.residency.push(Slice {
            structure: Structure::Rob,
            start: 10,
            end: 20,
            bits: 76,
        });
        e.commit(dead_rec);
        // Both values die (overwritten unread / unresolved at finish):
        // their 64-bit result fields are un-ACE, but the 12 control bits
        // of each entry stay ACE — a misdirected writeback corrupts
        // unrelated live state no matter how dead the occupant is.
        e.finish();
        assert_eq!(e.accumulator().get(Structure::Rob), 2 * 10 * 12);
    }

    #[test]
    fn nop_residency_credits_nothing_at_all() {
        let mut e = DeadnessEngine::new();
        let mut nop = InstrRecord::of_kind(AceKind::Nop);
        nop.residency.push(Slice {
            structure: Structure::Rob,
            start: 0,
            end: 8,
            bits: 76,
        });
        nop.residency.push(Slice {
            structure: Structure::Iq,
            start: 0,
            end: 8,
            bits: 32,
        });
        e.commit(nop);
        // NOPs are un-ACE outright — no control-credit exception.
        assert_eq!(e.accumulator().get(Structure::Rob), 0);
        assert_eq!(e.accumulator().get(Structure::Iq), 0);
    }

    #[test]
    fn dead_iq_and_lsq_tag_residency_stays_whole() {
        let mut e = DeadnessEngine::new();
        let mut dead_rec = value(Some(1), &[]);
        dead_rec.residency.push(Slice {
            structure: Structure::Iq,
            start: 0,
            end: 4,
            bits: 32,
        });
        dead_rec.residency.push(Slice {
            structure: Structure::LqData,
            start: 0,
            end: 4,
            bits: 64,
        });
        e.commit(dead_rec);
        e.commit(value(Some(1), &[])); // overwrite -> dead
                                       // IQ entries are all control; LQ data is pure data.
        assert_eq!(e.accumulator().get(Structure::Iq), 4 * 32);
        assert_eq!(e.accumulator().get(Structure::LqData), 0);
    }

    #[test]
    fn residency_credited_when_consumed_by_branch() {
        let mut e = DeadnessEngine::new();
        let mut rec = value(Some(1), &[]);
        rec.residency.push(Slice {
            structure: Structure::Iq,
            start: 5,
            end: 9,
            bits: 32,
        });
        e.commit(rec);
        let mut br = InstrRecord::of_kind(AceKind::Branch);
        br.srcs[0] = Some(1);
        br.residency.push(Slice {
            structure: Structure::Rob,
            start: 0,
            end: 2,
            bits: 76,
        });
        e.commit(br);
        assert_eq!(e.accumulator().get(Structure::Iq), 4 * 32);
        assert_eq!(e.accumulator().get(Structure::Rob), 2 * 76);
    }

    #[test]
    fn preg_interval_uses_latest_live_read() {
        let mut e = DeadnessEngine::new();
        let a = e.commit(value(Some(1), &[]));
        // Two readers of r1: one becomes live (feeds branch), one dead.
        let live_reader = e.commit(value(Some(2), &[1]));
        let dead_reader = e.commit(value(Some(3), &[1]));
        let mut br = InstrRecord::of_kind(AceKind::Branch);
        br.srcs[0] = Some(2);
        e.commit(br);
        e.preg_freed(PregRecord {
            write_cycle: 100,
            reads: vec![(live_reader, 110), (dead_reader, 150)],
            bits: 64,
        });
        // dead_reader still unknown; close it by overwriting r3.
        e.commit(value(Some(3), &[]));
        assert_eq!(e.accumulator().get(Structure::RegFile), 10 * 64);
        let _ = a;
    }

    #[test]
    fn preg_with_only_dead_readers_credits_nothing() {
        let mut e = DeadnessEngine::new();
        e.commit(value(Some(1), &[]));
        let r = e.commit(value(Some(2), &[1]));
        e.commit(value(Some(2), &[])); // kill the reader
        e.preg_freed(PregRecord {
            write_cycle: 0,
            reads: vec![(r, 50)],
            bits: 64,
        });
        e.finish();
        assert_eq!(e.accumulator().get(Structure::RegFile), 0);
    }

    #[test]
    fn stats_track_dead_fraction() {
        let mut e = DeadnessEngine::new();
        e.commit(InstrRecord::of_kind(AceKind::Branch));
        e.commit(InstrRecord::of_kind(AceKind::Nop));
        e.commit(InstrRecord::of_kind(AceKind::Nop));
        e.finish();
        let s = e.stats();
        assert_eq!(s.committed, 3);
        assert_eq!(s.live, 1);
        assert_eq!(s.dead, 2);
        assert!((s.dead_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_store_overwrite_keeps_store_alive_until_all_words_killed() {
        let mut e = DeadnessEngine::new();
        let s = e.commit(store(&[], 0x100, 8)); // words 0x40, 0x41
        e.commit(store(&[], 0x100, 4)); // kills word 0x40 only
        assert_eq!(e.liveness(s), Liveness::Unknown);
        e.commit(store(&[], 0x104, 4)); // kills word 0x41
        assert_eq!(e.liveness(s), Liveness::Dead);
    }
}
