//! Lifetime analysis for address-based structures (Biswas et al., ISCA'05).
//!
//! For a writeback cache, data is ACE during Fill⇒Read, Read⇒Read,
//! Write⇒Read and Write⇒Evict intervals; Read⇒Evict tails and data
//! overwritten before being read are un-ACE. Analysis is performed at 4-byte
//! word granularity so that strided access patterns leave parts of a line
//! un-ACE (paper Section IV-A.5) and 4-byte stores mark only half of an
//! 8-byte span ACE.

use std::collections::HashMap;

/// Per-word lifetime state.
///
/// Dirtiness persists across reads: once written, a word's data will be
/// written back at eviction, so it stays ACE from the write through the
/// writeback (or until overwritten). The clean states lose ACE-ness after
/// their last read (Read⇒Evict is un-ACE only for clean data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordState {
    /// No tracked content (pre-fill).
    Invalid,
    /// Filled from the next level, not yet read: a read would make the
    /// interval since the fill ACE.
    Filled(u64),
    /// Clean, last event was a read.
    ReadLast(u64),
    /// Dirty, not read since the write: ACE through to the next read,
    /// overwrite (retroactively un-ACE) or the eviction writeback.
    Dirty(u64),
    /// Dirty and read since the write: ACE through further reads and the
    /// eviction writeback; only an overwrite ends the ACE span un-ACE.
    DirtyRead(u64),
}

#[derive(Debug)]
struct LineState {
    words: Box<[WordState]>,
    fill_cycle: u64,
    /// End of the last interval during which the line's *data* was ACE;
    /// used for the tag-array approximation.
    last_ace_end: Option<u64>,
}

/// Word-granularity lifetime analysis for one cache level.
///
/// The caller streams `fill` / `read` / `write` / `evict` events in cycle
/// order; [`CacheLifetime::finish`] closes open intervals as if every
/// resident line were evicted at the final cycle (so dirty data is counted
/// as Write⇒Evict ACE, matching the live-out treatment of memory).
#[derive(Debug)]
pub struct CacheLifetime {
    line_bytes: u64,
    words_per_line: usize,
    lines: HashMap<u64, LineState>,
    data_ace: u128,
    tag_ace: u128,
    tag_bits: u32,
}

impl CacheLifetime {
    /// Creates an analyzer for a cache with `line_bytes`-byte lines and
    /// `tag_bits` of tag+state per line.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a positive multiple of 4.
    #[must_use]
    pub fn new(line_bytes: u64, tag_bits: u32) -> CacheLifetime {
        assert!(
            line_bytes >= 4 && line_bytes.is_multiple_of(4),
            "line size must be a multiple of 4"
        );
        CacheLifetime {
            line_bytes,
            words_per_line: (line_bytes / 4) as usize,
            lines: HashMap::new(),
            data_ace: 0,
            tag_ace: 0,
            tag_bits,
        }
    }

    fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    fn line_entry(&mut self, base: u64, cycle: u64) -> &mut LineState {
        let words = self.words_per_line;
        self.lines.entry(base).or_insert_with(|| LineState {
            words: vec![WordState::Invalid; words].into_boxed_slice(),
            fill_cycle: cycle,
            last_ace_end: None,
        })
    }

    /// Records a line fill at `cycle`. If the line is already resident the
    /// previous copy is finalized first (defensive; well-ordered event
    /// streams evict before refilling).
    pub fn fill(&mut self, addr: u64, cycle: u64) {
        let base = self.line_base(addr);
        if self.lines.contains_key(&base) {
            self.evict(base, cycle);
        }
        let words = self.words_per_line;
        self.lines.insert(
            base,
            LineState {
                words: vec![WordState::Filled(cycle); words].into_boxed_slice(),
                fill_cycle: cycle,
                last_ace_end: None,
            },
        );
    }

    /// Records an ACE read of `bytes` bytes at `addr`.
    pub fn read(&mut self, addr: u64, bytes: u64, cycle: u64) {
        let mut ace = 0u128;
        let line_bytes = self.line_bytes;
        let first = addr / 4;
        let last = (addr + bytes - 1) / 4;
        for w in first..=last {
            let base = (w * 4) & !(line_bytes - 1);
            let line = self.line_entry(base, cycle);
            let idx = ((w * 4 - base) / 4) as usize;
            line.words[idx] = match line.words[idx] {
                WordState::Invalid => WordState::ReadLast(cycle),
                WordState::Filled(t0) | WordState::ReadLast(t0) => {
                    ace += u128::from(cycle.saturating_sub(t0)) * 32;
                    WordState::ReadLast(cycle)
                }
                WordState::Dirty(t0) | WordState::DirtyRead(t0) => {
                    ace += u128::from(cycle.saturating_sub(t0)) * 32;
                    WordState::DirtyRead(cycle)
                }
            };
            line.last_ace_end = Some(line.last_ace_end.map_or(cycle, |c| c.max(cycle)));
        }
        self.data_ace += ace;
    }

    /// Records a write of `bytes` bytes at `addr`. Previous contents of the
    /// covered words become un-ACE retroactively (overwritten before read).
    pub fn write(&mut self, addr: u64, bytes: u64, cycle: u64) {
        let line_bytes = self.line_bytes;
        let first = addr / 4;
        let last = (addr + bytes - 1) / 4;
        for w in first..=last {
            let base = (w * 4) & !(line_bytes - 1);
            let line = self.line_entry(base, cycle);
            let idx = ((w * 4 - base) / 4) as usize;
            line.words[idx] = WordState::Dirty(cycle);
        }
    }

    /// Records the eviction of the line containing `addr` at `cycle`. Dirty
    /// words are written back and thus ACE since their last write.
    pub fn evict(&mut self, addr: u64, cycle: u64) {
        let base = self.line_base(addr);
        let Some(line) = self.lines.remove(&base) else {
            return;
        };
        let mut ace = 0u128;
        let mut any_dirty = false;
        for w in line.words.iter() {
            if let WordState::Dirty(t0) | WordState::DirtyRead(t0) = w {
                ace += u128::from(cycle.saturating_sub(*t0)) * 32;
                any_dirty = true;
            }
        }
        self.data_ace += ace;
        let tag_end = if any_dirty {
            Some(cycle)
        } else {
            line.last_ace_end
        };
        if let Some(end) = tag_end {
            self.tag_ace +=
                u128::from(end.saturating_sub(line.fill_cycle)) * u128::from(self.tag_bits);
        }
    }

    /// Closes all open intervals at `end_cycle` and returns
    /// `(data_ace_bit_cycles, tag_ace_bit_cycles)`.
    pub fn finish(&mut self, end_cycle: u64) -> (u128, u128) {
        let bases: Vec<u64> = self.lines.keys().copied().collect();
        for base in bases {
            self.evict(base, end_cycle);
        }
        (self.data_ace, self.tag_ace)
    }

    /// Number of currently resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

/// Entry-granularity lifetime analysis for the DTLB.
///
/// A translation is ACE from its fill (or previous use) to its last use by
/// an ACE memory access: a corrupted translation that is subsequently used
/// produces a wrong effective address. Read⇒Evict tails are un-ACE (the
/// paper's "read to evict is un-ACE" DTLB rule, Section IV-B).
#[derive(Debug)]
pub struct TlbLifetime {
    entries: HashMap<u64, WordState>,
    ace: u128,
    entry_bits: u32,
}

impl TlbLifetime {
    /// Creates an analyzer with `entry_bits` vulnerable bits per entry.
    #[must_use]
    pub fn new(entry_bits: u32) -> TlbLifetime {
        TlbLifetime {
            entries: HashMap::new(),
            ace: 0,
            entry_bits,
        }
    }

    /// Records a TLB fill for `vpn`.
    pub fn fill(&mut self, vpn: u64, cycle: u64) {
        self.entries.insert(vpn, WordState::Filled(cycle));
    }

    /// Records an ACE use (translation) of `vpn`.
    pub fn read(&mut self, vpn: u64, cycle: u64) {
        let state = self.entries.entry(vpn).or_insert(WordState::Filled(cycle));
        match *state {
            WordState::Invalid => {}
            WordState::Filled(t0)
            | WordState::ReadLast(t0)
            | WordState::Dirty(t0)
            | WordState::DirtyRead(t0) => {
                self.ace += u128::from(cycle.saturating_sub(t0)) * u128::from(self.entry_bits);
            }
        }
        *state = WordState::ReadLast(cycle);
    }

    /// Records the eviction of `vpn`'s entry (contributes nothing: the tail
    /// after the last use is un-ACE).
    pub fn evict(&mut self, vpn: u64) {
        self.entries.remove(&vpn);
    }

    /// Returns accumulated ACE bit-cycles.
    #[must_use]
    pub fn finish(&mut self) -> u128 {
        self.ace
    }

    /// Number of tracked (resident) translations.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_read_interval_is_ace() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x1000, 100);
        c.read(0x1000, 8, 150); // two words ACE for 50 cycles each
        let (data, _) = c.finish(150);
        assert_eq!(data, 2 * 50 * 32);
    }

    #[test]
    fn read_to_evict_tail_is_unace() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x1000, 0);
        c.read(0x1000, 4, 10);
        c.evict(0x1000, 500);
        let (data, _) = c.finish(500);
        assert_eq!(data, 10 * 32, "only fill->read counts");
    }

    #[test]
    fn write_to_evict_is_ace_writeback() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 4, 10);
        c.evict(0x0, 110);
        let (data, _) = c.finish(110);
        assert_eq!(data, 100 * 32);
    }

    #[test]
    fn overwritten_before_read_is_unace() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 4, 10);
        c.write(0x0, 4, 50); // first write wasted
        c.read(0x0, 4, 60);
        let (data, _) = c.finish(60);
        // Only the second write's 10 cycles are ACE.
        assert_eq!(data, 10 * 32);
    }

    #[test]
    fn unread_fill_contributes_nothing() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x40, 0);
        c.evict(0x40, 1000);
        let (data, tag) = c.finish(1000);
        assert_eq!(data, 0);
        assert_eq!(tag, 0, "clean never-read line has un-ACE tag");
    }

    #[test]
    fn word_granularity_strided_access() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        // Read only one 4-byte word out of the 16 in the line.
        c.read(0x0, 4, 100);
        let (data, _) = c.finish(100);
        assert_eq!(data, 100 * 32, "15 of 16 words stay un-ACE");
    }

    #[test]
    fn read_read_chains_accumulate() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.read(0x0, 4, 10);
        c.read(0x0, 4, 30);
        c.read(0x0, 4, 70);
        let (data, _) = c.finish(70);
        assert_eq!(data, 70 * 32);
    }

    #[test]
    fn dirty_line_ace_through_finish() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 8, 20);
        let (data, tag) = c.finish(120);
        assert_eq!(data, 2 * 100 * 32);
        assert_eq!(tag, 120 * 32, "dirty line's tag ACE from fill to writeback");
    }

    #[test]
    fn refill_without_evict_is_tolerated() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 4, 10);
        c.fill(0x0, 50); // implicit evict at 50
        let (data, _) = c.finish(50);
        assert_eq!(data, 40 * 32);
    }

    #[test]
    fn dirty_word_stays_ace_across_reads_until_writeback() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 4, 10);
        c.read(0x0, 4, 20); // write->read ACE
        c.evict(0x0, 100); // still dirty: read->writeback also ACE
        let (data, _) = c.finish(100);
        assert_eq!(data, (10 + 80) * 32);
    }

    #[test]
    fn dirty_read_then_overwrite_ends_span_unace() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.write(0x0, 4, 10);
        c.read(0x0, 4, 20);
        c.write(0x0, 4, 50); // tail [20,50) un-ACE, new dirty span starts
        c.evict(0x0, 60);
        let (data, _) = c.finish(60);
        assert_eq!(data, (10 + 10) * 32);
    }

    #[test]
    fn tlb_fill_use_intervals() {
        let mut t = TlbLifetime::new(64);
        t.fill(7, 0);
        t.read(7, 100);
        t.read(7, 250);
        t.evict(7);
        assert_eq!(t.finish(), 250 * 64);
        assert_eq!(t.resident_entries(), 0);
    }

    #[test]
    fn tlb_unused_entry_is_unace() {
        let mut t = TlbLifetime::new(64);
        t.fill(3, 0);
        t.evict(3);
        assert_eq!(t.finish(), 0);
    }

    #[test]
    fn cross_line_read_touches_both_lines() {
        let mut c = CacheLifetime::new(64, 32);
        c.fill(0x0, 0);
        c.fill(0x40, 0);
        c.read(0x3C, 8, 10); // last word of line 0, first of line 1
        let (data, _) = c.finish(10);
        assert_eq!(data, 2 * 10 * 32);
    }
}
