use crate::structures::Structure;

/// Circuit-level raw fault rates, in arbitrary units per bit, for every
/// tracked structure.
///
/// The paper (Section VI) fixes the raw rate at 1 unit/bit for the baseline
/// and studies two protected variants (Figure 8a):
///
/// * **RHC** — ROB, LQ and SQ built from radiation-hardened circuitry
///   (ROB 0.25, LQ 0.4, SQ 0.35 units/bit);
/// * **EDR** — ROB, LQ and SQ protected by error detection and recovery
///   (rate 0).
///
/// Cache rates are unchanged in both variants.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRates {
    name: &'static str,
    rates: [f64; Structure::ALL.len()],
}

impl FaultRates {
    /// Uniform rates of 1 unit/bit (the paper's baseline assumption).
    #[must_use]
    pub fn baseline() -> FaultRates {
        FaultRates {
            name: "Baseline",
            rates: [1.0; Structure::ALL.len()],
        }
    }

    /// Radiation-Hardened Circuitry rates of Figure 8(a).
    #[must_use]
    pub fn rhc() -> FaultRates {
        let mut fr = FaultRates::baseline();
        fr.name = "RHC";
        fr.set(Structure::Rob, 0.25);
        fr.set(Structure::LqTag, 0.4);
        fr.set(Structure::LqData, 0.4);
        fr.set(Structure::SqTag, 0.35);
        fr.set(Structure::SqData, 0.35);
        fr
    }

    /// Error Detection and Recovery rates of Figure 8(a).
    #[must_use]
    pub fn edr() -> FaultRates {
        let mut fr = FaultRates::baseline();
        fr.name = "EDR";
        fr.set(Structure::Rob, 0.0);
        fr.set(Structure::LqTag, 0.0);
        fr.set(Structure::LqData, 0.0);
        fr.set(Structure::SqTag, 0.0);
        fr.set(Structure::SqData, 0.0);
        fr
    }

    /// Builds a custom table starting from uniform 1 unit/bit.
    #[must_use]
    pub fn custom(name: &'static str) -> FaultRates {
        FaultRates {
            name,
            rates: [1.0; Structure::ALL.len()],
        }
    }

    /// Table name, used in reports ("Baseline", "RHC", "EDR").
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Rate of one structure, in units/bit.
    #[inline]
    #[must_use]
    pub fn rate(&self, s: Structure) -> f64 {
        self.rates[s.index()]
    }

    /// Sets the rate of one structure.
    pub fn set(&mut self, s: Structure, rate: f64) -> &mut FaultRates {
        assert!(rate >= 0.0, "fault rates must be non-negative");
        self.rates[s.index()] = rate;
        self
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_uniform_one() {
        let fr = FaultRates::baseline();
        for s in Structure::ALL {
            assert_eq!(fr.rate(s), 1.0);
        }
    }

    #[test]
    fn rhc_matches_figure_8a() {
        let fr = FaultRates::rhc();
        assert_eq!(fr.rate(Structure::Rob), 0.25);
        assert_eq!(fr.rate(Structure::Iq), 1.0);
        assert_eq!(fr.rate(Structure::Fu), 1.0);
        assert_eq!(fr.rate(Structure::RegFile), 1.0);
        assert_eq!(fr.rate(Structure::LqTag), 0.4);
        assert_eq!(fr.rate(Structure::LqData), 0.4);
        assert_eq!(fr.rate(Structure::SqTag), 0.35);
        assert_eq!(fr.rate(Structure::SqData), 0.35);
        assert_eq!(fr.rate(Structure::Dl1Data), 1.0);
        assert_eq!(fr.rate(Structure::L2Data), 1.0);
    }

    #[test]
    fn edr_zeroes_protected_structures() {
        let fr = FaultRates::edr();
        for s in [
            Structure::Rob,
            Structure::LqTag,
            Structure::LqData,
            Structure::SqTag,
            Structure::SqData,
        ] {
            assert_eq!(fr.rate(s), 0.0);
        }
        assert_eq!(fr.rate(Structure::Iq), 1.0);
        assert_eq!(fr.rate(Structure::Dtlb), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rates_rejected() {
        FaultRates::custom("bad").set(Structure::Iq, -1.0);
    }
}
