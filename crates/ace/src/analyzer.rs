use crate::cam::CamAnalysis;
use crate::deadness::DeadnessEngine;
use crate::lifetime::{CacheLifetime, TlbLifetime};
use crate::record::{DynId, InstrRecord, PregRecord};
use crate::report::AvfReport;
use crate::structures::{Structure, StructureSizes};

/// Options controlling the analysis.
#[derive(Debug, Clone, Default)]
pub struct AceConfig {
    /// Enable the O(n²) Hamming-distance-1 CAM refinement for the DTLB tag
    /// array. Off by default; intended for targeted studies.
    pub cam_analysis: bool,
}

/// Facade over the full ACE analysis: the deadness engine for the commit
/// stream, lifetime analyzers for DL1/L2/DTLB, and the final AVF roll-up.
///
/// The simulator drives it with three event families:
///
/// 1. [`AvfAnalyzer::commit`] / [`AvfAnalyzer::preg_freed`] from the commit
///    stage (core structures + register file);
/// 2. `dl1_*` / `l2_*` events from the cache controllers;
/// 3. `dtlb_*` events from the TLB.
///
/// [`AvfAnalyzer::finish`] closes open lifetimes and produces an
/// [`AvfReport`].
#[derive(Debug)]
pub struct AvfAnalyzer {
    engine: DeadnessEngine,
    dl1: CacheLifetime,
    l2: CacheLifetime,
    dtlb: TlbLifetime,
    cam: Option<CamAnalysis>,
    sizes: StructureSizes,
    name: String,
}

impl std::fmt::Debug for DeadnessEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadnessEngine")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl AvfAnalyzer {
    /// Creates an analyzer for a machine with the given structure sizes.
    #[must_use]
    pub fn new(name: impl Into<String>, sizes: StructureSizes) -> AvfAnalyzer {
        AvfAnalyzer::with_config(name, sizes, AceConfig::default())
    }

    /// Creates an analyzer with explicit [`AceConfig`].
    #[must_use]
    pub fn with_config(
        name: impl Into<String>,
        sizes: StructureSizes,
        config: AceConfig,
    ) -> AvfAnalyzer {
        AvfAnalyzer {
            engine: DeadnessEngine::new(),
            dl1: CacheLifetime::new(u64::from(sizes.line_bytes), sizes.dl1_tag_bits),
            l2: CacheLifetime::new(u64::from(sizes.line_bytes), sizes.l2_tag_bits),
            dtlb: TlbLifetime::new(sizes.dtlb_entry_bits),
            cam: config.cam_analysis.then(CamAnalysis::new),
            sizes,
            name: name.into(),
        }
    }

    /// Structure sizes in use.
    #[must_use]
    pub fn sizes(&self) -> &StructureSizes {
        &self.sizes
    }

    /// Processes a committed instruction (see [`DeadnessEngine::commit`]).
    pub fn commit(&mut self, rec: InstrRecord) -> DynId {
        self.engine.commit(rec)
    }

    /// Processes a freed physical register's lifetime.
    pub fn preg_freed(&mut self, rec: PregRecord) {
        self.engine.preg_freed(rec);
    }

    /// DL1 line fill.
    pub fn dl1_fill(&mut self, addr: u64, cycle: u64) {
        self.dl1.fill(addr, cycle);
    }

    /// ACE read hitting the DL1.
    pub fn dl1_read(&mut self, addr: u64, bytes: u64, cycle: u64) {
        self.dl1.read(addr, bytes, cycle);
    }

    /// Committed store writing the DL1.
    pub fn dl1_write(&mut self, addr: u64, bytes: u64, cycle: u64) {
        self.dl1.write(addr, bytes, cycle);
    }

    /// DL1 line eviction.
    pub fn dl1_evict(&mut self, addr: u64, cycle: u64) {
        self.dl1.evict(addr, cycle);
    }

    /// L2 line fill (from memory).
    pub fn l2_fill(&mut self, addr: u64, cycle: u64) {
        self.l2.fill(addr, cycle);
    }

    /// L2 read (a DL1 miss serviced by the L2 counts as an ACE read of the
    /// whole line being transferred).
    pub fn l2_read(&mut self, addr: u64, bytes: u64, cycle: u64) {
        self.l2.read(addr, bytes, cycle);
    }

    /// L2 write (a DL1 writeback).
    pub fn l2_write(&mut self, addr: u64, bytes: u64, cycle: u64) {
        self.l2.write(addr, bytes, cycle);
    }

    /// L2 line eviction.
    pub fn l2_evict(&mut self, addr: u64, cycle: u64) {
        self.l2.evict(addr, cycle);
    }

    /// DTLB fill of `vpn`.
    pub fn dtlb_fill(&mut self, vpn: u64, cycle: u64) {
        self.dtlb.fill(vpn, cycle);
        if let Some(cam) = &mut self.cam {
            cam.insert(vpn, cycle);
        }
    }

    /// DTLB translation used by an ACE memory access.
    pub fn dtlb_read(&mut self, vpn: u64, cycle: u64) {
        self.dtlb.read(vpn, cycle);
    }

    /// DTLB entry eviction.
    pub fn dtlb_evict(&mut self, vpn: u64, cycle: u64) {
        self.dtlb.evict(vpn);
        if let Some(cam) = &mut self.cam {
            cam.remove(vpn, cycle);
        }
    }

    /// Closes all analyses at `cycles` and produces the report.
    #[must_use]
    pub fn finish(mut self, cycles: u64) -> AvfReport {
        self.engine.finish();
        let mut ace = [0u128; Structure::ALL.len()];
        for s in Structure::ALL {
            ace[s.index()] = self.engine.accumulator().get(s);
        }
        let (dl1_data, dl1_tag) = self.dl1.finish(cycles);
        ace[Structure::Dl1Data.index()] += dl1_data;
        ace[Structure::Dl1Tag.index()] += dl1_tag;
        let (l2_data, l2_tag) = self.l2.finish(cycles);
        ace[Structure::L2Data.index()] += l2_data;
        ace[Structure::L2Tag.index()] += l2_tag;
        ace[Structure::Dtlb.index()] += self.dtlb.finish();
        if let Some(mut cam) = self.cam.take() {
            ace[Structure::Dtlb.index()] += cam.finish(cycles);
        }
        AvfReport::new(
            self.name,
            cycles.max(1),
            self.sizes,
            ace,
            self.engine.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AceKind, MemRef, Residency, Slice};

    #[test]
    fn end_to_end_single_live_chain() {
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::new("t", sizes.clone());

        // One ALU op resident in the ROB for 50 of 100 cycles, consumed by a
        // branch -> live -> counted.
        let mut rec = InstrRecord::of_kind(AceKind::Value);
        rec.dest = Some(1);
        rec.residency.push(Slice {
            structure: Structure::Rob,
            start: 0,
            end: 50,
            bits: 76,
        });
        a.commit(rec);
        let mut br = InstrRecord::of_kind(AceKind::Branch);
        br.srcs[0] = Some(1);
        a.commit(br);

        let report = a.finish(100);
        let expect = (50.0 * 76.0) / (sizes.bits(Structure::Rob) as f64 * 100.0);
        assert!((report.avf(Structure::Rob) - expect).abs() < 1e-12);
    }

    #[test]
    fn cache_events_roll_up_into_report() {
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::new("t", sizes.clone());
        a.dl1_fill(0x0, 0);
        a.dl1_read(0x0, 64, 100); // whole line ACE for 100 cycles
        let report = a.finish(100);
        let expect = (64.0 * 8.0 * 100.0) / (sizes.bits(Structure::Dl1Data) as f64 * 100.0);
        assert!((report.avf(Structure::Dl1Data) - expect).abs() < 1e-12);
    }

    #[test]
    fn dtlb_and_cam_combine() {
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::with_config("t", sizes, AceConfig { cam_analysis: true });
        a.dtlb_fill(8, 0);
        a.dtlb_fill(9, 0); // hamming distance 1 from 8
        a.dtlb_read(8, 10);
        let report = a.finish(10);
        assert!(report.avf(Structure::Dtlb) > 0.0);
    }

    #[test]
    fn dead_store_does_not_pollute_caches_report() {
        // Store overwritten before read: SQ residency must not be credited.
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::new("t", sizes);
        let mut s1 = InstrRecord::of_kind(AceKind::Store);
        s1.mem = Some(MemRef {
            addr: 0x100,
            bytes: 8,
        });
        let mut res = Residency::new();
        res.push(Slice {
            structure: Structure::SqData,
            start: 0,
            end: 10,
            bits: 64,
        });
        s1.residency = res;
        a.commit(s1);
        let mut s2 = InstrRecord::of_kind(AceKind::Store);
        s2.mem = Some(MemRef {
            addr: 0x100,
            bytes: 8,
        });
        a.commit(s2);
        let report = a.finish(100);
        assert_eq!(report.avf(Structure::SqData), 0.0);
    }

    #[test]
    fn dead_store_tag_bits_stay_ace() {
        // A dynamically dead store's data is un-ACE, but its address
        // (tag) bits are not: a fault there misdirects the write.
        // Regression for the injection-measured SQ violation.
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::new("t", sizes.clone());
        let mut s1 = InstrRecord::of_kind(AceKind::Store);
        s1.mem = Some(MemRef {
            addr: 0x100,
            bytes: 8,
        });
        let mut res = Residency::new();
        res.push(Slice {
            structure: Structure::SqTag,
            start: 0,
            end: 10,
            bits: 64,
        });
        res.push(Slice {
            structure: Structure::SqData,
            start: 0,
            end: 10,
            bits: 64,
        });
        s1.residency = res;
        a.commit(s1);
        // Overwrite before any load: s1 resolves dead.
        let mut s2 = InstrRecord::of_kind(AceKind::Store);
        s2.mem = Some(MemRef {
            addr: 0x100,
            bytes: 8,
        });
        a.commit(s2);
        let report = a.finish(100);
        assert_eq!(report.avf(Structure::SqData), 0.0, "dead data un-ACE");
        let expect = (10.0 * 64.0) / (sizes.bits(Structure::SqTag) as f64 * 100.0);
        assert!(
            (report.avf(Structure::SqTag) - expect).abs() < 1e-12,
            "dead store tag stays ACE: {} vs {expect}",
            report.avf(Structure::SqTag)
        );
    }
}
