use crate::structures::Structure;

/// Identifier of a committed dynamic instruction, assigned densely in commit
/// order by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DynId(pub u64);

/// A residency interval: this instruction held `bits` ACE-candidate bits in
/// `structure` during `[start, end)` cycles.
///
/// Whether those bit-cycles are finally counted as ACE depends on the
/// instruction's liveness, resolved later by the deadness engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// Structure occupied.
    pub structure: Structure,
    /// First cycle of residency (inclusive).
    pub start: u64,
    /// Last cycle of residency (exclusive).
    pub end: u64,
    /// Number of bits held ACE during the interval.
    pub bits: u32,
}

impl Slice {
    /// Bit-cycles contributed if the owning instruction turns out ACE.
    #[must_use]
    pub fn bit_cycles(&self) -> u128 {
        u128::from(self.end.saturating_sub(self.start)) * u128::from(self.bits)
    }
}

/// Fixed-capacity set of residency slices for one dynamic instruction.
///
/// An instruction occupies at most: ROB, IQ, LQ tag, LQ data (or SQ tag +
/// SQ data), and an FU — so eight slots suffice and no heap allocation is
/// needed on the commit fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Residency {
    slices: [Option<Slice>; 8],
    len: u8,
}

impl Residency {
    /// An empty residency set.
    #[must_use]
    pub fn new() -> Residency {
        Residency::default()
    }

    /// Adds a slice.
    ///
    /// # Panics
    ///
    /// Panics if more than eight slices are added.
    pub fn push(&mut self, slice: Slice) {
        let i = usize::from(self.len);
        assert!(i < self.slices.len(), "residency overflow");
        self.slices[i] = Some(slice);
        self.len += 1;
    }

    /// Iterates over the stored slices.
    pub fn iter(&self) -> impl Iterator<Item = &Slice> {
        self.slices[..usize::from(self.len)]
            .iter()
            .filter_map(Option::as_ref)
    }

    /// Number of stored slices.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether no slices are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// How the deadness engine should treat a committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AceKind {
    /// Control transfer: ACE unconditionally (it steered committed control
    /// flow).
    Branch,
    /// Produces a register value: ACE iff some transitive consumer is ACE.
    Value,
    /// Writes memory: ACE iff a committed load reads any stored byte before
    /// it is overwritten, or the data survives to the end of the run
    /// (live-out).
    Store,
    /// No-operation: un-ACE by definition.
    Nop,
    /// Halt: ACE (it determines program termination).
    Halt,
}

/// Memory footprint of a load or store, used for memory-level deadness and
/// cache lifetime bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes (4 or 8).
    pub bytes: u8,
}

impl MemRef {
    /// Iterates over the 4-byte-aligned word indices covered by the access.
    pub fn words(&self) -> impl Iterator<Item = u64> {
        let first = self.addr / 4;
        let last = (self.addr + u64::from(self.bytes) - 1) / 4;
        first..=last
    }
}

/// Everything the analyzer needs to know about one committed instruction.
#[derive(Debug, Clone, Copy)]
pub struct InstrRecord {
    /// Deadness class.
    pub kind: AceKind,
    /// Architected source registers (`None`-padded; the zero register must
    /// not appear here).
    pub srcs: [Option<u8>; 3],
    /// Architected destination register, if any.
    pub dest: Option<u8>,
    /// Memory reference for loads and stores.
    pub mem: Option<MemRef>,
    /// Residency intervals to credit if the instruction is ACE.
    pub residency: Residency,
}

impl InstrRecord {
    /// Creates a record with no register or memory effects.
    #[must_use]
    pub fn of_kind(kind: AceKind) -> InstrRecord {
        InstrRecord {
            kind,
            srcs: [None; 3],
            dest: None,
            mem: None,
            residency: Residency::new(),
        }
    }
}

/// Lifetime of one physical register, reported when the register is freed
/// (or at the end of simulation).
///
/// The register's ACE interval is `[write_cycle, latest read by a live
/// consumer]` — rename registers "cannot hold ACE data all the time"
/// (paper Section III); this record is how that is measured.
#[derive(Debug, Clone)]
pub struct PregRecord {
    /// Cycle at which the producing instruction wrote the register.
    pub write_cycle: u64,
    /// `(consumer, read cycle)` pairs for every issue-time read.
    pub reads: Vec<(DynId, u64)>,
    /// Register width in bits.
    pub bits: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bit_cycles() {
        let s = Slice {
            structure: Structure::Rob,
            start: 10,
            end: 15,
            bits: 76,
        };
        assert_eq!(s.bit_cycles(), 5 * 76);
        let empty = Slice {
            structure: Structure::Rob,
            start: 10,
            end: 10,
            bits: 76,
        };
        assert_eq!(empty.bit_cycles(), 0);
    }

    #[test]
    fn residency_holds_up_to_eight() {
        let mut r = Residency::new();
        assert!(r.is_empty());
        for i in 0..8 {
            r.push(Slice {
                structure: Structure::Iq,
                start: i,
                end: i + 1,
                bits: 32,
            });
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.iter().count(), 8);
    }

    #[test]
    #[should_panic(expected = "residency overflow")]
    fn residency_overflow_panics() {
        let mut r = Residency::new();
        for i in 0..9 {
            r.push(Slice {
                structure: Structure::Iq,
                start: i,
                end: i + 1,
                bits: 32,
            });
        }
    }

    #[test]
    fn memref_word_coverage() {
        let aligned4 = MemRef { addr: 8, bytes: 4 };
        assert_eq!(aligned4.words().collect::<Vec<_>>(), vec![2]);
        let aligned8 = MemRef { addr: 8, bytes: 8 };
        assert_eq!(aligned8.words().collect::<Vec<_>>(), vec![2, 3]);
        let straddle = MemRef { addr: 6, bytes: 4 };
        assert_eq!(straddle.words().collect::<Vec<_>>(), vec![1, 2]);
    }
}
