use std::fmt;

/// A vulnerable hardware structure tracked by the ACE analysis.
///
/// The split of LQ/SQ into tag and data arrays mirrors the paper's Figure
/// 8(a), which assigns (potentially) distinct circuit-level fault rates to
/// each array, and its Section IV-A.1 observation that an LQ entry's data
/// array holds ACE bits only after the fill returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Structure {
    /// Re-order buffer.
    Rob,
    /// Integer issue queue.
    Iq,
    /// Load queue address/tag array.
    LqTag,
    /// Load queue data array.
    LqData,
    /// Store queue address/tag array.
    SqTag,
    /// Store queue data array.
    SqData,
    /// Function-unit pipeline latches.
    Fu,
    /// Merged physical (rename) register file.
    RegFile,
    /// L1 data cache, data array.
    Dl1Data,
    /// L1 data cache, tag array.
    Dl1Tag,
    /// Data TLB (fully-associative CAM + payload).
    Dtlb,
    /// Unified L2 cache, data array.
    L2Data,
    /// Unified L2 cache, tag array.
    L2Tag,
}

impl Structure {
    /// Every tracked structure, in display order.
    pub const ALL: [Structure; 13] = [
        Structure::Rob,
        Structure::Iq,
        Structure::LqTag,
        Structure::LqData,
        Structure::SqTag,
        Structure::SqData,
        Structure::Fu,
        Structure::RegFile,
        Structure::Dl1Data,
        Structure::Dl1Tag,
        Structure::Dtlb,
        Structure::L2Data,
        Structure::L2Tag,
    ];

    /// Stable dense index for table lookups.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Structure::Rob => "ROB",
            Structure::Iq => "IQ",
            Structure::LqTag => "LQ.tag",
            Structure::LqData => "LQ.data",
            Structure::SqTag => "SQ.tag",
            Structure::SqData => "SQ.data",
            Structure::Fu => "FU",
            Structure::RegFile => "RF",
            Structure::Dl1Data => "DL1.data",
            Structure::Dl1Tag => "DL1.tag",
            Structure::Dtlb => "DTLB",
            Structure::L2Data => "L2.data",
            Structure::L2Tag => "L2.tag",
        }
    }

    /// The reporting class this structure belongs to.
    #[must_use]
    pub fn class(self) -> StructureClass {
        match self {
            Structure::Rob
            | Structure::Iq
            | Structure::LqTag
            | Structure::LqData
            | Structure::SqTag
            | Structure::SqData
            | Structure::Fu => StructureClass::Qs,
            Structure::RegFile => StructureClass::Rf,
            Structure::Dl1Data | Structure::Dl1Tag | Structure::Dtlb => StructureClass::Dl1Dtlb,
            Structure::L2Data | Structure::L2Tag => StructureClass::L2,
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reporting classes used throughout the paper's figures: queueing
/// structures (QS), the register file, the L1 data side, and the L2.
///
/// The paper normalizes SER per class by the total number of bits in the
/// class ("units/bit"); [`crate::SerReport`] reproduces that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureClass {
    /// Queueing structures: ROB, IQ, LQ, SQ, FU.
    Qs,
    /// Physical register file.
    Rf,
    /// L1 data cache plus data TLB.
    Dl1Dtlb,
    /// Unified L2 cache.
    L2,
}

impl StructureClass {
    /// All classes in display order.
    pub const ALL: [StructureClass; 4] = [
        StructureClass::Qs,
        StructureClass::Rf,
        StructureClass::Dl1Dtlb,
        StructureClass::L2,
    ];

    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StructureClass::Qs => "QS",
            StructureClass::Rf => "RF",
            StructureClass::Dl1Dtlb => "DL1+DTLB",
            StructureClass::L2 => "L2",
        }
    }
}

impl fmt::Display for StructureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical sizes of every tracked structure, in bits.
///
/// The simulator derives one of these from its machine configuration; the
/// defaults below correspond to the paper's Table I baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureSizes {
    /// ROB entries.
    pub rob_entries: u32,
    /// Bits per ROB entry (Table I: 76).
    pub rob_entry_bits: u32,
    /// IQ entries.
    pub iq_entries: u32,
    /// Bits per IQ entry (Table I: 32).
    pub iq_entry_bits: u32,
    /// LQ entries.
    pub lq_entries: u32,
    /// SQ entries.
    pub sq_entries: u32,
    /// Bits in the tag/address half of an LQ/SQ entry (Table I gives 128
    /// bits/entry total; we split 64/64).
    pub lsq_tag_bits: u32,
    /// Bits in the data half of an LQ/SQ entry.
    pub lsq_data_bits: u32,
    /// Number of single-cycle ALUs.
    pub n_alus: u32,
    /// Number of multipliers.
    pub n_muls: u32,
    /// Multiplier latency in cycles (= pipeline depth for occupancy).
    pub mul_latency: u32,
    /// Latch bits per FU pipeline stage (two operands + result).
    pub fu_stage_bits: u32,
    /// Physical (rename) registers.
    pub rf_regs: u32,
    /// Bits per physical register.
    pub rf_reg_bits: u32,
    /// L1 data cache lines.
    pub dl1_lines: u32,
    /// Line size in bytes (shared by DL1 and L2).
    pub line_bytes: u32,
    /// Tag+state bits per DL1 line.
    pub dl1_tag_bits: u32,
    /// L2 lines.
    pub l2_lines: u32,
    /// Tag+state bits per L2 line.
    pub l2_tag_bits: u32,
    /// DTLB entries.
    pub dtlb_entries: u32,
    /// Bits per DTLB entry (VPN CAM tag + PPN payload + state).
    pub dtlb_entry_bits: u32,
}

impl StructureSizes {
    /// Sizes for the paper's Table I baseline configuration.
    #[must_use]
    pub fn baseline() -> StructureSizes {
        StructureSizes {
            rob_entries: 80,
            rob_entry_bits: 76,
            iq_entries: 20,
            iq_entry_bits: 32,
            lq_entries: 32,
            sq_entries: 32,
            lsq_tag_bits: 64,
            lsq_data_bits: 64,
            n_alus: 4,
            n_muls: 1,
            mul_latency: 7,
            fu_stage_bits: 192,
            rf_regs: 80,
            rf_reg_bits: 64,
            dl1_lines: 1024, // 64 kB / 64 B
            line_bytes: 64,
            dl1_tag_bits: 32,
            l2_lines: 16_384, // 1 MB / 64 B
            l2_tag_bits: 32,
            dtlb_entries: 256,
            dtlb_entry_bits: 64,
        }
    }

    /// Total bits of one structure.
    #[must_use]
    pub fn bits(&self, s: Structure) -> u64 {
        let (entries, per) = match s {
            Structure::Rob => (self.rob_entries, self.rob_entry_bits),
            Structure::Iq => (self.iq_entries, self.iq_entry_bits),
            Structure::LqTag => (self.lq_entries, self.lsq_tag_bits),
            Structure::LqData => (self.lq_entries, self.lsq_data_bits),
            Structure::SqTag => (self.sq_entries, self.lsq_tag_bits),
            Structure::SqData => (self.sq_entries, self.lsq_data_bits),
            Structure::Fu => (
                self.n_alus + self.n_muls * self.mul_latency,
                self.fu_stage_bits,
            ),
            Structure::RegFile => (self.rf_regs, self.rf_reg_bits),
            Structure::Dl1Data => (self.dl1_lines, self.line_bytes * 8),
            Structure::Dl1Tag => (self.dl1_lines, self.dl1_tag_bits),
            Structure::Dtlb => (self.dtlb_entries, self.dtlb_entry_bits),
            Structure::L2Data => (self.l2_lines, self.line_bytes * 8),
            Structure::L2Tag => (self.l2_lines, self.l2_tag_bits),
        };
        u64::from(entries) * u64::from(per)
    }

    /// Total bits across a class (the paper's per-class normalization
    /// denominator).
    #[must_use]
    pub fn class_bits(&self, class: StructureClass) -> u64 {
        Structure::ALL
            .iter()
            .filter(|s| s.class() == class)
            .map(|&s| self.bits(s))
            .sum()
    }

    /// Total bits in the core (QS + RF).
    #[must_use]
    pub fn core_bits(&self) -> u64 {
        self.class_bits(StructureClass::Qs) + self.class_bits(StructureClass::Rf)
    }
}

impl Default for StructureSizes {
    fn default() -> Self {
        StructureSizes::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_bit_counts_match_table_i() {
        let s = StructureSizes::baseline();
        assert_eq!(s.bits(Structure::Rob), 80 * 76);
        assert_eq!(s.bits(Structure::Iq), 20 * 32);
        assert_eq!(
            s.bits(Structure::LqTag) + s.bits(Structure::LqData),
            32 * 128
        );
        assert_eq!(s.bits(Structure::RegFile), 80 * 64);
        assert_eq!(s.bits(Structure::Dl1Data), 64 * 1024 * 8);
        assert_eq!(s.bits(Structure::L2Data), 1024 * 1024 * 8);
    }

    #[test]
    fn classes_partition_all_structures() {
        let s = StructureSizes::baseline();
        let total: u64 = Structure::ALL.iter().map(|&x| s.bits(x)).sum();
        let by_class: u64 = StructureClass::ALL.iter().map(|&c| s.class_bits(c)).sum();
        assert_eq!(total, by_class);
    }

    #[test]
    fn fu_counts_mul_pipeline_stages() {
        let s = StructureSizes::baseline();
        assert_eq!(s.bits(Structure::Fu), (4 + 7) * 192);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, s) in Structure::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<_> = Structure::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Structure::ALL.len());
    }
}
