//! # avf-ace
//!
//! ACE analysis — the measurement half of the AVF stressmark methodology
//! (Nair, John & Eeckhout, MICRO 2010, Section II).
//!
//! Architectural Vulnerability Factor (AVF, Mukherjee et al. MICRO'03) is
//! the probability that a radiation-induced fault in a structure becomes
//! visible in program output:
//!
//! ```text
//! AVF(structure) = Σ_bits ACE-cycles(bit) / (bits × cycles)
//! ```
//!
//! This crate computes AVF for the core's queueing structures, the register
//! file, and the cache hierarchy, then derates by circuit-level fault rates
//! to obtain SER ("AVF + Sum of Failure Rates"):
//!
//! * [`DeadnessEngine`] resolves *dynamically dead* instructions (Butts &
//!   Sohi) over the commit stream, deferring AVF credit until each
//!   instruction's ACE-ness is known;
//! * [`CacheLifetime`] / [`TlbLifetime`] perform Biswas-style lifetime
//!   analysis on address-based structures (Fill⇒Read, Write⇒Evict, ...);
//! * [`CamAnalysis`] optionally refines the DTLB CAM with Hamming-distance-1
//!   exposure;
//! * [`FaultRates`] holds the paper's Figure 8(a) fault-rate tables;
//! * [`AvfAnalyzer`] is the facade a simulator drives, producing an
//!   [`AvfReport`] whose [`SerReport`] reproduces the paper's normalized
//!   "units/bit" metrics.
//!
//! ## Example
//!
//! ```
//! use avf_ace::{AvfAnalyzer, AceKind, FaultRates, InstrRecord, Slice, Structure, StructureSizes};
//!
//! let mut analyzer = AvfAnalyzer::new("demo", StructureSizes::baseline());
//! // A value producer resident in the ROB, later consumed by a branch.
//! let mut producer = InstrRecord::of_kind(AceKind::Value);
//! producer.dest = Some(1);
//! producer.residency.push(Slice { structure: Structure::Rob, start: 0, end: 40, bits: 76 });
//! analyzer.commit(producer);
//! let mut branch = InstrRecord::of_kind(AceKind::Branch);
//! branch.srcs[0] = Some(1);
//! analyzer.commit(branch);
//!
//! let report = analyzer.finish(100);
//! assert!(report.avf(Structure::Rob) > 0.0);
//! let ser = report.ser(&FaultRates::baseline());
//! assert!(ser.qs() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod cam;
mod deadness;
mod faultrates;
mod fitness;
mod lifetime;
mod record;
mod report;
mod structures;

pub use analyzer::{AceConfig, AvfAnalyzer};
pub use cam::CamAnalysis;
pub use deadness::{AceAccumulator, DeadnessEngine, DeadnessStats, Liveness};
pub use faultrates::FaultRates;
pub use fitness::{Fitness, FitnessScope};
pub use lifetime::{CacheLifetime, TlbLifetime};
pub use record::{AceKind, DynId, InstrRecord, MemRef, PregRecord, Residency, Slice};
pub use report::{AceGap, AvfReport, SerReport};
pub use structures::{Structure, StructureClass, StructureSizes};
