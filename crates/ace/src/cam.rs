//! Hamming-distance-1 refinement for CAM arrays.
//!
//! Biswas et al. note that in a CAM (such as a fully-associative TLB's tag
//! array), a single-bit upset can make one entry alias another only if the
//! two tags differ in exactly one bit position; per-bit lifetime analysis is
//! needed only for such bits. This module tracks, over time, how many tag
//! bits are exposed this way and accumulates their ACE bit-cycles.
//!
//! The pairwise scan is O(n²) in the number of valid entries and runs on
//! every fill/evict, so it is disabled by default and enabled through
//! [`crate::AceConfig::cam_analysis`].

use std::collections::HashMap;

/// Tracks Hamming-distance-1 exposure of a CAM's valid tags.
#[derive(Debug)]
pub struct CamAnalysis {
    tags: HashMap<u64, ()>,
    exposed_bits: u64,
    last_change: u64,
    ace: u128,
}

impl CamAnalysis {
    /// Creates an empty analysis.
    #[must_use]
    pub fn new() -> CamAnalysis {
        CamAnalysis {
            tags: HashMap::new(),
            exposed_bits: 0,
            last_change: 0,
            ace: 0,
        }
    }

    /// Number of tag bits currently exposed (each member of a
    /// Hamming-distance-1 pair contributes one bit).
    #[must_use]
    pub fn exposed_bits(&self) -> u64 {
        self.exposed_bits
    }

    fn accumulate_to(&mut self, cycle: u64) {
        let dt = cycle.saturating_sub(self.last_change);
        self.ace += u128::from(dt) * u128::from(self.exposed_bits);
        self.last_change = cycle;
    }

    fn rescan(&mut self) {
        let tags: Vec<u64> = self.tags.keys().copied().collect();
        let mut exposed = 0u64;
        for (i, &a) in tags.iter().enumerate() {
            let mut hit = false;
            for (j, &b) in tags.iter().enumerate() {
                if i != j && (a ^ b).count_ones() == 1 {
                    hit = true;
                    break;
                }
            }
            if hit {
                exposed += 1;
            }
        }
        self.exposed_bits = exposed;
    }

    /// Records insertion of a valid tag at `cycle`.
    pub fn insert(&mut self, tag: u64, cycle: u64) {
        self.accumulate_to(cycle);
        self.tags.insert(tag, ());
        self.rescan();
    }

    /// Records removal of a tag at `cycle`.
    pub fn remove(&mut self, tag: u64, cycle: u64) {
        self.accumulate_to(cycle);
        self.tags.remove(&tag);
        self.rescan();
    }

    /// Closes the analysis at `end_cycle`, returning ACE bit-cycles due to
    /// Hamming-distance-1 exposure.
    pub fn finish(&mut self, end_cycle: u64) -> u128 {
        self.accumulate_to(end_cycle);
        self.ace
    }
}

impl Default for CamAnalysis {
    fn default() -> Self {
        CamAnalysis::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_tags_expose_nothing() {
        let mut cam = CamAnalysis::new();
        cam.insert(0b0000, 0);
        cam.insert(0b1111, 0);
        assert_eq!(cam.exposed_bits(), 0);
        assert_eq!(cam.finish(100), 0);
    }

    #[test]
    fn hamming_one_pair_exposes_two_bits() {
        let mut cam = CamAnalysis::new();
        cam.insert(0b1000, 0);
        cam.insert(0b1001, 0);
        assert_eq!(cam.exposed_bits(), 2);
        assert_eq!(cam.finish(50), 2 * 50);
    }

    #[test]
    fn removal_clears_exposure() {
        let mut cam = CamAnalysis::new();
        cam.insert(0b10, 0);
        cam.insert(0b11, 0);
        cam.remove(0b11, 40);
        assert_eq!(cam.exposed_bits(), 0);
        // Exposure existed only during [0, 40).
        assert_eq!(cam.finish(100), 2 * 40);
    }

    #[test]
    fn triple_cluster_counts_each_member_once() {
        let mut cam = CamAnalysis::new();
        cam.insert(0b000, 0);
        cam.insert(0b001, 0);
        cam.insert(0b010, 0);
        // 000-001 and 000-010 are H-1 pairs; 001-010 differ in two bits.
        assert_eq!(cam.exposed_bits(), 3);
    }
}
