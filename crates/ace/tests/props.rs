//! Property tests for ACE-analysis invariants.

use avf_ace::{
    AceKind, AvfAnalyzer, CacheLifetime, DeadnessEngine, FaultRates, InstrRecord, Liveness, MemRef,
    Slice, Structure, StructureClass, StructureSizes,
};
use proptest::prelude::*;

/// A tiny random "program" over 4 registers and 8 memory words, expressed
/// directly as instruction records.
#[derive(Debug, Clone)]
enum Op {
    Alu { dest: u8, srcs: Vec<u8> },
    Load { dest: u8, word: u8 },
    Store { src: u8, word: u8 },
    Branch { src: u8 },
    Nop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..5, proptest::collection::vec(1u8..5, 0..2))
            .prop_map(|(dest, srcs)| Op::Alu { dest, srcs }),
        (1u8..5, 0u8..8).prop_map(|(dest, word)| Op::Load { dest, word }),
        (1u8..5, 0u8..8).prop_map(|(src, word)| Op::Store { src, word }),
        (1u8..5).prop_map(|src| Op::Branch { src }),
        Just(Op::Nop),
    ]
}

fn to_record(op: &Op) -> InstrRecord {
    match op {
        Op::Alu { dest, srcs } => {
            let mut r = InstrRecord::of_kind(AceKind::Value);
            r.dest = Some(*dest);
            for (i, s) in srcs.iter().enumerate() {
                r.srcs[i] = Some(*s);
            }
            r
        }
        Op::Load { dest, word } => {
            let mut r = InstrRecord::of_kind(AceKind::Value);
            r.dest = Some(*dest);
            r.mem = Some(MemRef {
                addr: u64::from(*word) * 8,
                bytes: 8,
            });
            r
        }
        Op::Store { src, word } => {
            let mut r = InstrRecord::of_kind(AceKind::Store);
            r.srcs[0] = Some(*src);
            r.mem = Some(MemRef {
                addr: u64::from(*word) * 8,
                bytes: 8,
            });
            r
        }
        Op::Branch { src } => {
            let mut r = InstrRecord::of_kind(AceKind::Branch);
            r.srcs[0] = Some(*src);
            r
        }
        Op::Nop => InstrRecord::of_kind(AceKind::Nop),
    }
}

proptest! {
    /// Every committed instruction resolves to Live or Dead after finish();
    /// counts are conserved.
    #[test]
    fn deadness_always_fully_resolves(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut e = DeadnessEngine::new();
        let ids: Vec<_> = ops.iter().map(|op| e.commit(to_record(op))).collect();
        e.finish();
        let stats = e.stats();
        prop_assert_eq!(stats.committed, ops.len() as u64);
        prop_assert_eq!(stats.live + stats.dead, stats.committed);
        for id in ids {
            prop_assert_ne!(e.liveness(id), Liveness::Unknown);
        }
    }

    /// Branches are always live; NOPs are always dead.
    #[test]
    fn branch_live_nop_dead(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut e = DeadnessEngine::new();
        let ids: Vec<_> = ops.iter().map(|op| e.commit(to_record(op))).collect();
        e.finish();
        for (op, id) in ops.iter().zip(ids) {
            match op {
                Op::Branch { .. } => prop_assert_eq!(e.liveness(id), Liveness::Live),
                Op::Nop => prop_assert_eq!(e.liveness(id), Liveness::Dead),
                _ => {}
            }
        }
    }

    /// A producer directly feeding a live consumer is live (one-step
    /// consistency of the transitive rule).
    #[test]
    fn direct_producer_of_live_consumer_is_live(
        ops in proptest::collection::vec(op_strategy(), 1..150)
    ) {
        let mut e = DeadnessEngine::new();
        let ids: Vec<_> = ops.iter().map(|op| e.commit(to_record(op))).collect();
        e.finish();
        // Recompute def-use pairs the slow way.
        let mut last_def: [Option<usize>; 8] = [None; 8];
        for (i, op) in ops.iter().enumerate() {
            let (srcs, dest): (Vec<u8>, Option<u8>) = match op {
                Op::Alu { dest, srcs } => (srcs.clone(), Some(*dest)),
                Op::Load { dest, .. } => (vec![], Some(*dest)),
                Op::Store { src, .. } => (vec![*src], None),
                Op::Branch { src } => (vec![*src], None),
                Op::Nop => (vec![], None),
            };
            for s in srcs {
                if let Some(p) = last_def[usize::from(s)] {
                    if e.liveness(ids[i]) == Liveness::Live {
                        prop_assert_eq!(
                            e.liveness(ids[p]),
                            Liveness::Live,
                            "producer {} of live consumer {} must be live", p, i
                        );
                    }
                }
            }
            if let Some(d) = dest {
                last_def[usize::from(d)] = Some(i);
            }
        }
    }

    /// Cache lifetime ACE never exceeds bits × elapsed cycles.
    #[test]
    fn cache_ace_bounded(
        events in proptest::collection::vec((0u8..4, 0u64..4, 1u64..64), 1..300)
    ) {
        let mut c = CacheLifetime::new(64, 32);
        let mut cycle = 0u64;
        for (kind, line, dt) in events {
            cycle += dt;
            let addr = line * 64;
            match kind {
                0 => c.fill(addr, cycle),
                1 => c.read(addr, 8, cycle),
                2 => c.write(addr, 8, cycle),
                _ => c.evict(addr, cycle),
            }
        }
        let (data, tag) = c.finish(cycle);
        // 4 lines tracked at most: 4 * 512 data bits, 4 * 32 tag bits.
        prop_assert!(data <= u128::from(cycle) * 4 * 512);
        prop_assert!(tag <= u128::from(cycle) * 4 * 32);
    }

    /// AVF values from random commit streams are always within [0, 1] and
    /// SER under baseline rates equals the bit-weighted AVF.
    #[test]
    fn avf_in_unit_interval(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let sizes = StructureSizes::baseline();
        let mut a = AvfAnalyzer::new("prop", sizes);
        let mut cycle = 0u64;
        for op in &ops {
            let mut rec = to_record(op);
            rec.residency.push(Slice {
                structure: Structure::Rob,
                start: cycle,
                end: cycle + 5,
                bits: 76,
            });
            a.commit(rec);
            cycle += 1;
        }
        let report = a.finish(cycle + 10);
        for s in Structure::ALL {
            let v = report.avf(s);
            prop_assert!((0.0..=1.0).contains(&v), "{s} avf {v}");
        }
        let ser = report.ser(&FaultRates::baseline());
        let qs = report.class_avf(StructureClass::Qs);
        prop_assert!((ser.qs() - qs).abs() < 1e-9);
    }
}
