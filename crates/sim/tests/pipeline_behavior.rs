//! Behavioral tests of the pipeline timing model: these check the
//! structural properties the AVF stressmark exploits (paper Section III).

use avf_ace::{FaultRates, Structure};
use avf_isa::{DataSegment, Opcode, Program, ProgramBuilder, Reg, DATA_BASE};
use avf_sim::{simulate, MachineConfig};

fn r(n: u8) -> Reg {
    Reg::of(n)
}

/// An infinite loop of independent single-cycle ALU ops.
fn independent_alu_loop() -> Program {
    let mut b = ProgramBuilder::new("alu-loop");
    b.addi(r(1), Reg::ZERO, 1);
    let top = b.here();
    for i in 2..10u8 {
        b.addi(r(i), r(1), i16::from(i));
    }
    b.bne(r(1), top);
    b.build().unwrap()
}

/// A serial dependence chain (each op needs the previous result).
fn dependent_chain_loop() -> Program {
    let mut b = ProgramBuilder::new("chain-loop");
    b.addi(r(1), Reg::ZERO, 1);
    let top = b.here();
    for _ in 0..8 {
        b.alu_ri(Opcode::Add, r(2), r(2), 1);
    }
    b.bne(r(1), top);
    b.build().unwrap()
}

/// A pointer-chasing loop over a footprint far larger than the L2.
fn pointer_chase_loop(footprint: u64, stride: u64) -> Program {
    let n = (footprint / stride) as usize;
    let mut data = DataSegment::zeroed(footprint as usize);
    for i in 0..n {
        let next = ((i + 1) % n) as u64 * stride;
        data.put_u64(i * stride as usize, DATA_BASE + next);
    }
    let mut b = ProgramBuilder::new("chase").with_data(data);
    b.load_addr(r(1), DATA_BASE);
    b.addi(r(2), Reg::ZERO, 1);
    let top = b.here();
    b.ldq(r(1), r(1), 0);
    b.bne(r(2), top);
    b.build().unwrap()
}

#[test]
fn independent_alu_reaches_high_ipc() {
    let res = simulate(&MachineConfig::baseline(), &independent_alu_loop(), 50_000);
    assert!(
        res.stats.ipc() > 2.0,
        "independent ALU loop should sustain multi-issue, got IPC {:.2}",
        res.stats.ipc()
    );
    // Perfectly biased loop branch: only predictor warmup may miss.
    assert!(
        res.stats.mispredicts < 20,
        "loop branch should only mispredict during warmup, got {}",
        res.stats.mispredicts
    );
}

#[test]
fn dependent_chain_limits_ipc_to_about_one() {
    let res = simulate(&MachineConfig::baseline(), &dependent_chain_loop(), 20_000);
    let ipc = res.stats.ipc();
    assert!(ipc < 1.4, "serial chain cannot exceed ~1 IPC, got {ipc:.2}");
    assert!(
        ipc > 0.7,
        "back-to-back ALU ops should flow at ~1 IPC, got {ipc:.2}"
    );
}

#[test]
fn chain_has_higher_iq_occupancy_than_independent() {
    let dep = simulate(&MachineConfig::baseline(), &dependent_chain_loop(), 20_000);
    let ind = simulate(&MachineConfig::baseline(), &independent_alu_loop(), 20_000);
    assert!(
        dep.stats.avg_iq_occupancy() > ind.stats.avg_iq_occupancy(),
        "low ILP must raise IQ occupancy (paper IV-A.2): dep {:.2} vs ind {:.2}",
        dep.stats.avg_iq_occupancy(),
        ind.stats.avg_iq_occupancy()
    );
}

#[test]
fn pointer_chase_misses_in_l2_and_fills_rob() {
    // 2 MB footprint, 64 B stride: every access is a new line; the 1 MB
    // direct-mapped L2 cannot hold the working set.
    let program = pointer_chase_loop(2 * 1024 * 1024, 64);
    let res = simulate(&MachineConfig::baseline(), &program, 20_000);
    assert!(
        res.stats.l2_misses > 100,
        "expected L2 misses, got {}",
        res.stats.l2_misses
    );
    assert!(
        res.stats.ipc() < 0.5,
        "serialized L2 misses must crush IPC, got {:.2}",
        res.stats.ipc()
    );
    // In the shadow of the miss the ROB backs up.
    let rob_occ = res.stats.avg_rob_occupancy();
    assert!(
        rob_occ > 10.0,
        "ROB should back up behind misses, got {rob_occ:.1}"
    );
}

#[test]
fn cache_hits_when_footprint_fits() {
    // 16 kB footprint fits in the 64 kB DL1.
    let program = pointer_chase_loop(16 * 1024, 64);
    let res = simulate(&MachineConfig::baseline(), &program, 30_000);
    assert!(
        res.stats.dl1_miss_rate() < 0.05,
        "resident working set should hit, miss rate {:.3}",
        res.stats.dl1_miss_rate()
    );
}

#[test]
fn mispredicted_branches_squash_and_recover() {
    // Alternating taken/not-taken on a data-dependent condition the
    // predictor cannot learn perfectly... a pseudo-random pattern via LCG.
    let mut b = ProgramBuilder::new("branchy");
    b.addi(r(1), Reg::ZERO, 1); // lcg state
    b.load_addr(r(4), 1103515245);
    b.addi(r(5), Reg::ZERO, 12345);
    let top = b.here();
    b.alu_rr(Opcode::Mul, r(1), r(1), r(4));
    b.alu_rr(Opcode::Add, r(1), r(1), r(5));
    b.alu_ri(Opcode::Srl, r(2), r(1), 16);
    b.alu_ri(Opcode::And, r(2), r(2), 1);
    let skip = b.label();
    b.beq(r(2), skip);
    b.addi(r(3), r(3), 1);
    b.bind(skip);
    b.addi(r(6), r(6), 1);
    b.br(top);
    let program = b.build().unwrap();
    let res = simulate(&MachineConfig::baseline(), &program, 30_000);
    assert!(
        res.stats.mispredicts > 100,
        "LCG branch must mispredict sometimes"
    );
    assert!(
        res.stats.wrong_path_fetched > 0,
        "wrong-path work must be modeled"
    );
    assert!(
        res.stats.committed >= 30_000,
        "pipeline must recover and make progress"
    );
}

#[test]
fn nops_are_unace_but_occupy() {
    let mut b = ProgramBuilder::new("nops");
    b.addi(r(1), Reg::ZERO, 1);
    let top = b.here();
    for _ in 0..16 {
        b.nop();
    }
    b.bne(r(1), top);
    let program = b.build().unwrap();
    let res = simulate(&MachineConfig::baseline(), &program, 20_000);
    // Nearly every committed instruction is a NOP -> dead fraction high.
    assert!(res.report.deadness().dead_fraction() > 0.9);
    // ROB AVF must be tiny even though the ROB was occupied.
    assert!(res.report.avf(Structure::Rob) < 0.1);
}

#[test]
fn stored_results_make_producers_ace() {
    // Loop: compute, store, load back (stores are read -> everything live).
    let mut data = DataSegment::zeroed(4096);
    data.put_u64(0, 7);
    let mut b = ProgramBuilder::new("ace-loop").with_data(data);
    b.load_addr(r(10), DATA_BASE);
    b.addi(r(1), Reg::ZERO, 1);
    let top = b.here();
    b.ldq(r(2), r(10), 0);
    b.alu_ri(Opcode::Add, r(2), r(2), 3);
    b.stq(r(2), r(10), 0);
    b.bne(r(1), top);
    let program = b.build().unwrap();
    let res = simulate(&MachineConfig::baseline(), &program, 20_000);
    assert!(
        res.report.deadness().dead_fraction() < 0.05,
        "store-fed chain must be ACE, dead fraction {:.3}",
        res.report.deadness().dead_fraction()
    );
    assert!(res.report.avf(Structure::Rob) > 0.0);
    assert!(res.report.avf(Structure::SqData) > 0.0);
}

#[test]
fn simulation_is_deterministic() {
    let program = pointer_chase_loop(256 * 1024, 64);
    let a = simulate(&MachineConfig::baseline(), &program, 10_000);
    let b = simulate(&MachineConfig::baseline(), &program, 10_000);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    for s in Structure::ALL {
        assert_eq!(a.report.avf(s).to_bits(), b.report.avf(s).to_bits(), "{s}");
    }
}

#[test]
fn avfs_are_valid_probabilities_and_ser_consistent() {
    let program = pointer_chase_loop(2 * 1024 * 1024, 64);
    let res = simulate(&MachineConfig::baseline(), &program, 20_000);
    for s in Structure::ALL {
        let v = res.report.avf(s);
        assert!((0.0..=1.0).contains(&v), "{s} AVF {v}");
    }
    let ser = res.report.ser(&FaultRates::baseline());
    assert!(ser.qs() <= 1.0 && ser.qs() >= 0.0);
    assert!(ser.overall() <= 1.0);
}

#[test]
fn config_a_differs_from_baseline() {
    // 1.5 MB chain: bigger than the baseline's 1 MB L2, smaller than
    // Config A's 2 MB. Traverse it ~2.5 times so reuse is possible.
    let program = pointer_chase_loop(1536 * 1024, 64);
    let base = simulate(&MachineConfig::baseline(), &program, 120_000);
    let cfg_a = simulate(&MachineConfig::config_a(), &program, 120_000);
    // The 2 MB L2 of Config A holds the whole footprint after warmup.
    assert!(
        cfg_a.stats.l2_misses < base.stats.l2_misses,
        "Config A's larger L2 must miss less: {} vs {}",
        cfg_a.stats.l2_misses,
        base.stats.l2_misses
    );
}

#[test]
fn halt_ends_simulation_early() {
    let mut b = ProgramBuilder::new("short");
    b.addi(r(1), Reg::ZERO, 5);
    b.stq(r(1), r(2), 0);
    b.halt();
    let program = b.build().unwrap();
    let res = simulate(&MachineConfig::baseline(), &program, 1_000_000);
    assert_eq!(res.stats.committed, 3);
}

#[test]
fn hvf_upper_bounds_avf_for_queueing_structures() {
    // Sridharan's HVF counts raw occupancy; AVF additionally requires the
    // occupant to be ACE. The inequality must hold on any program,
    // including one with plenty of dead code and mispredicts.
    let cfg = MachineConfig::baseline();
    for program in [
        pointer_chase_loop(2 * 1024 * 1024, 64),
        dependent_chain_loop(),
        independent_alu_loop(),
    ] {
        let res = simulate(&cfg, &program, 30_000);
        let eps = 1e-9;
        assert!(
            res.stats.rob_hvf(cfg.rob_entries) + eps >= res.report.avf(Structure::Rob),
            "{}: ROB HVF {:.3} < AVF {:.3}",
            program.name(),
            res.stats.rob_hvf(cfg.rob_entries),
            res.report.avf(Structure::Rob)
        );
        assert!(res.stats.iq_hvf(cfg.iq_entries) + eps >= res.report.avf(Structure::Iq));
        assert!(res.stats.lq_hvf(cfg.lq_entries) + eps >= res.report.avf(Structure::LqTag));
        assert!(res.stats.sq_hvf(cfg.sq_entries) + eps >= res.report.avf(Structure::SqTag));
    }
}

#[test]
fn dtlb_misses_on_wide_footprint() {
    // 512 pages touched with 8 kB stride on a 256-entry DTLB: every access
    // in steady state misses.
    let program = pointer_chase_loop(4 * 1024 * 1024, 8192);
    let res = simulate(&MachineConfig::baseline(), &program, 5_000);
    assert!(
        res.stats.dtlb_misses > 100,
        "got {} DTLB misses",
        res.stats.dtlb_misses
    );
}
