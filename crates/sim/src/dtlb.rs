//! Fully-associative data TLB timing model with LRU replacement.

use avf_isa::wire::{WireError, WireReader, WireWriter};

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbResult {
    /// Whether the translation was resident.
    pub hit: bool,
    /// Virtual page number evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// Fully-associative TLB (timing state only).
#[derive(Debug, Clone)]
pub struct Dtlb {
    entries: Vec<(u64, u64)>, // (vpn, lru tick)
    capacity: usize,
    page_shift: u32,
    tick: u64,
    /// Total translations.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// VPN whose entry carries an injected fault (tag corruption).
    poisoned: Option<u64>,
    /// Whether a translation consumed the poisoned entry.
    tripped: bool,
}

impl Dtlb {
    /// Creates a TLB with `capacity` entries for `page_bytes`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, page_bytes: u64) -> Dtlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Dtlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
            accesses: 0,
            misses: 0,
            poisoned: None,
            tripped: false,
        }
    }

    /// Virtual page number of `addr`.
    #[inline]
    #[must_use]
    pub fn vpn(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Translates `addr`, filling on a miss.
    pub fn translate(&mut self, addr: u64) -> TlbResult {
        self.tick += 1;
        self.accesses += 1;
        let vpn = self.vpn(addr);
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.tick;
            if self.poisoned == Some(vpn) {
                // Consuming a tag-corrupted entry yields a wrong
                // translation: the injection engine classifies this as a
                // detected unrecoverable error.
                self.tripped = true;
            }
            return TlbResult {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .expect("non-empty");
            let victim = self.entries.swap_remove(idx).0;
            if self.poisoned == Some(victim) {
                // The fault left the machine with the entry: refills are
                // clean.
                self.poisoned = None;
            }
            evicted = Some(victim);
        }
        self.entries.push((vpn, self.tick));
        TlbResult {
            hit: false,
            evicted,
        }
    }

    /// Injects a tag fault into the `idx`-th resident entry, returning
    /// its VPN, or `None` if that entry slot is vacant. A later
    /// [`Dtlb::translate`] hit on the entry sets the tripped flag; an
    /// eviction clears the fault.
    pub fn poison_entry(&mut self, idx: usize) -> Option<u64> {
        let vpn = self.entries.get(idx)?.0;
        self.poisoned = Some(vpn);
        self.tripped = false;
        Some(vpn)
    }

    /// Whether a translation consumed a poisoned entry since injection.
    #[must_use]
    pub fn poison_tripped(&self) -> bool {
        self.tripped
    }

    /// Number of resident translations.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Miss rate over the run so far.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes the TLB state for checkpoint snapshots.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.usize(self.entries.len());
        for &(vpn, lru) in &self.entries {
            w.u64(vpn);
            w.u64(lru);
        }
        w.u64(self.tick);
        w.u64(self.accesses);
        w.u64(self.misses);
        w.opt_u64(self.poisoned);
        w.bool(self.tripped);
    }

    /// Decodes state written by [`Dtlb::encode`] for a TLB of `capacity`
    /// entries over `page_bytes`-byte pages.
    pub(crate) fn decode(
        r: &mut WireReader<'_>,
        capacity: usize,
        page_bytes: u64,
    ) -> Result<Dtlb, WireError> {
        let mut tlb = Dtlb::new(capacity, page_bytes);
        let n = r.seq_len(8 + 8)?;
        if n > capacity {
            return Err(WireError::Invalid("TLB residency exceeds capacity"));
        }
        for _ in 0..n {
            let vpn = r.u64()?;
            let lru = r.u64()?;
            tlb.entries.push((vpn, lru));
        }
        tlb.tick = r.u64()?;
        tlb.accesses = r.u64()?;
        tlb.misses = r.u64()?;
        tlb.poisoned = r.opt_u64()?;
        tlb.tripped = r.bool()?;
        Ok(tlb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Dtlb::new(4, 8192);
        assert!(!t.translate(0x0).hit);
        assert!(t.translate(0x1FFF).hit, "same 8 kB page");
        assert!(!t.translate(0x2000).hit, "next page");
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = Dtlb::new(2, 8192);
        t.translate(0x0000); // page 0
        t.translate(0x2000); // page 1
        t.translate(0x0000); // page 0 now MRU
        let r = t.translate(0x4000); // page 2 evicts page 1
        assert_eq!(r.evicted, Some(1));
        assert_eq!(t.resident(), 2);
    }

    #[test]
    fn covering_working_set_has_no_steady_state_misses() {
        let mut t = Dtlb::new(8, 8192);
        for _ in 0..4 {
            for p in 0..8u64 {
                t.translate(p * 8192);
            }
        }
        assert_eq!(t.misses, 8, "only compulsory misses");
    }

    #[test]
    fn vpn_computation() {
        let t = Dtlb::new(4, 8192);
        assert_eq!(t.vpn(0x0), 0);
        assert_eq!(t.vpn(8192), 1);
        assert_eq!(t.vpn(8192 * 3 + 7), 3);
    }
}
