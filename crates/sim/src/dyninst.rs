use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_isa::{Inst, Outcome, Program};

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Dispatched, waiting in the issue queue.
    InIq,
    /// Issued, executing in a function unit or the memory system.
    Executing,
    /// Finished execution, waiting to commit.
    Complete,
}

/// One in-flight dynamic instruction.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Fetch sequence number (program-order identity).
    pub seq: u64,
    /// Instruction index (PC).
    pub pc: u32,
    /// Static instruction.
    pub inst: Inst,
    /// Fetched down a mispredicted path; will be squashed.
    pub wrong_path: bool,
    /// Right-path branch whose prediction was wrong (triggers recovery when
    /// it executes).
    pub mispredicted: bool,
    /// Direction predicted at fetch (branches only).
    pub predicted_taken: bool,
    /// Functional outcome from the oracle (right-path only).
    pub outcome: Option<Outcome>,
    /// Current stage.
    pub stage: Stage,
    /// Cycle of dispatch into ROB/IQ.
    pub dispatch_cycle: u64,
    /// Cycle of issue out of the IQ.
    pub issue_cycle: u64,
    /// Cycle execution finishes (data back for loads).
    pub complete_cycle: u64,
    /// For loads: cycle the data returned and the LQ data field became ACE.
    pub data_return_cycle: u64,
    /// Renamed destination physical register.
    pub dest_preg: Option<u32>,
    /// Previous speculative mapping of the destination (freed at commit).
    pub prev_preg: Option<u32>,
    /// Renamed source physical registers, aligned with
    /// [`Inst::src_regs`]'s slots.
    pub src_pregs: [Option<u32>; 2],
    /// Source-operand values the architectural oracle read when this
    /// instruction executed at fetch, aligned with [`Inst::src_regs`]'s
    /// slots (0 for empty slots and for wrong-path work, which never
    /// executes). The micro-op replay oracle re-executes corrupted
    /// entries from these.
    pub src_vals: [u64; 2],
}

impl DynInst {
    /// Creates a freshly-fetched instruction.
    #[must_use]
    pub fn new(seq: u64, pc: u32, inst: Inst) -> DynInst {
        DynInst {
            seq,
            pc,
            inst,
            wrong_path: false,
            mispredicted: false,
            predicted_taken: false,
            outcome: None,
            stage: Stage::InIq,
            dispatch_cycle: 0,
            issue_cycle: 0,
            complete_cycle: 0,
            data_return_cycle: 0,
            dest_preg: None,
            prev_preg: None,
            src_pregs: [None; 2],
            src_vals: [0; 2],
        }
    }

    /// Whether this instruction has finished executing by `cycle`.
    #[must_use]
    pub fn is_complete(&self, cycle: u64) -> bool {
        self.stage == Stage::Complete && self.complete_cycle <= cycle
    }

    /// Serializes this dynamic instruction for checkpoint snapshots.
    ///
    /// The static `inst` is not written: every fetched instruction —
    /// wrong-path included — comes from the program text at `pc`, so the
    /// decoder re-fetches it from the same program.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seq);
        w.u32(self.pc);
        w.bool(self.wrong_path);
        w.bool(self.mispredicted);
        w.bool(self.predicted_taken);
        match &self.outcome {
            None => w.u8(0),
            Some(o) => {
                w.u8(1);
                o.encode(w);
            }
        }
        w.u8(match self.stage {
            Stage::InIq => 0,
            Stage::Executing => 1,
            Stage::Complete => 2,
        });
        w.u64(self.dispatch_cycle);
        w.u64(self.issue_cycle);
        w.u64(self.complete_cycle);
        w.u64(self.data_return_cycle);
        w.opt_u32(self.dest_preg);
        w.opt_u32(self.prev_preg);
        w.opt_u32(self.src_pregs[0]);
        w.opt_u32(self.src_pregs[1]);
        w.u64(self.src_vals[0]);
        w.u64(self.src_vals[1]);
    }

    /// Decodes an instruction written by [`DynInst::encode`], re-fetching
    /// the static instruction from `program`.
    pub(crate) fn decode(r: &mut WireReader<'_>, program: &Program) -> Result<DynInst, WireError> {
        let seq = r.u64()?;
        let pc = r.u32()?;
        let inst = *program
            .fetch(pc)
            .ok_or(WireError::Invalid("snapshot pc outside program text"))?;
        Ok(DynInst {
            seq,
            pc,
            inst,
            wrong_path: r.bool()?,
            mispredicted: r.bool()?,
            predicted_taken: r.bool()?,
            outcome: match r.u8()? {
                0 => None,
                1 => Some(Outcome::decode(r)?),
                t => return Err(WireError::BadTag(t)),
            },
            stage: match r.u8()? {
                0 => Stage::InIq,
                1 => Stage::Executing,
                2 => Stage::Complete,
                t => return Err(WireError::BadTag(t)),
            },
            dispatch_cycle: r.u64()?,
            issue_cycle: r.u64()?,
            complete_cycle: r.u64()?,
            data_return_cycle: r.u64()?,
            dest_preg: r.opt_u32()?,
            prev_preg: r.opt_u32()?,
            src_pregs: [r.opt_u32()?, r.opt_u32()?],
            src_vals: [r.u64()?, r.u64()?],
        })
    }
}

/// Field of the 32-bit IQ entry encoding (Table I) a flipped bit lands
/// in: one byte of opcode, one byte per source-operand tag, one byte of
/// destination tag. The replay oracle re-decodes the corrupted byte
/// back into a (possibly different) micro-op instead of trapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IqField {
    /// Opcode byte; payload is the bit within the byte.
    Opcode(u8),
    /// Source-operand physical-register tag; payload is the
    /// [`avf_isa::Inst::src_regs`] slot and the bit within the byte.
    SrcTag(usize, u8),
    /// Destination physical-register tag; payload is the bit within
    /// the byte.
    DestTag(u8),
}

/// Maps a bit of the 32-bit IQ entry to its field.
///
/// # Panics
///
/// Panics if `bit` is outside the 32-bit entry.
pub(crate) fn iq_field_of(bit: u32) -> IqField {
    let b = (bit % 8) as u8;
    match bit / 8 {
        0 => IqField::Opcode(b),
        1 => IqField::SrcTag(0, b),
        2 => IqField::SrcTag(1, b),
        3 => IqField::DestTag(b),
        _ => panic!("bit {bit} outside the 32-bit IQ entry"),
    }
}

/// Field of the ROB entry's 12-bit control half (Table I's 76-bit entry
/// minus the 64-bit result field) a flipped bit lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RobControlField {
    /// Destination physical-register tag (8 bits); payload is the bit
    /// within the tag.
    DestTag(u8),
    /// Completion-status / stage encoding (2 bits); payload is the bit
    /// within the code.
    Status(u8),
    /// Speculation bookkeeping (wrong-path, mispredict-pending).
    PathFlag,
}

/// Maps a bit of the control half (`0..12`, i.e. entry bit minus 64) to
/// its field.
///
/// # Panics
///
/// Panics if `ctl_bit` is outside the 12-bit control half.
pub(crate) fn rob_control_field_of(ctl_bit: u32) -> RobControlField {
    match ctl_bit {
        0..=7 => RobControlField::DestTag(ctl_bit as u8),
        8..=9 => RobControlField::Status((ctl_bit - 8) as u8),
        10..=11 => RobControlField::PathFlag,
        _ => panic!("bit {ctl_bit} outside the 12-bit ROB control half"),
    }
}
