use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_isa::{Inst, Outcome, Program};

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Dispatched, waiting in the issue queue.
    InIq,
    /// Issued, executing in a function unit or the memory system.
    Executing,
    /// Finished execution, waiting to commit.
    Complete,
}

/// One in-flight dynamic instruction.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Fetch sequence number (program-order identity).
    pub seq: u64,
    /// Instruction index (PC).
    pub pc: u32,
    /// Static instruction.
    pub inst: Inst,
    /// Fetched down a mispredicted path; will be squashed.
    pub wrong_path: bool,
    /// Right-path branch whose prediction was wrong (triggers recovery when
    /// it executes).
    pub mispredicted: bool,
    /// Direction predicted at fetch (branches only).
    pub predicted_taken: bool,
    /// Functional outcome from the oracle (right-path only).
    pub outcome: Option<Outcome>,
    /// Current stage.
    pub stage: Stage,
    /// Cycle of dispatch into ROB/IQ.
    pub dispatch_cycle: u64,
    /// Cycle of issue out of the IQ.
    pub issue_cycle: u64,
    /// Cycle execution finishes (data back for loads).
    pub complete_cycle: u64,
    /// For loads: cycle the data returned and the LQ data field became ACE.
    pub data_return_cycle: u64,
    /// Renamed destination physical register.
    pub dest_preg: Option<u32>,
    /// Previous speculative mapping of the destination (freed at commit).
    pub prev_preg: Option<u32>,
    /// Renamed source physical registers, aligned with
    /// [`Inst::src_regs`]'s slots.
    pub src_pregs: [Option<u32>; 2],
}

impl DynInst {
    /// Creates a freshly-fetched instruction.
    #[must_use]
    pub fn new(seq: u64, pc: u32, inst: Inst) -> DynInst {
        DynInst {
            seq,
            pc,
            inst,
            wrong_path: false,
            mispredicted: false,
            predicted_taken: false,
            outcome: None,
            stage: Stage::InIq,
            dispatch_cycle: 0,
            issue_cycle: 0,
            complete_cycle: 0,
            data_return_cycle: 0,
            dest_preg: None,
            prev_preg: None,
            src_pregs: [None; 2],
        }
    }

    /// Whether this instruction has finished executing by `cycle`.
    #[must_use]
    pub fn is_complete(&self, cycle: u64) -> bool {
        self.stage == Stage::Complete && self.complete_cycle <= cycle
    }

    /// Serializes this dynamic instruction for checkpoint snapshots.
    ///
    /// The static `inst` is not written: every fetched instruction —
    /// wrong-path included — comes from the program text at `pc`, so the
    /// decoder re-fetches it from the same program.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seq);
        w.u32(self.pc);
        w.bool(self.wrong_path);
        w.bool(self.mispredicted);
        w.bool(self.predicted_taken);
        match &self.outcome {
            None => w.u8(0),
            Some(o) => {
                w.u8(1);
                o.encode(w);
            }
        }
        w.u8(match self.stage {
            Stage::InIq => 0,
            Stage::Executing => 1,
            Stage::Complete => 2,
        });
        w.u64(self.dispatch_cycle);
        w.u64(self.issue_cycle);
        w.u64(self.complete_cycle);
        w.u64(self.data_return_cycle);
        w.opt_u32(self.dest_preg);
        w.opt_u32(self.prev_preg);
        w.opt_u32(self.src_pregs[0]);
        w.opt_u32(self.src_pregs[1]);
    }

    /// Decodes an instruction written by [`DynInst::encode`], re-fetching
    /// the static instruction from `program`.
    pub(crate) fn decode(r: &mut WireReader<'_>, program: &Program) -> Result<DynInst, WireError> {
        let seq = r.u64()?;
        let pc = r.u32()?;
        let inst = *program
            .fetch(pc)
            .ok_or(WireError::Invalid("snapshot pc outside program text"))?;
        Ok(DynInst {
            seq,
            pc,
            inst,
            wrong_path: r.bool()?,
            mispredicted: r.bool()?,
            predicted_taken: r.bool()?,
            outcome: match r.u8()? {
                0 => None,
                1 => Some(Outcome::decode(r)?),
                t => return Err(WireError::BadTag(t)),
            },
            stage: match r.u8()? {
                0 => Stage::InIq,
                1 => Stage::Executing,
                2 => Stage::Complete,
                t => return Err(WireError::BadTag(t)),
            },
            dispatch_cycle: r.u64()?,
            issue_cycle: r.u64()?,
            complete_cycle: r.u64()?,
            data_return_cycle: r.u64()?,
            dest_preg: r.opt_u32()?,
            prev_preg: r.opt_u32()?,
            src_pregs: [r.opt_u32()?, r.opt_u32()?],
        })
    }
}
