use avf_isa::{Inst, Outcome};

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Dispatched, waiting in the issue queue.
    InIq,
    /// Issued, executing in a function unit or the memory system.
    Executing,
    /// Finished execution, waiting to commit.
    Complete,
}

/// One in-flight dynamic instruction.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Fetch sequence number (program-order identity).
    pub seq: u64,
    /// Instruction index (PC).
    pub pc: u32,
    /// Static instruction.
    pub inst: Inst,
    /// Fetched down a mispredicted path; will be squashed.
    pub wrong_path: bool,
    /// Right-path branch whose prediction was wrong (triggers recovery when
    /// it executes).
    pub mispredicted: bool,
    /// Direction predicted at fetch (branches only).
    pub predicted_taken: bool,
    /// Functional outcome from the oracle (right-path only).
    pub outcome: Option<Outcome>,
    /// Current stage.
    pub stage: Stage,
    /// Cycle of dispatch into ROB/IQ.
    pub dispatch_cycle: u64,
    /// Cycle of issue out of the IQ.
    pub issue_cycle: u64,
    /// Cycle execution finishes (data back for loads).
    pub complete_cycle: u64,
    /// For loads: cycle the data returned and the LQ data field became ACE.
    pub data_return_cycle: u64,
    /// Renamed destination physical register.
    pub dest_preg: Option<u32>,
    /// Previous speculative mapping of the destination (freed at commit).
    pub prev_preg: Option<u32>,
    /// Renamed source physical registers, aligned with
    /// [`Inst::src_regs`]'s slots.
    pub src_pregs: [Option<u32>; 2],
}

impl DynInst {
    /// Creates a freshly-fetched instruction.
    #[must_use]
    pub fn new(seq: u64, pc: u32, inst: Inst) -> DynInst {
        DynInst {
            seq,
            pc,
            inst,
            wrong_path: false,
            mispredicted: false,
            predicted_taken: false,
            outcome: None,
            stage: Stage::InIq,
            dispatch_cycle: 0,
            issue_cycle: 0,
            complete_cycle: 0,
            data_return_cycle: 0,
            dest_preg: None,
            prev_preg: None,
            src_pregs: [None; 2],
        }
    }

    /// Whether this instruction has finished executing by `cycle`.
    #[must_use]
    pub fn is_complete(&self, cycle: u64) -> bool {
        self.stage == Stage::Complete && self.complete_cycle <= cycle
    }
}
