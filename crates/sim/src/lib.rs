//! # avf-sim
//!
//! An execution-driven, cycle-level out-of-order processor simulator with
//! integrated ACE analysis — the reproduction's stand-in for the
//! SimAlpha/SimSoda stack used by the AVF stressmark paper (Nair, John &
//! Eeckhout, MICRO 2010).
//!
//! The modeled machine is the paper's Table I Alpha-21264-like integer
//! pipeline: 4-wide fetch/dispatch/issue/commit, a 20-entry issue queue,
//! 80-entry ROB, 32-entry load and store queues, 80 physical registers,
//! four 1-cycle ALUs plus a 7-cycle multiplier, at most two memory issues
//! per cycle, a hybrid branch predictor with 7-cycle misprediction penalty,
//! 64 kB L1 caches, a 256-entry DTLB and a 1 MB direct-mapped L2.
//!
//! Structural properties the stressmark exploits are modeled faithfully:
//! occupancy interdependence between ROB/IQ/LQ/SQ/FU, rename-register
//! turnaround, the L2-miss shadow, and the two-memory-ops-per-cycle issue
//! restriction (paper Section III).
//!
//! ## Example
//!
//! ```
//! use avf_isa::{ProgramBuilder, Reg};
//! use avf_sim::{simulate, MachineConfig};
//! use avf_ace::FaultRates;
//!
//! let r1 = Reg::new(1)?;
//! let mut b = ProgramBuilder::new("spin");
//! b.addi(r1, Reg::ZERO, 100);
//! let top = b.here();
//! b.subi(r1, r1, 1);
//! b.bne(r1, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let result = simulate(&MachineConfig::baseline(), &program, 10_000);
//! assert!(result.stats.committed > 0);
//! let ser = result.report.ser(&FaultRates::baseline());
//! assert!(ser.qs() >= 0.0);
//! # Ok::<(), avf_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod caches;
mod config;
mod dtlb;
mod dyninst;
pub mod inject;
mod pipeline;
mod regfile;
mod stats;

pub use bpred::BranchPredictor;
pub use caches::{AccessResult, Cache};
pub use config::{BpredConfig, CacheConfig, MachineConfig};
pub use dtlb::{Dtlb, TlbResult};
pub use inject::{
    golden_run, golden_run_checkpointed, golden_run_with_evidence, CheckpointStore,
    DecodedCheckpoints, FaultModel, FlipEffect, GoldenRun, InjectionSim, InjectionTarget,
    MaskReason, PipelineSnapshot, PruneEvidence, RunEnd, PRUNE_WINDOW,
};
pub use pipeline::SimResult;
pub use stats::SimStats;

use avf_ace::AceConfig;
use avf_isa::Program;

/// Simulates `program` on `config` until `max_instructions` commit (or the
/// program halts), returning the AVF report and timing statistics.
///
/// This is the primary entry point used by the stressmark search loop and
/// the workload studies.
#[must_use]
pub fn simulate(config: &MachineConfig, program: &Program, max_instructions: u64) -> SimResult {
    simulate_with(config, program, max_instructions, AceConfig::default())
}

/// [`simulate`] with explicit [`AceConfig`] (e.g. to enable the DTLB CAM
/// Hamming-distance refinement).
#[must_use]
pub fn simulate_with(
    config: &MachineConfig,
    program: &Program,
    max_instructions: u64,
    ace: AceConfig,
) -> SimResult {
    pipeline::Pipeline::new(config, program, ace).run(max_instructions)
}
