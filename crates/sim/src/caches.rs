//! Set-associative cache timing model with LRU replacement.
//!
//! The timing model tracks only tags, valid and dirty bits — data values
//! come from the functional oracle. ACE lifetime events are emitted by the
//! pipeline, which consults the [`AccessResult`]s returned here.

use avf_isa::wire::{WireError, WireReader, WireWriter};

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// What happened on a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Line base address of an evicted victim, with its dirty state.
    pub victim: Option<(u64, bool)>,
}

/// One level of set-associative cache (timing state only).
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    tick: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl Cache {
    /// Builds the timing state for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        Cache {
            lines: vec![Line::default(); sets * ways],
            sets,
            ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Line base address containing `addr`.
    #[inline]
    #[must_use]
    pub fn line_base(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.sets.trailing_zeros()
    }

    fn rebuild_addr(&self, tag: u64, set: usize) -> u64 {
        ((tag << self.sets.trailing_zeros()) | set as u64) << self.line_shift
    }

    /// Base address of the line held in the `idx`-th physical line slot
    /// (set-major order), or `None` if the slot is invalid or out of
    /// range. Used by the fault-injection engine to sample resident
    /// lines.
    #[must_use]
    pub fn valid_line(&self, idx: usize) -> Option<u64> {
        let line = self.lines.get(idx)?;
        if !line.valid {
            return None;
        }
        let set = idx / self.ways;
        Some(self.rebuild_addr(line.tag, set))
    }

    /// Looks up `addr` without changing state (no LRU update, no fill).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`, allocating on miss; `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        self.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= is_write;
                return AccessResult {
                    hit: true,
                    victim: None,
                };
            }
        }
        self.misses += 1;
        // Choose victim: invalid way first, else least-recently used.
        let mut victim_way = 0;
        let mut victim_lru = u64::MAX;
        for way in 0..self.ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim_way = way;
                break;
            }
            if line.lru < victim_lru {
                victim_lru = line.lru;
                victim_way = way;
            }
        }
        let victim_line = self.lines[base + victim_way];
        let victim = victim_line
            .valid
            .then(|| (self.rebuild_addr(victim_line.tag, set), victim_line.dirty));
        self.lines[base + victim_way] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        AccessResult { hit: false, victim }
    }

    /// Marks the line containing `addr` dirty if present (used for
    /// writebacks arriving from an upper level).
    pub fn mark_dirty(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.dirty = true;
                return;
            }
        }
    }

    /// Miss rate over the run so far.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes the timing state for checkpoint snapshots. Only valid
    /// lines are written (early in a run most of the array is invalid),
    /// so checkpoints stay small.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.u64(self.tick);
        w.u64(self.accesses);
        w.u64(self.misses);
        let valid = self.lines.iter().filter(|l| l.valid).count();
        w.usize(valid);
        for (idx, line) in self.lines.iter().enumerate().filter(|(_, l)| l.valid) {
            w.u32(idx as u32);
            w.u64(line.tag);
            w.bool(line.dirty);
            w.u64(line.lru);
        }
    }

    /// Decodes state written by [`Cache::encode`] onto the geometry of
    /// `cfg` (which must match the encoding configuration).
    pub(crate) fn decode(r: &mut WireReader<'_>, cfg: &CacheConfig) -> Result<Cache, WireError> {
        let mut c = Cache::new(cfg);
        c.tick = r.u64()?;
        c.accesses = r.u64()?;
        c.misses = r.u64()?;
        let valid = r.seq_len(4 + 8 + 1 + 8)?;
        for _ in 0..valid {
            let idx = r.u32()? as usize;
            let slot = c
                .lines
                .get_mut(idx)
                .ok_or(WireError::Invalid("cache line index out of geometry"))?;
            *slot = Line {
                tag: r.u64()?,
                valid: true,
                dirty: r.bool()?,
                lru: r.u64()?,
            };
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same line");
        assert_eq!(c.misses, 1);
        assert_eq!(c.accesses, 3);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines * 64 B).
        let a = 0x0000;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        let r = c.access(d, false);
        assert!(!r.hit);
        assert_eq!(r.victim, Some((b, false)), "b was LRU");
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.access(0x0, true);
        c.access(4 * 64, false);
        let r = c.access(8 * 64, false);
        assert_eq!(r.victim, Some((0x0, true)));
    }

    #[test]
    fn mark_dirty_on_present_line() {
        let mut c = small();
        c.access(0x0, false);
        c.mark_dirty(0x0);
        c.access(4 * 64, false);
        let r = c.access(8 * 64, false);
        assert_eq!(r.victim, Some((0x0, true)));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(&CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        });
        c.access(0x0, false);
        let r = c.access(256, false); // same set in a 4-set direct-mapped cache
        assert_eq!(r.victim, Some((0x0, false)));
    }

    #[test]
    fn line_base_masks_offset() {
        let c = small();
        assert_eq!(c.line_base(0x1234), 0x1200);
    }
}
