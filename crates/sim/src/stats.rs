use avf_isa::wire::{WireError, WireReader, WireWriter};

/// Timing statistics of one simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed memory operations.
    pub committed_mem_ops: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted (right-path) branches.
    pub mispredicts: u64,
    /// Instructions fetched on wrong paths.
    pub wrong_path_fetched: u64,
    /// Sum over cycles of ROB occupancy (divide by cycles for the mean).
    pub rob_occ_sum: u64,
    /// Sum over cycles of IQ occupancy.
    pub iq_occ_sum: u64,
    /// Sum over cycles of LQ occupancy.
    pub lq_occ_sum: u64,
    /// Sum over cycles of SQ occupancy.
    pub sq_occ_sum: u64,
    /// DL1 accesses / misses.
    pub dl1_accesses: u64,
    /// DL1 misses.
    pub dl1_misses: u64,
    /// L2 accesses (data side).
    pub l2_accesses: u64,
    /// L2 misses (data side).
    pub l2_misses: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// L1 I-cache misses.
    pub l1i_misses: u64,
}

impl SimStats {
    /// Serializes the counters for checkpoint snapshots.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        for v in [
            self.cycles,
            self.committed,
            self.committed_mem_ops,
            self.branches,
            self.mispredicts,
            self.wrong_path_fetched,
            self.rob_occ_sum,
            self.iq_occ_sum,
            self.lq_occ_sum,
            self.sq_occ_sum,
            self.dl1_accesses,
            self.dl1_misses,
            self.l2_accesses,
            self.l2_misses,
            self.dtlb_misses,
            self.l1i_misses,
        ] {
            w.u64(v);
        }
    }

    /// Decodes counters written by [`SimStats::encode`].
    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<SimStats, WireError> {
        Ok(SimStats {
            cycles: r.u64()?,
            committed: r.u64()?,
            committed_mem_ops: r.u64()?,
            branches: r.u64()?,
            mispredicts: r.u64()?,
            wrong_path_fetched: r.u64()?,
            rob_occ_sum: r.u64()?,
            iq_occ_sum: r.u64()?,
            lq_occ_sum: r.u64()?,
            sq_occ_sum: r.u64()?,
            dl1_accesses: r.u64()?,
            dl1_misses: r.u64()?,
            l2_accesses: r.u64()?,
            l2_misses: r.u64()?,
            dtlb_misses: r.u64()?,
            l1i_misses: r.u64()?,
        })
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean ROB occupancy in entries.
    #[must_use]
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occ_sum as f64 / self.cycles as f64
        }
    }

    /// Mean IQ occupancy in entries.
    #[must_use]
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occ_sum as f64 / self.cycles as f64
        }
    }

    /// Mean LQ occupancy in entries.
    #[must_use]
    pub fn avg_lq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.lq_occ_sum as f64 / self.cycles as f64
        }
    }

    /// Mean SQ occupancy in entries.
    #[must_use]
    pub fn avg_sq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sq_occ_sum as f64 / self.cycles as f64
        }
    }

    /// DL1 miss rate.
    #[must_use]
    pub fn dl1_miss_rate(&self) -> f64 {
        if self.dl1_accesses == 0 {
            0.0
        } else {
            self.dl1_misses as f64 / self.dl1_accesses as f64
        }
    }

    /// Branch misprediction rate (per committed branch).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Hardware Vulnerability Factor estimate of a queueing structure:
    /// its mean occupancy fraction.
    ///
    /// Sridharan & Kaeli (ISCA'10, discussed in the paper's related work)
    /// bound AVF by occupancy without asking whether the occupants are
    /// ACE; consequently `HVF ≥ AVF` always (squashed and dead occupants
    /// count toward HVF but not AVF). The paper notes HVF still cannot
    /// find the worst case — it inherits the workload dependence the
    /// stressmark removes.
    #[must_use]
    pub fn hvf(&self, occ_sum: u64, entries: usize) -> f64 {
        if self.cycles == 0 || entries == 0 {
            0.0
        } else {
            (occ_sum as f64 / self.cycles as f64 / entries as f64).min(1.0)
        }
    }

    /// HVF of the ROB given its capacity.
    #[must_use]
    pub fn rob_hvf(&self, entries: usize) -> f64 {
        self.hvf(self.rob_occ_sum, entries)
    }

    /// HVF of the issue queue given its capacity.
    #[must_use]
    pub fn iq_hvf(&self, entries: usize) -> f64 {
        self.hvf(self.iq_occ_sum, entries)
    }

    /// HVF of the load queue given its capacity.
    #[must_use]
    pub fn lq_hvf(&self, entries: usize) -> f64 {
        self.hvf(self.lq_occ_sum, entries)
    }

    /// HVF of the store queue given its capacity.
    #[must_use]
    pub fn sq_hvf(&self, entries: usize) -> f64 {
        self.hvf(self.sq_occ_sum, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.dl1_miss_rate(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.avg_rob_occupancy(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            rob_occ_sum: 4000,
            dl1_accesses: 10,
            dl1_misses: 5,
            branches: 8,
            mispredicts: 2,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.avg_rob_occupancy() - 40.0).abs() < 1e-12);
        assert!((s.dl1_miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.25).abs() < 1e-12);
    }
}
