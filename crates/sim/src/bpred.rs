//! Hybrid (tournament) branch predictor modeled after the Alpha 21264's:
//! a global predictor indexed by global history, a two-level local
//! predictor, and a choice predictor that selects between them.

use avf_isa::wire::{WireError, WireReader, WireWriter};

use crate::config::BpredConfig;

fn counter_update(counter: &mut u8, taken: bool, max: u8) {
    if taken {
        if *counter < max {
            *counter += 1;
        }
    } else if *counter > 0 {
        *counter -= 1;
    }
}

/// Tournament branch predictor.
///
/// Predictions are made at fetch; state (including global history) is
/// updated at commit with the resolved outcome, a common simplification
/// that leaves highly-biased branches — the only kind the stressmark
/// generator emits — perfectly predicted.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    global: Vec<u8>,
    local_hist: Vec<u16>,
    local: Vec<u8>,
    choice: Vec<u8>,
    ghr: u32,
    cfg: BpredConfig,
}

impl BranchPredictor {
    /// Creates a predictor with the given geometry, counters initialized to
    /// weakly not-taken.
    #[must_use]
    pub fn new(cfg: BpredConfig) -> BranchPredictor {
        BranchPredictor {
            global: vec![1; cfg.global_entries as usize],
            local_hist: vec![0; cfg.local_hist_entries as usize],
            local: vec![3; cfg.local_counter_entries as usize],
            choice: vec![1; cfg.choice_entries as usize],
            ghr: 0,
            cfg,
        }
    }

    fn global_index(&self) -> usize {
        (self.ghr as usize) & (self.global.len() - 1)
    }

    fn choice_index(&self) -> usize {
        (self.ghr as usize) & (self.choice.len() - 1)
    }

    fn local_hist_index(&self, pc: u32) -> usize {
        (pc as usize) & (self.local_hist.len() - 1)
    }

    fn local_index(&self, pc: u32) -> usize {
        let hist = self.local_hist[self.local_hist_index(pc)];
        (hist as usize) & (self.local.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        let use_global = self.choice[self.choice_index()] >= 2;
        if use_global {
            self.global[self.global_index()] >= 2
        } else {
            self.local[self.local_index(pc)] >= 4
        }
    }

    /// Updates all tables with the resolved direction of the branch at `pc`.
    pub fn update(&mut self, pc: u32, taken: bool) {
        let g_idx = self.global_index();
        let c_idx = self.choice_index();
        let l_idx = self.local_index(pc);
        let g_pred = self.global[g_idx] >= 2;
        let l_pred = self.local[l_idx] >= 4;

        // Choice counter trains toward whichever component was right.
        if g_pred != l_pred {
            counter_update(&mut self.choice[c_idx], g_pred == taken, 3);
        }
        counter_update(&mut self.global[g_idx], taken, 3);
        counter_update(&mut self.local[l_idx], taken, 7);

        let h_idx = self.local_hist_index(pc);
        let mask = (1u16 << self.cfg.local_hist_bits) - 1;
        self.local_hist[h_idx] = ((self.local_hist[h_idx] << 1) | u16::from(taken)) & mask;
        self.ghr = (self.ghr << 1) | u32::from(taken);
    }

    /// Serializes the predictor tables for checkpoint snapshots.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.bytes(&self.global);
        for &h in &self.local_hist {
            w.u16(h);
        }
        w.bytes(&self.local);
        w.bytes(&self.choice);
        w.u32(self.ghr);
    }

    /// Decodes state written by [`BranchPredictor::encode`] for the
    /// geometry of `cfg` (which must match the encoding configuration).
    pub(crate) fn decode(
        r: &mut WireReader<'_>,
        cfg: BpredConfig,
    ) -> Result<BranchPredictor, WireError> {
        let mut p = BranchPredictor::new(cfg);
        let n = p.global.len();
        p.global.copy_from_slice(r.bytes(n)?);
        for h in &mut p.local_hist {
            *h = r.u16()?;
        }
        let n = p.local.len();
        p.local.copy_from_slice(r.bytes(n)?);
        let n = p.choice.len();
        p.choice.copy_from_slice(r.bytes(n)?);
        p.ghr = r.u32()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(BpredConfig::ev6())
    }

    #[test]
    fn learns_always_taken() {
        let mut p = predictor();
        for _ in 0..64 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = predictor();
        for _ in 0..64 {
            p.update(0x40, false);
        }
        assert!(!p.predict(0x40));
    }

    #[test]
    fn learns_loop_pattern_via_local_history() {
        // Pattern: taken 7 times, not-taken once (an 8-iteration loop).
        let mut p = predictor();
        let mut correct = 0;
        let mut total = 0;
        for trip in 0..200 {
            for i in 0..8 {
                let taken = i != 7;
                let pred = p.predict(0x80);
                if trip >= 100 {
                    total += 1;
                    if pred == taken {
                        correct += 1;
                    }
                }
                p.update(0x80, taken);
            }
        }
        // The 10-bit local history covers the 8-long pattern exactly.
        assert!(
            correct as f64 / total as f64 > 0.9,
            "got {correct}/{total} on a learnable loop pattern"
        );
    }

    #[test]
    fn counters_saturate() {
        let mut c = 3u8;
        counter_update(&mut c, true, 3);
        assert_eq!(c, 3);
        let mut c = 0u8;
        counter_update(&mut c, false, 3);
        assert_eq!(c, 0);
    }
}
