//! The cycle loop: fetch → rename/dispatch → issue → execute → commit, with
//! oracle-driven wrong-path modeling and ACE event emission.
//!
//! Instructions are functionally executed by an architectural oracle at
//! fetch (SimpleScalar-style), so branch outcomes and effective addresses
//! are known up front; the pipeline models timing. Because the oracle walks
//! the committed path, every fetched instruction is known to be right- or
//! wrong-path immediately, wrong-path work occupies resources until the
//! mispredicted branch resolves, and only committed instructions reach the
//! ACE analyzer.

use std::collections::VecDeque;

use avf_ace::{AceConfig, AceKind, AvfAnalyzer, InstrRecord, MemRef, Slice, Structure};
use avf_isa::{text_addr, ExecState, Memory, OpClass, Opcode, Program};

use crate::bpred::BranchPredictor;
use crate::caches::Cache;
use crate::config::MachineConfig;
use crate::dtlb::Dtlb;
use crate::dyninst::{DynInst, Stage};
use crate::regfile::PhysRegFile;
use crate::stats::SimStats;

/// Outcome of a simulation: the AVF report and timing statistics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-structure AVF (convert to SER with
    /// [`avf_ace::AvfReport::ser`]).
    pub report: avf_ace::AvfReport,
    /// Timing statistics.
    pub stats: SimStats,
}

#[derive(Debug, Clone, Copy)]
struct Recovery {
    resume_cycle: u64,
    pc: u32,
}

pub(crate) struct Pipeline<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    oracle: ExecState,
    oracle_mem: Memory,
    analyzer: AvfAnalyzer,
    bpred: BranchPredictor,
    l1i: Cache,
    dl1: Cache,
    l2: Cache,
    dtlb: Dtlb,
    rf: PhysRegFile,
    fetch_queue: VecDeque<DynInst>,
    rob: VecDeque<DynInst>,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    cycle: u64,
    seq: u64,
    fetch_pc: u32,
    fetch_stalled_until: u64,
    last_fetch_line: Option<u64>,
    wrong_path_mode: bool,
    recovery: Option<Recovery>,
    fetch_done: bool,
    halted: bool,
    stats: SimStats,
}

impl<'a> Pipeline<'a> {
    pub(crate) fn new(
        cfg: &'a MachineConfig,
        program: &'a Program,
        ace_config: AceConfig,
    ) -> Pipeline<'a> {
        let mut oracle_mem = Memory::new();
        let oracle = ExecState::new(program, &mut oracle_mem);
        let analyzer =
            AvfAnalyzer::with_config(program.name(), cfg.structure_sizes(), ace_config);
        Pipeline {
            cfg,
            program,
            fetch_pc: oracle.pc,
            oracle,
            oracle_mem,
            analyzer,
            bpred: BranchPredictor::new(cfg.bpred.clone()),
            l1i: Cache::new(&cfg.l1i),
            dl1: Cache::new(&cfg.dl1),
            l2: Cache::new(&cfg.l2),
            dtlb: Dtlb::new(cfg.dtlb_entries, cfg.page_bytes),
            rf: PhysRegFile::new(cfg.phys_regs, 64),
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            cycle: 0,
            seq: 0,
            fetch_stalled_until: 0,
            last_fetch_line: None,
            wrong_path_mode: false,
            recovery: None,
            fetch_done: false,
            halted: false,
            stats: SimStats::default(),
        }
    }

    pub(crate) fn run(mut self, max_instructions: u64) -> SimResult {
        // Generous safety net against modeling deadlocks: every committed
        // instruction needs far fewer cycles than a full memory round trip.
        let max_cycles = max_instructions
            .saturating_mul(4 * u64::from(self.cfg.mem_latency))
            .saturating_add(100_000);
        let mut last_commit_cycle = 0u64;
        while !self.halted && self.stats.committed < max_instructions {
            if self.cycle >= max_cycles {
                break;
            }
            let committed_before = self.stats.committed;
            self.commit_stage(max_instructions);
            self.writeback_stage();
            self.issue_stage();
            self.dispatch_stage();
            self.fetch_stage();
            if self.stats.committed > committed_before {
                last_commit_cycle = self.cycle;
            }
            assert!(
                self.cycle - last_commit_cycle
                    < 64 * u64::from(self.cfg.mem_latency) + 100_000,
                "pipeline deadlock at cycle {} (pc {}, rob {}, iq {})",
                self.cycle,
                self.fetch_pc,
                self.rob.len(),
                self.iq_count
            );
            self.stats.rob_occ_sum += self.rob.len() as u64;
            self.stats.iq_occ_sum += self.iq_count as u64;
            self.stats.lq_occ_sum += self.lq_count as u64;
            self.stats.sq_occ_sum += self.sq_count as u64;
            self.cycle += 1;
        }
        self.stats.cycles = self.cycle.max(1);
        for rec in self.rf.drain_lifetimes() {
            self.analyzer.preg_freed(rec);
        }
        let report = self.analyzer.finish(self.stats.cycles);
        SimResult { report, stats: self.stats }
    }

    // ---- commit ---------------------------------------------------------

    fn commit_stage(&mut self, max_instructions: u64) {
        let mut committed = 0;
        while committed < self.cfg.commit_width
            && self.stats.committed < max_instructions
            && self.rob.front().is_some_and(|e| e.is_complete(self.cycle))
        {
            let entry = self.rob.pop_front().expect("checked non-empty");
            debug_assert!(!entry.wrong_path, "wrong-path instruction reached commit");
            self.commit_one(entry);
            committed += 1;
            if self.halted {
                break;
            }
        }
    }

    fn commit_one(&mut self, e: DynInst) {
        let cycle = self.cycle;
        let op = e.inst.op;
        let kind = match op.class() {
            OpClass::Branch => AceKind::Branch,
            OpClass::Store => AceKind::Store,
            OpClass::Nop => AceKind::Nop,
            OpClass::Halt => AceKind::Halt,
            OpClass::IntShort | OpClass::IntLong | OpClass::Load => AceKind::Value,
        };

        let mut rec = InstrRecord::of_kind(kind);
        for (slot, src) in e.inst.src_regs().into_iter().enumerate() {
            rec.srcs[slot] = src.map(|r| r.number());
        }
        rec.dest = e.inst.dest_reg().map(|r| r.number());
        let mem = e.outcome.and_then(|o| {
            o.ea.map(|ea| MemRef { addr: ea, bytes: o.size.map_or(8, |s| s.bytes() as u8) })
        });
        rec.mem = mem;

        // Residency intervals (paper Section IV-A occupancy rules).
        let sizes = self.analyzer.sizes();
        let rob_bits = sizes.rob_entry_bits;
        let iq_bits = sizes.iq_entry_bits;
        let tag_bits = sizes.lsq_tag_bits;
        let data_bits = sizes.lsq_data_bits;
        let fu_bits = sizes.fu_stage_bits;
        rec.residency.push(Slice {
            structure: Structure::Rob,
            start: e.dispatch_cycle,
            end: cycle,
            bits: rob_bits,
        });
        rec.residency.push(Slice {
            structure: Structure::Iq,
            start: e.dispatch_cycle,
            end: e.issue_cycle,
            bits: iq_bits,
        });
        let op_data_bits = match op.access_size() {
            Some(s) => (s.bits() as u32).min(data_bits),
            None => data_bits,
        };
        match op.class() {
            OpClass::Load => {
                rec.residency.push(Slice {
                    structure: Structure::LqTag,
                    start: e.dispatch_cycle,
                    end: cycle,
                    bits: tag_bits,
                });
                // LQ data holds ACE bits only once the fill returns
                // (Section IV-A.1); a 4-byte load leaves half un-ACE.
                rec.residency.push(Slice {
                    structure: Structure::LqData,
                    start: e.data_return_cycle,
                    end: cycle,
                    bits: op_data_bits,
                });
            }
            OpClass::Store => {
                rec.residency.push(Slice {
                    structure: Structure::SqTag,
                    start: e.dispatch_cycle,
                    end: cycle,
                    bits: tag_bits,
                });
                rec.residency.push(Slice {
                    structure: Structure::SqData,
                    start: e.issue_cycle,
                    end: cycle,
                    bits: op_data_bits,
                });
            }
            OpClass::IntShort | OpClass::IntLong => {
                rec.residency.push(Slice {
                    structure: Structure::Fu,
                    start: e.issue_cycle,
                    end: e.complete_cycle,
                    bits: fu_bits,
                });
            }
            _ => {}
        }

        let id = self.analyzer.commit(rec);

        // Register-file read recording and lifetime release.
        for preg in e.src_pregs.into_iter().flatten() {
            self.rf.record_read(preg, id, e.issue_cycle);
        }
        if let (Some(dest), Some(dest_preg), Some(prev)) =
            (rec_dest(&e), e.dest_preg, e.prev_preg)
        {
            let freed = self.rf.commit_def(dest, dest_preg, prev);
            self.analyzer.preg_freed(freed);
        }

        // Commit-time (program-ordered) cache and TLB lifetime events.
        if let Some(m) = mem {
            let vpn = self.dtlb.vpn(m.addr);
            self.analyzer.dtlb_read(vpn, cycle);
            match op.class() {
                OpClass::Load => {
                    self.analyzer.dl1_read(m.addr, u64::from(m.bytes), cycle);
                }
                OpClass::Store => {
                    self.analyzer.dl1_write(m.addr, u64::from(m.bytes), cycle);
                }
                _ => {}
            }
            self.stats.committed_mem_ops += 1;
        }

        match op.class() {
            OpClass::Branch => {
                let taken = e.outcome.map(|o| o.taken).unwrap_or(false);
                self.bpred.update(e.pc, taken);
                self.stats.branches += 1;
                if e.mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
            OpClass::Load => self.lq_count -= 1,
            OpClass::Store => self.sq_count -= 1,
            OpClass::Halt => self.halted = true,
            _ => {}
        }
        self.stats.committed += 1;
    }

    // ---- writeback ------------------------------------------------------

    fn writeback_stage(&mut self) {
        let cycle = self.cycle;
        let mut recover: Option<(u64, u32)> = None;
        for e in self.rob.iter_mut() {
            if e.stage == Stage::Executing && e.complete_cycle <= cycle {
                e.stage = Stage::Complete;
                if let Some(preg) = e.dest_preg {
                    self.rf.set_ready(preg, e.complete_cycle);
                }
                if e.mispredicted && !e.wrong_path {
                    let target = e.outcome.expect("right-path branch has outcome").next_pc;
                    recover = Some((e.seq, target));
                }
            }
        }
        if let Some((branch_seq, target)) = recover {
            self.recover_from(branch_seq, target);
        }
    }

    fn recover_from(&mut self, branch_seq: u64, target: u32) {
        // Squash everything younger than the branch, youngest first.
        while self.rob.back().is_some_and(|e| e.seq > branch_seq) {
            let e = self.rob.pop_back().expect("checked non-empty");
            if e.stage == Stage::InIq {
                self.iq_count -= 1;
            }
            match e.inst.op.class() {
                OpClass::Load => self.lq_count -= 1,
                OpClass::Store => self.sq_count -= 1,
                _ => {}
            }
            if let Some(preg) = e.dest_preg {
                self.rf.squash_dest(preg);
            }
        }
        self.fetch_queue.clear();
        let survivors: Vec<(u8, u32)> = self
            .rob
            .iter()
            .filter_map(|e| {
                match (e.inst.dest_reg(), e.dest_preg) {
                    (Some(r), Some(p)) => Some((r.number(), p)),
                    _ => None,
                }
            })
            .collect();
        self.rf.rebuild_map(survivors.into_iter());
        self.wrong_path_mode = false;
        self.recovery = Some(Recovery {
            resume_cycle: self.cycle + u64::from(self.cfg.mispredict_penalty),
            pc: target,
        });
    }

    // ---- issue / execute -------------------------------------------------

    fn issue_stage(&mut self) {
        let mut issued = 0u32;
        let mut mem_issued = 0u32;
        let mut alus_free = self.cfg.n_alus;
        let mut muls_free = self.cfg.n_muls;
        let cycle = self.cycle;

        // Borrow dance: collect decisions first, then apply.
        let mut to_issue: Vec<usize> = Vec::new();
        for (idx, e) in self.rob.iter().enumerate() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if e.stage != Stage::InIq {
                continue;
            }
            let ready = e.src_pregs.iter().flatten().all(|&p| self.rf.is_ready(p));
            if !ready {
                continue;
            }
            let ok = match e.inst.op.class() {
                OpClass::IntShort | OpClass::Branch | OpClass::Nop | OpClass::Halt => {
                    if alus_free > 0 {
                        alus_free -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::IntLong => {
                    if muls_free > 0 {
                        muls_free -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::Load | OpClass::Store => {
                    if mem_issued < self.cfg.mem_issue_width {
                        mem_issued += 1;
                        true
                    } else {
                        false
                    }
                }
            };
            if ok {
                to_issue.push(idx);
                issued += 1;
            }
        }

        for idx in to_issue {
            let (op, wrong_path, ea) = {
                let e = &self.rob[idx];
                (e.inst.op, e.wrong_path, e.outcome.and_then(|o| o.ea))
            };
            let (latency, data_return) = self.execute_latency(op, wrong_path, ea, cycle);
            let e = &mut self.rob[idx];
            e.stage = Stage::Executing;
            e.issue_cycle = cycle;
            e.complete_cycle = cycle + u64::from(latency);
            e.data_return_cycle = data_return;
            self.iq_count -= 1;
        }
    }

    /// Computes execution latency; for right-path memory ops this walks the
    /// cache hierarchy and emits fill/evict lifetime events.
    fn execute_latency(
        &mut self,
        op: Opcode,
        wrong_path: bool,
        ea: Option<u64>,
        cycle: u64,
    ) -> (u32, u64) {
        match op.class() {
            OpClass::IntShort | OpClass::Branch | OpClass::Nop | OpClass::Halt => {
                (self.cfg.alu_latency, 0)
            }
            OpClass::IntLong => (self.cfg.mul_latency, 0),
            OpClass::Load => {
                let lat = match (wrong_path, ea) {
                    (false, Some(ea)) => self.dmem_access(ea, false, cycle),
                    _ => self.cfg.dl1.latency,
                };
                (lat, cycle + u64::from(lat))
            }
            OpClass::Store => {
                if let (false, Some(ea)) = (wrong_path, ea) {
                    // Write-allocate fill happens off the critical path; the
                    // store itself completes out of the store buffer.
                    let _ = self.dmem_access(ea, true, cycle);
                }
                (1, 0)
            }
        }
    }

    /// Walks DTLB → DL1 → L2 → memory for the access at `ea`, updating the
    /// timing state, emitting fill/evict (and L2 read/write) lifetime
    /// events, and returning the total latency.
    fn dmem_access(&mut self, ea: u64, is_write: bool, cycle: u64) -> u32 {
        let mut lat = 0u32;
        let line_bytes = u64::from(self.cfg.dl1.line_bytes);

        let t = self.dtlb.translate(ea);
        if !t.hit {
            self.stats.dtlb_misses += 1;
            lat += self.cfg.dtlb_miss_penalty;
            if let Some(vpn) = t.evicted {
                self.analyzer.dtlb_evict(vpn, cycle + u64::from(lat));
            }
            let vpn = self.dtlb.vpn(ea);
            self.analyzer.dtlb_fill(vpn, cycle + u64::from(lat));
        }

        lat += self.cfg.dl1.latency;
        self.stats.dl1_accesses += 1;
        let r = self.dl1.access(ea, is_write);
        if r.hit {
            return lat;
        }
        self.stats.dl1_misses += 1;
        let stamp = cycle + u64::from(lat);
        if let Some((victim, dirty)) = r.victim {
            self.analyzer.dl1_evict(victim, stamp);
            if dirty {
                // Writeback-allocate into the L2.
                let wb = self.l2.access(victim, true);
                if !wb.hit {
                    if let Some((v2, _)) = wb.victim {
                        self.analyzer.l2_evict(v2, stamp);
                    }
                    self.analyzer.l2_fill(victim, stamp);
                }
                self.analyzer.l2_write(victim, line_bytes, stamp);
            }
        }

        self.stats.l2_accesses += 1;
        lat += self.cfg.l2.latency;
        let line = self.dl1.line_base(ea);
        let l2r = self.l2.access(line, false);
        if !l2r.hit {
            self.stats.l2_misses += 1;
            lat += self.cfg.mem_latency;
            let stamp = cycle + u64::from(lat);
            if let Some((v2, _)) = l2r.victim {
                self.analyzer.l2_evict(v2, stamp);
            }
            self.analyzer.l2_fill(line, stamp);
        }
        let stamp = cycle + u64::from(lat);
        // The DL1 fill reads the whole line out of the L2.
        self.analyzer.l2_read(line, line_bytes, stamp);
        self.analyzer.dl1_fill(line, stamp);
        lat
    }

    // ---- dispatch (rename) ------------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(front) = self.fetch_queue.front() else { break };
            if self.rob.len() >= self.cfg.rob_entries || self.iq_count >= self.cfg.iq_entries {
                break;
            }
            let class = front.inst.op.class();
            match class {
                OpClass::Load if self.lq_count >= self.cfg.lq_entries => break,
                OpClass::Store if self.sq_count >= self.cfg.sq_entries => break,
                _ => {}
            }
            let needs_preg = front.inst.dest_reg().is_some();
            if needs_preg && self.rf.free_count() == 0 {
                break;
            }

            let mut e = self.fetch_queue.pop_front().expect("checked non-empty");
            for (slot, src) in e.inst.src_regs().into_iter().enumerate() {
                e.src_pregs[slot] = src.map(|r| self.rf.rename_src(r.number()));
            }
            if let Some(dest) = e.inst.dest_reg() {
                let (preg, prev) =
                    self.rf.allocate(dest.number()).expect("free count checked");
                e.dest_preg = Some(preg);
                e.prev_preg = Some(prev);
            }
            e.dispatch_cycle = self.cycle;
            e.stage = Stage::InIq;
            self.iq_count += 1;
            match class {
                OpClass::Load => self.lq_count += 1,
                OpClass::Store => self.sq_count += 1,
                _ => {}
            }
            self.rob.push_back(e);
        }
    }

    // ---- fetch -------------------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.fetch_done && !self.wrong_path_mode && self.recovery.is_none() {
            return;
        }
        if let Some(r) = self.recovery {
            if self.cycle >= r.resume_cycle {
                self.fetch_pc = r.pc;
                self.recovery = None;
                self.fetch_done = false;
            } else {
                return;
            }
        }
        if self.cycle < self.fetch_stalled_until {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width && self.fetch_queue.len() < self.cfg.fetch_queue {
            let pc = self.fetch_pc;
            let Some(&inst) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the text: wait for recovery.
                break;
            };
            // I-cache check, once per line.
            let line = text_addr(pc) / u64::from(self.cfg.l1i.line_bytes);
            if self.last_fetch_line != Some(line) {
                let r = self.l1i.access(text_addr(pc), false);
                self.last_fetch_line = Some(line);
                if !r.hit {
                    self.stats.l1i_misses += 1;
                    let l2r = self.l2.access(text_addr(pc), false);
                    let penalty = self.cfg.l2.latency
                        + if l2r.hit { 0 } else { self.cfg.mem_latency };
                    self.fetch_stalled_until = self.cycle + u64::from(penalty);
                    break;
                }
            }

            let mut e = DynInst::new(self.seq, pc, inst);
            self.seq += 1;
            let right_path = !self.wrong_path_mode;
            e.wrong_path = !right_path;

            if right_path {
                debug_assert_eq!(pc, self.oracle.pc, "oracle and fetch desynchronized");
                let outcome = self
                    .oracle
                    .exec(self.program, &mut self.oracle_mem)
                    .expect("oracle execution failed");
                e.outcome = Some(outcome);
                if outcome.halted {
                    self.fetch_done = true;
                }
            } else {
                self.stats.wrong_path_fetched += 1;
            }

            let mut next_pc = pc + 1;
            if inst.op.is_branch() {
                let predicted = inst.op.is_unconditional() || self.bpred.predict(pc);
                e.predicted_taken = predicted;
                next_pc = if predicted { inst.target } else { pc + 1 };
                if right_path {
                    let actual = e.outcome.expect("right path").taken;
                    if predicted != actual {
                        e.mispredicted = true;
                        self.wrong_path_mode = true;
                    }
                }
            }
            let is_halt = inst.op == Opcode::Halt;
            let ends_group = e.predicted_taken;
            self.fetch_queue.push_back(e);
            fetched += 1;
            if is_halt {
                // Halt has no successor; wrong-path halts simply stall fetch
                // until the mispredicted branch recovers.
                break;
            }
            self.fetch_pc = next_pc;
            if ends_group {
                break;
            }
        }
    }
}

fn rec_dest(e: &DynInst) -> Option<u8> {
    e.inst.dest_reg().map(|r| r.number())
}
