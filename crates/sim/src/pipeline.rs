//! The cycle loop: fetch → rename/dispatch → issue → execute → commit, with
//! oracle-driven wrong-path modeling and ACE event emission.
//!
//! Instructions are functionally executed by an architectural oracle at
//! fetch (SimpleScalar-style), so branch outcomes and effective addresses
//! are known up front; the pipeline models timing. Because the oracle walks
//! the committed path, every fetched instruction is known to be right- or
//! wrong-path immediately, wrong-path work occupies resources until the
//! mispredicted branch resolves, and only committed instructions reach the
//! ACE analyzer.

use std::collections::VecDeque;

use avf_ace::{
    AceConfig, AceKind, AvfAnalyzer, InstrRecord, MemRef, Slice, Structure, StructureSizes,
};
use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_isa::{text_addr, ExecState, Memory, OpClass, Opcode, Program};

use crate::bpred::BranchPredictor;
use crate::caches::Cache;
use crate::config::MachineConfig;
use crate::dtlb::Dtlb;
use crate::dyninst::{DynInst, Stage};
use crate::regfile::PhysRegFile;
use crate::stats::SimStats;

/// Outcome of a simulation: the AVF report and timing statistics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-structure AVF (convert to SER with
    /// [`avf_ace::AvfReport::ser`]).
    pub report: avf_ace::AvfReport,
    /// Timing statistics.
    pub stats: SimStats,
}

/// How a [`Pipeline::replay_forward`] walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayEnd {
    /// The corrupted dataflow was replayed through the in-flight window
    /// and folded into the oracle frontier; the run decides the outcome.
    Applied,
    /// A re-executed branch changed direction: the machine's fetched
    /// history no longer matches the corrupted dataflow.
    ControlDiverged {
        /// Sequence number of the diverging branch.
        #[allow(dead_code)]
        at_seq: u64,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Recovery {
    resume_cycle: u64,
    pc: u32,
}

/// An injected cache-array fault whose fate follows the line: a dirty
/// eviction writes the corruption back (it persists), a clean eviction
/// discards it (the next fill restores clean data), so the flip must be
/// reverted from the merged oracle memory image.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheFault {
    /// `true` for DL1, `false` for L2.
    pub(crate) dl1: bool,
    /// Base address of the corrupted line.
    pub(crate) line_base: u64,
    /// Byte address of the flipped bit.
    pub(crate) addr: u64,
    /// Bit mask within the byte.
    pub(crate) mask: u8,
}

pub(crate) struct Pipeline<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) program: &'a Program,
    pub(crate) sizes: StructureSizes,
    pub(crate) oracle: ExecState,
    pub(crate) oracle_mem: Memory,
    /// `None` in fault-injection runs: injection needs cheap snapshots
    /// and thousands of re-executions, not ACE bookkeeping.
    pub(crate) analyzer: Option<AvfAnalyzer>,
    /// Fault-injection mode: modeling anomalies (deadlock, oracle
    /// faults, poisoned TLB hits) become a recorded trap instead of a
    /// panic, and fetch stops at the instruction budget so the
    /// architectural memory state is timing-independent.
    pub(crate) fault_mode: bool,
    /// An injected fault was detected (DUE): wrong translation consumed,
    /// corrupted control state, pipeline hang.
    pub(crate) trapped: bool,
    /// Oracle executions after which fetch stops (fault mode only).
    pub(crate) fetch_budget: u64,
    pub(crate) bpred: BranchPredictor,
    pub(crate) l1i: Cache,
    pub(crate) dl1: Cache,
    pub(crate) l2: Cache,
    pub(crate) dtlb: Dtlb,
    pub(crate) rf: PhysRegFile,
    pub(crate) fetch_queue: VecDeque<DynInst>,
    pub(crate) rob: VecDeque<DynInst>,
    pub(crate) iq_count: usize,
    pub(crate) lq_count: usize,
    pub(crate) sq_count: usize,
    pub(crate) cycle: u64,
    pub(crate) seq: u64,
    pub(crate) fetch_pc: u32,
    pub(crate) fetch_stalled_until: u64,
    pub(crate) last_fetch_line: Option<u64>,
    pub(crate) wrong_path_mode: bool,
    pub(crate) recovery: Option<Recovery>,
    pub(crate) fetch_done: bool,
    pub(crate) halted: bool,
    pub(crate) last_commit_cycle: u64,
    /// Injected cache faults still resident in their line (fault mode).
    pub(crate) cache_faults: Vec<CacheFault>,
    pub(crate) stats: SimStats,
}

impl<'a> Pipeline<'a> {
    pub(crate) fn new(
        cfg: &'a MachineConfig,
        program: &'a Program,
        ace_config: AceConfig,
    ) -> Pipeline<'a> {
        Pipeline::new_inner(cfg, program, Some(ace_config))
    }

    /// Builds a pipeline for fault-injection runs: no ACE analyzer, a
    /// fetch budget of `fetch_budget` oracle executions, and graceful
    /// trap handling instead of panics.
    pub(crate) fn new_faulty(
        cfg: &'a MachineConfig,
        program: &'a Program,
        fetch_budget: u64,
    ) -> Pipeline<'a> {
        let mut p = Pipeline::new_inner(cfg, program, None);
        p.fault_mode = true;
        p.fetch_budget = fetch_budget;
        p
    }

    fn new_inner(
        cfg: &'a MachineConfig,
        program: &'a Program,
        ace_config: Option<AceConfig>,
    ) -> Pipeline<'a> {
        let mut oracle_mem = Memory::new();
        let oracle = ExecState::new(program, &mut oracle_mem);
        let sizes = cfg.structure_sizes();
        let analyzer =
            ace_config.map(|ace| AvfAnalyzer::with_config(program.name(), sizes.clone(), ace));
        Pipeline {
            cfg,
            program,
            sizes,
            fetch_pc: oracle.pc,
            oracle,
            oracle_mem,
            analyzer,
            fault_mode: false,
            trapped: false,
            fetch_budget: u64::MAX,
            bpred: BranchPredictor::new(cfg.bpred.clone()),
            l1i: Cache::new(&cfg.l1i),
            dl1: Cache::new(&cfg.dl1),
            l2: Cache::new(&cfg.l2),
            dtlb: Dtlb::new(cfg.dtlb_entries, cfg.page_bytes),
            rf: PhysRegFile::new(cfg.phys_regs, 64),
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            cycle: 0,
            seq: 0,
            fetch_stalled_until: 0,
            last_fetch_line: None,
            wrong_path_mode: false,
            recovery: None,
            fetch_done: false,
            halted: false,
            last_commit_cycle: 0,
            cache_faults: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// Settles any injected fault in an evicted line. A clean eviction
    /// discards the corrupted line — the fault dies with it. A dirty
    /// DL1 eviction writes the line (fault included) back into the L2;
    /// a dirty L2 eviction writes it back to main memory, at which
    /// point the corruption becomes architectural.
    fn settle_cache_fault(&mut self, dl1: bool, victim_base: u64, dirty: bool) {
        if self.cache_faults.is_empty() {
            return;
        }
        let mut demoted: Vec<CacheFault> = Vec::new();
        let mut escaped: Vec<(u64, u8)> = Vec::new();
        self.cache_faults.retain(|f| {
            if f.line_base != victim_base {
                return true;
            }
            if f.dl1 != dl1 {
                // A dirty DL1 writeback replaces the whole L2 line, so
                // whatever fault state the L2 held for it (e.g. the
                // original of a fault propagated into the DL1 on fill)
                // is superseded by the DL1 copy being demoted below —
                // keeping it would double-apply the flip or resurrect a
                // store-repaired one.
                return !(dl1 && dirty && !f.dl1);
            }
            if dirty {
                if dl1 {
                    demoted.push(CacheFault { dl1: false, ..*f });
                } else {
                    escaped.push((f.addr, f.mask));
                }
            }
            false
        });
        self.cache_faults.extend(demoted);
        for (addr, mask) in escaped {
            let byte = self.oracle_mem.read_u8(addr);
            self.oracle_mem.write_u8(addr, byte ^ mask);
        }
    }

    /// A DL1 fill reads the line out of the L2: any injected L2 fault
    /// on it is copied into the new DL1-resident line.
    fn propagate_l2_faults_into_dl1(&mut self, line_base: u64) {
        let copies: Vec<CacheFault> = self
            .cache_faults
            .iter()
            .filter(|f| !f.dl1 && f.line_base == line_base)
            .map(|f| CacheFault { dl1: true, ..*f })
            .collect();
        self.cache_faults.extend(copies);
    }

    /// XOR mask (in loaded-value bit order) of the injected DL1 faults
    /// a load of `bytes` bytes at `ea` consumes.
    fn consumed_load_fault_mask(&self, ea: u64, bytes: u64) -> u64 {
        let line = self.dl1.line_base(ea);
        let mut xor = 0u64;
        for f in &self.cache_faults {
            if f.dl1 && f.line_base == line && f.addr >= ea && f.addr < ea + bytes {
                xor |= u64::from(f.mask) << ((f.addr - ea) * 8);
            }
        }
        xor
    }

    /// A committed store overwrites the faulted bytes it covers: those
    /// faults are repaired in place.
    fn clear_overwritten_faults(&mut self, ea: u64, bytes: u64) {
        self.cache_faults
            .retain(|f| !(f.dl1 && f.addr >= ea && f.addr < ea + bytes));
    }

    /// Corrupts the in-flight instruction's destination value through
    /// the rename map, provided that value is still the newest
    /// definition of its architectural register (otherwise the fault is
    /// masked by overwrite).
    pub(crate) fn corrupt_dest_value(&mut self, idx: usize, xor: u64) -> bool {
        let e = &self.rob[idx];
        let (Some(dest), Some(preg)) = (e.inst.dest_reg(), e.dest_preg) else {
            return false;
        };
        if self.rf.rename_src(dest.number()) != preg {
            return false;
        }
        self.oracle.regs[dest.index()] ^= xor;
        true
    }

    /// The value a physical register holds, as the replay oracle sees
    /// it: the fetch-time result of its in-flight definition, or — for a
    /// committed definition that is still the newest mapping of its
    /// architected register — the frontier architectural value. A
    /// register holding no reachable definition (free, superseded, or a
    /// never-executed wrong-path def) reads its stale content, modeled
    /// deterministically as zero (cold-file stale-value model).
    pub(crate) fn preg_value(&self, preg: u32) -> u64 {
        if let Some(e) = self.rob.iter().find(|e| e.dest_preg == Some(preg)) {
            return e.outcome.map_or(0, |o| o.value);
        }
        match self.rf.arch_of_newest(preg) {
            Some(arch) => self.oracle.regs[usize::from(arch)],
            None => 0,
        }
    }

    /// Replays the in-flight dependence cone of a corrupted definition.
    ///
    /// `delta` maps architected registers to corrupted values as of
    /// program-order position `after_seq`. The walk visits every
    /// younger right-path in-flight instruction (ROB then fetch queue —
    /// together the whole window, in ascending sequence order):
    ///
    /// * an instruction that has **not yet read its operands** (still in
    ///   the IQ, or fetched but not dispatched) and sources a corrupted
    ///   register is re-executed from its recorded fetch-time operands
    ///   with the corrupted ones patched in ([`avf_isa::replay_eval`]),
    ///   its outcome updated in place, and its own result added to (or
    ///   removed from) the delta;
    /// * an instruction that already issued read its operands before the
    ///   flip landed, so its (clean) definition re-establishes the
    ///   architectural value and kills the delta for its register;
    /// * a re-executed branch whose direction changes diverges from the
    ///   already-fetched path — the walk stops and reports it (the
    ///   caller records a detected error: this simplified oracle cannot
    ///   re-steer fetch history).
    ///
    /// Whatever survives the window is the register image future fetches
    /// execute against, so it is folded into the oracle frontier.
    ///
    /// Two documented approximations: a re-executed store's *original*
    /// (clean) write is not un-written, matching the store-tag fault
    /// model; and a re-executed load reads frontier memory, which may
    /// already include younger in-flight stores.
    pub(crate) fn replay_forward(
        &mut self,
        after_seq: u64,
        mut delta: Vec<(u8, u64)>,
    ) -> ReplayEnd {
        let rob_len = self.rob.len();
        let total = rob_len + self.fetch_queue.len();
        for i in 0..total {
            if delta.is_empty() {
                break;
            }
            let (inst, pc, seq, skip, not_yet_read, src_vals, out) = {
                let d = if i < rob_len {
                    &self.rob[i]
                } else {
                    &self.fetch_queue[i - rob_len]
                };
                (
                    d.inst,
                    d.pc,
                    d.seq,
                    d.seq <= after_seq || d.wrong_path || d.outcome.is_none(),
                    d.stage == Stage::InIq || i >= rob_len,
                    d.src_vals,
                    d.outcome,
                )
            };
            if skip {
                continue;
            }
            let out = out.expect("skip covers missing outcomes");
            let srcs = inst.src_regs();
            let patched = |slot: usize| -> Option<u64> {
                let r = srcs[slot]?;
                delta
                    .iter()
                    .find(|&&(dr, _)| dr == r.number())
                    .map(|&(_, v)| v)
            };
            let corrupt = [patched(0), patched(1)];
            if not_yet_read && (corrupt[0].is_some() || corrupt[1].is_some()) {
                let s1 = corrupt[0].unwrap_or(src_vals[0]);
                let s2 = corrupt[1].unwrap_or(src_vals[1]);
                let new_out = avf_isa::replay_eval(&inst, pc, s1, s2, &self.oracle_mem);
                if inst.op.is_branch() && new_out.taken != out.taken {
                    return ReplayEnd::ControlDiverged { at_seq: seq };
                }
                if inst.op.is_store() {
                    // The corrupted store data/address reaches memory;
                    // the original write stays (documented above).
                    let ea = new_out.ea.expect("store has an effective address");
                    match new_out.size.expect("store has a size") {
                        avf_isa::AccessSize::Word => {
                            self.oracle_mem.write_u32(ea, new_out.value as u32);
                        }
                        avf_isa::AccessSize::Quad => self.oracle_mem.write_u64(ea, new_out.value),
                    }
                }
                if let Some(dest) = inst.dest_reg() {
                    delta.retain(|&(r, _)| r != dest.number());
                    if new_out.value != out.value {
                        delta.push((dest.number(), new_out.value));
                    }
                }
                let d = if i < rob_len {
                    &mut self.rob[i]
                } else {
                    &mut self.fetch_queue[i - rob_len]
                };
                d.outcome = Some(new_out);
            } else if let Some(dest) = inst.dest_reg() {
                // Clean inputs (or operands read before the flip): this
                // definition re-establishes the architectural value.
                delta.retain(|&(r, _)| r != dest.number());
            }
        }
        for (r, v) in delta {
            self.oracle.regs[usize::from(r)] = v;
        }
        ReplayEnd::Applied
    }

    /// Whether the run is over: clean halt, commit budget reached, or a
    /// trap in fault mode.
    pub(crate) fn done(&self, max_instructions: u64) -> bool {
        self.halted || self.trapped || self.stats.committed >= max_instructions
    }

    /// Advances the machine by exactly one cycle.
    ///
    /// # Panics
    ///
    /// Panics on a modeling deadlock outside fault mode (in fault mode a
    /// deadlock is an injected-fault symptom and sets the trap flag).
    pub(crate) fn tick(&mut self, max_instructions: u64) {
        let committed_before = self.stats.committed;
        self.commit_stage(max_instructions);
        self.writeback_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        if self.stats.committed > committed_before {
            self.last_commit_cycle = self.cycle;
        }
        let stall_limit = 64 * u64::from(self.cfg.mem_latency) + 100_000;
        if self.cycle - self.last_commit_cycle >= stall_limit {
            if self.fault_mode {
                self.trapped = true;
            } else {
                panic!(
                    "pipeline deadlock at cycle {} (pc {}, rob {}, iq {})",
                    self.cycle,
                    self.fetch_pc,
                    self.rob.len(),
                    self.iq_count
                );
            }
        }
        // Occupancy means only feed the ACE/occupancy reports of an
        // analyzer run; injection trials never read them, so fault-mode
        // pipelines skip the four per-cycle sums (a measurable win at
        // campaign trial counts — the sums sit on the only per-cycle
        // unconditional path besides the stage walk itself).
        if !self.fault_mode {
            self.stats.rob_occ_sum += self.rob.len() as u64;
            self.stats.iq_occ_sum += self.iq_count as u64;
            self.stats.lq_occ_sum += self.lq_count as u64;
            self.stats.sq_occ_sum += self.sq_count as u64;
        }
        self.cycle += 1;
    }

    /// Generous cycle safety net for a `max_instructions` run: every
    /// committed instruction needs far fewer cycles than a full memory
    /// round trip.
    pub(crate) fn default_cycle_limit(&self, max_instructions: u64) -> u64 {
        max_instructions
            .saturating_mul(4 * u64::from(self.cfg.mem_latency))
            .saturating_add(100_000)
    }

    pub(crate) fn run(mut self, max_instructions: u64) -> SimResult {
        let max_cycles = self.default_cycle_limit(max_instructions);
        while !self.done(max_instructions) && self.cycle < max_cycles {
            self.tick(max_instructions);
        }
        self.stats.cycles = self.cycle.max(1);
        let recs = self.rf.drain_lifetimes();
        // Fault-mode pipelines (analyzer = None) end through the
        // injection engine's classification path, never through run():
        // a fabricated empty analyzer here would silently report ~0 AVF.
        let mut analyzer = self
            .analyzer
            .take()
            .expect("run() requires the ACE analyzer; fault-mode runs use InjectionSim");
        for rec in recs {
            analyzer.preg_freed(rec);
        }
        let report = analyzer.finish(self.stats.cycles);
        SimResult {
            report,
            stats: self.stats,
        }
    }

    // ---- commit ---------------------------------------------------------

    fn commit_stage(&mut self, max_instructions: u64) {
        let mut committed = 0;
        while committed < self.cfg.commit_width
            && self.stats.committed < max_instructions
            && self.rob.front().is_some_and(|e| e.is_complete(self.cycle))
        {
            let entry = self.rob.pop_front().expect("checked non-empty");
            debug_assert!(!entry.wrong_path, "wrong-path instruction reached commit");
            self.commit_one(entry);
            committed += 1;
            if self.halted {
                break;
            }
        }
    }

    fn commit_one(&mut self, e: DynInst) {
        let cycle = self.cycle;
        let op = e.inst.op;
        let kind = match op.class() {
            OpClass::Branch => AceKind::Branch,
            OpClass::Store => AceKind::Store,
            OpClass::Nop => AceKind::Nop,
            OpClass::Halt => AceKind::Halt,
            OpClass::IntShort | OpClass::IntLong | OpClass::Load => AceKind::Value,
        };

        let mut rec = InstrRecord::of_kind(kind);
        for (slot, src) in e.inst.src_regs().into_iter().enumerate() {
            rec.srcs[slot] = src.map(|r| r.number());
        }
        rec.dest = e.inst.dest_reg().map(|r| r.number());
        let mem = e.outcome.and_then(|o| {
            o.ea.map(|ea| MemRef {
                addr: ea,
                bytes: o.size.map_or(8, |s| s.bytes() as u8),
            })
        });
        rec.mem = mem;

        // Residency intervals (paper Section IV-A occupancy rules).
        let sizes = &self.sizes;
        let rob_bits = sizes.rob_entry_bits;
        let iq_bits = sizes.iq_entry_bits;
        let tag_bits = sizes.lsq_tag_bits;
        let data_bits = sizes.lsq_data_bits;
        let fu_bits = sizes.fu_stage_bits;
        rec.residency.push(Slice {
            structure: Structure::Rob,
            start: e.dispatch_cycle,
            end: cycle,
            bits: rob_bits,
        });
        rec.residency.push(Slice {
            structure: Structure::Iq,
            start: e.dispatch_cycle,
            end: e.issue_cycle,
            bits: iq_bits,
        });
        let op_data_bits = match op.access_size() {
            Some(s) => (s.bits() as u32).min(data_bits),
            None => data_bits,
        };
        match op.class() {
            OpClass::Load => {
                rec.residency.push(Slice {
                    structure: Structure::LqTag,
                    start: e.dispatch_cycle,
                    end: cycle,
                    bits: tag_bits,
                });
                // LQ data holds ACE bits only once the fill returns
                // (Section IV-A.1); a 4-byte load leaves half un-ACE.
                rec.residency.push(Slice {
                    structure: Structure::LqData,
                    start: e.data_return_cycle,
                    end: cycle,
                    bits: op_data_bits,
                });
            }
            OpClass::Store => {
                rec.residency.push(Slice {
                    structure: Structure::SqTag,
                    start: e.dispatch_cycle,
                    end: cycle,
                    bits: tag_bits,
                });
                rec.residency.push(Slice {
                    structure: Structure::SqData,
                    start: e.issue_cycle,
                    end: cycle,
                    bits: op_data_bits,
                });
            }
            OpClass::IntShort | OpClass::IntLong => {
                rec.residency.push(Slice {
                    structure: Structure::Fu,
                    start: e.issue_cycle,
                    end: e.complete_cycle,
                    bits: fu_bits,
                });
            }
            _ => {}
        }

        if let Some(az) = self.analyzer.as_mut() {
            let id = az.commit(rec);
            // Register-file read recording feeds the freed-lifetime
            // reports, so it is only needed when the analysis is on.
            for preg in e.src_pregs.into_iter().flatten() {
                self.rf.record_read(preg, id, e.issue_cycle);
            }
        }
        if let (Some(dest), Some(dest_preg), Some(prev)) = (rec_dest(&e), e.dest_preg, e.prev_preg)
        {
            let freed = self.rf.commit_def(dest, dest_preg, prev);
            if let Some(az) = self.analyzer.as_mut() {
                az.preg_freed(freed);
            }
        }

        // Commit-time (program-ordered) cache and TLB lifetime events.
        if let Some(m) = mem {
            if let Some(az) = self.analyzer.as_mut() {
                let vpn = self.dtlb.vpn(m.addr);
                az.dtlb_read(vpn, cycle);
                match op.class() {
                    OpClass::Load => {
                        az.dl1_read(m.addr, u64::from(m.bytes), cycle);
                    }
                    OpClass::Store => {
                        az.dl1_write(m.addr, u64::from(m.bytes), cycle);
                    }
                    _ => {}
                }
            }
            self.stats.committed_mem_ops += 1;
        }

        match op.class() {
            OpClass::Branch => {
                let taken = e.outcome.map(|o| o.taken).unwrap_or(false);
                self.bpred.update(e.pc, taken);
                self.stats.branches += 1;
                if e.mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
            OpClass::Load => self.lq_count -= 1,
            OpClass::Store => self.sq_count -= 1,
            OpClass::Halt => self.halted = true,
            _ => {}
        }
        self.stats.committed += 1;
    }

    // ---- writeback ------------------------------------------------------

    fn writeback_stage(&mut self) {
        let cycle = self.cycle;
        let mut recover: Option<(u64, u32)> = None;
        for e in self.rob.iter_mut() {
            if e.stage == Stage::Executing && e.complete_cycle <= cycle {
                e.stage = Stage::Complete;
                if let Some(preg) = e.dest_preg {
                    self.rf.set_ready(preg, e.complete_cycle);
                }
                if e.mispredicted && !e.wrong_path {
                    let target = e.outcome.expect("right-path branch has outcome").next_pc;
                    recover = Some((e.seq, target));
                }
            }
        }
        if let Some((branch_seq, target)) = recover {
            self.recover_from(branch_seq, target);
        }
    }

    fn recover_from(&mut self, branch_seq: u64, target: u32) {
        // Squash everything younger than the branch, youngest first.
        while self.rob.back().is_some_and(|e| e.seq > branch_seq) {
            let e = self.rob.pop_back().expect("checked non-empty");
            if e.stage == Stage::InIq {
                self.iq_count -= 1;
            }
            match e.inst.op.class() {
                OpClass::Load => self.lq_count -= 1,
                OpClass::Store => self.sq_count -= 1,
                _ => {}
            }
            if let Some(preg) = e.dest_preg {
                self.rf.squash_dest(preg);
            }
        }
        self.fetch_queue.clear();
        let survivors: Vec<(u8, u32)> = self
            .rob
            .iter()
            .filter_map(|e| match (e.inst.dest_reg(), e.dest_preg) {
                (Some(r), Some(p)) => Some((r.number(), p)),
                _ => None,
            })
            .collect();
        self.rf.rebuild_map(survivors.into_iter());
        self.wrong_path_mode = false;
        self.recovery = Some(Recovery {
            resume_cycle: self.cycle + u64::from(self.cfg.mispredict_penalty),
            pc: target,
        });
    }

    // ---- issue / execute -------------------------------------------------

    fn issue_stage(&mut self) {
        let mut issued = 0u32;
        let mut mem_issued = 0u32;
        let mut alus_free = self.cfg.n_alus;
        let mut muls_free = self.cfg.n_muls;
        let cycle = self.cycle;

        // Borrow dance: collect decisions first, then apply.
        let mut to_issue: Vec<usize> = Vec::new();
        for (idx, e) in self.rob.iter().enumerate() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if e.stage != Stage::InIq {
                continue;
            }
            let ready = e.src_pregs.iter().flatten().all(|&p| self.rf.is_ready(p));
            if !ready {
                continue;
            }
            let ok = match e.inst.op.class() {
                OpClass::IntShort | OpClass::Branch | OpClass::Nop | OpClass::Halt => {
                    if alus_free > 0 {
                        alus_free -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::IntLong => {
                    if muls_free > 0 {
                        muls_free -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::Load | OpClass::Store => {
                    if mem_issued < self.cfg.mem_issue_width {
                        mem_issued += 1;
                        true
                    } else {
                        false
                    }
                }
            };
            if ok {
                to_issue.push(idx);
                issued += 1;
            }
        }

        for idx in to_issue {
            let (op, wrong_path, ea) = {
                let e = &self.rob[idx];
                (e.inst.op, e.wrong_path, e.outcome.and_then(|o| o.ea))
            };
            let (latency, data_return) = self.execute_latency(op, wrong_path, ea, cycle);
            if self.fault_mode && !self.cache_faults.is_empty() && !wrong_path {
                // Injected cache faults interact with the access at its
                // timing-accurate issue point: a load consumes the
                // corrupted bytes it covers, a store repairs them.
                if let (Some(ea), Some(size)) = (ea, op.access_size()) {
                    if op.is_load() {
                        let xor = self.consumed_load_fault_mask(ea, size.bytes());
                        if xor != 0 {
                            self.corrupt_dest_value(idx, xor);
                        }
                    } else {
                        self.clear_overwritten_faults(ea, size.bytes());
                    }
                }
            }
            let e = &mut self.rob[idx];
            e.stage = Stage::Executing;
            e.issue_cycle = cycle;
            e.complete_cycle = cycle + u64::from(latency);
            e.data_return_cycle = data_return;
            self.iq_count -= 1;
        }
    }

    /// Computes execution latency; for right-path memory ops this walks the
    /// cache hierarchy and emits fill/evict lifetime events.
    fn execute_latency(
        &mut self,
        op: Opcode,
        wrong_path: bool,
        ea: Option<u64>,
        cycle: u64,
    ) -> (u32, u64) {
        match op.class() {
            OpClass::IntShort | OpClass::Branch | OpClass::Nop | OpClass::Halt => {
                (self.cfg.alu_latency, 0)
            }
            OpClass::IntLong => (self.cfg.mul_latency, 0),
            OpClass::Load => {
                let lat = match (wrong_path, ea) {
                    (false, Some(ea)) => self.dmem_access(ea, false, cycle),
                    _ => self.cfg.dl1.latency,
                };
                (lat, cycle + u64::from(lat))
            }
            OpClass::Store => {
                if let (false, Some(ea)) = (wrong_path, ea) {
                    // Write-allocate fill happens off the critical path; the
                    // store itself completes out of the store buffer.
                    let _ = self.dmem_access(ea, true, cycle);
                }
                (1, 0)
            }
        }
    }

    /// Walks DTLB → DL1 → L2 → memory for the access at `ea`, updating the
    /// timing state, emitting fill/evict (and L2 read/write) lifetime
    /// events, and returning the total latency.
    fn dmem_access(&mut self, ea: u64, is_write: bool, cycle: u64) -> u32 {
        let mut lat = 0u32;
        let line_bytes = u64::from(self.cfg.dl1.line_bytes);

        let t = self.dtlb.translate(ea);
        if self.dtlb.poison_tripped() {
            // An injected DTLB tag fault was consumed: wrong translation.
            self.trapped = true;
        }
        if !t.hit {
            self.stats.dtlb_misses += 1;
            lat += self.cfg.dtlb_miss_penalty;
            if let Some(az) = self.analyzer.as_mut() {
                if let Some(vpn) = t.evicted {
                    az.dtlb_evict(vpn, cycle + u64::from(lat));
                }
                let vpn = self.dtlb.vpn(ea);
                az.dtlb_fill(vpn, cycle + u64::from(lat));
            }
        }

        lat += self.cfg.dl1.latency;
        self.stats.dl1_accesses += 1;
        let r = self.dl1.access(ea, is_write);
        if r.hit {
            return lat;
        }
        self.stats.dl1_misses += 1;
        let stamp = cycle + u64::from(lat);
        if let Some((victim, dirty)) = r.victim {
            self.settle_cache_fault(true, victim, dirty);
            if let Some(az) = self.analyzer.as_mut() {
                az.dl1_evict(victim, stamp);
            }
            if dirty {
                // Writeback-allocate into the L2.
                let wb = self.l2.access(victim, true);
                if let Some((v2, d2)) = wb.victim {
                    self.settle_cache_fault(false, v2, d2);
                }
                if let Some(az) = self.analyzer.as_mut() {
                    if !wb.hit {
                        if let Some((v2, _)) = wb.victim {
                            az.l2_evict(v2, stamp);
                        }
                        az.l2_fill(victim, stamp);
                    }
                    az.l2_write(victim, line_bytes, stamp);
                }
            }
        }

        self.stats.l2_accesses += 1;
        lat += self.cfg.l2.latency;
        let line = self.dl1.line_base(ea);
        let l2r = self.l2.access(line, false);
        if !l2r.hit {
            self.stats.l2_misses += 1;
            lat += self.cfg.mem_latency;
            let stamp = cycle + u64::from(lat);
            if let Some((v2, d2)) = l2r.victim {
                self.settle_cache_fault(false, v2, d2);
            }
            if let Some(az) = self.analyzer.as_mut() {
                if let Some((v2, _)) = l2r.victim {
                    az.l2_evict(v2, stamp);
                }
                az.l2_fill(line, stamp);
            }
        }
        let stamp = cycle + u64::from(lat);
        if let Some(az) = self.analyzer.as_mut() {
            // The DL1 fill reads the whole line out of the L2.
            az.l2_read(line, line_bytes, stamp);
            az.dl1_fill(line, stamp);
        }
        if self.fault_mode && !self.cache_faults.is_empty() {
            self.propagate_l2_faults_into_dl1(line);
        }
        lat
    }

    // ---- dispatch (rename) ------------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries || self.iq_count >= self.cfg.iq_entries {
                break;
            }
            let class = front.inst.op.class();
            match class {
                OpClass::Load if self.lq_count >= self.cfg.lq_entries => break,
                OpClass::Store if self.sq_count >= self.cfg.sq_entries => break,
                _ => {}
            }
            let needs_preg = front.inst.dest_reg().is_some();
            if needs_preg && self.rf.free_count() == 0 {
                break;
            }

            let mut e = self.fetch_queue.pop_front().expect("checked non-empty");
            for (slot, src) in e.inst.src_regs().into_iter().enumerate() {
                e.src_pregs[slot] = src.map(|r| self.rf.rename_src(r.number()));
            }
            if let Some(dest) = e.inst.dest_reg() {
                let (preg, prev) = self.rf.allocate(dest.number()).expect("free count checked");
                e.dest_preg = Some(preg);
                e.prev_preg = Some(prev);
            }
            e.dispatch_cycle = self.cycle;
            e.stage = Stage::InIq;
            self.iq_count += 1;
            match class {
                OpClass::Load => self.lq_count += 1,
                OpClass::Store => self.sq_count += 1,
                _ => {}
            }
            self.rob.push_back(e);
        }
    }

    // ---- fetch -------------------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.fetch_done && !self.wrong_path_mode && self.recovery.is_none() {
            return;
        }
        if let Some(r) = self.recovery {
            if self.cycle >= r.resume_cycle {
                self.fetch_pc = r.pc;
                self.recovery = None;
                self.fetch_done = false;
            } else {
                return;
            }
        }
        if self.cycle < self.fetch_stalled_until {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width && self.fetch_queue.len() < self.cfg.fetch_queue {
            let pc = self.fetch_pc;
            let Some(&inst) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the text: wait for recovery.
                break;
            };
            // I-cache check, once per line.
            let line = text_addr(pc) / u64::from(self.cfg.l1i.line_bytes);
            if self.last_fetch_line != Some(line) {
                let r = self.l1i.access(text_addr(pc), false);
                self.last_fetch_line = Some(line);
                if !r.hit {
                    self.stats.l1i_misses += 1;
                    let l2r = self.l2.access(text_addr(pc), false);
                    if let Some((v2, d2)) = l2r.victim {
                        // An I-side refill can evict a faulted data line.
                        self.settle_cache_fault(false, v2, d2);
                    }
                    let penalty =
                        self.cfg.l2.latency + if l2r.hit { 0 } else { self.cfg.mem_latency };
                    self.fetch_stalled_until = self.cycle + u64::from(penalty);
                    break;
                }
            }

            let mut e = DynInst::new(self.seq, pc, inst);
            self.seq += 1;
            let right_path = !self.wrong_path_mode;
            e.wrong_path = !right_path;

            if right_path {
                // Record the source values this instruction is about to
                // execute with: the replay oracle re-executes corrupted
                // micro-ops from exactly these.
                for (slot, src) in inst.src_regs().into_iter().enumerate() {
                    if let Some(r) = src {
                        e.src_vals[slot] = self.oracle.regs[r.index()];
                    }
                }
                if self.oracle.retired >= self.fetch_budget {
                    // Fault mode: stop the oracle exactly at the budget so
                    // the final architectural memory state does not depend
                    // on how far fetch happened to run ahead of commit.
                    self.fetch_done = true;
                    break;
                }
                debug_assert_eq!(pc, self.oracle.pc, "oracle and fetch desynchronized");
                let outcome = match self.oracle.exec(self.program, &mut self.oracle_mem) {
                    Ok(o) => o,
                    Err(err) => {
                        if self.fault_mode {
                            // An injected fault drove the PC out of the
                            // text segment: a detected error.
                            self.trapped = true;
                            self.fetch_done = true;
                            break;
                        }
                        panic!("oracle execution failed: {err}");
                    }
                };
                e.outcome = Some(outcome);
                if outcome.halted {
                    self.fetch_done = true;
                }
            } else {
                self.stats.wrong_path_fetched += 1;
            }

            let mut next_pc = pc + 1;
            if inst.op.is_branch() {
                let predicted = inst.op.is_unconditional() || self.bpred.predict(pc);
                e.predicted_taken = predicted;
                next_pc = if predicted { inst.target } else { pc + 1 };
                if right_path {
                    let actual = e.outcome.expect("right path").taken;
                    if predicted != actual {
                        e.mispredicted = true;
                        self.wrong_path_mode = true;
                    }
                }
            }
            let is_halt = inst.op == Opcode::Halt;
            let ends_group = e.predicted_taken;
            self.fetch_queue.push_back(e);
            fetched += 1;
            if is_halt {
                // Halt has no successor; wrong-path halts simply stall fetch
                // until the mispredicted branch recovers.
                break;
            }
            self.fetch_pc = next_pc;
            if ends_group {
                break;
            }
        }
    }
}

fn rec_dest(e: &DynInst) -> Option<u8> {
    e.inst.dest_reg().map(|r| r.number())
}

/// A resumable checkpoint of every piece of owned pipeline state.
///
/// Taken by [`Pipeline::snapshot`] and reinstated by
/// [`Pipeline::restore`]; the fault-injection engine uses it to fork a
/// run at the sampled injection cycle, flip one bit, run the faulty
/// future to completion, and rewind. Snapshots only exist for
/// fault-mode pipelines (no ACE analyzer state is captured).
pub struct PipelineSnapshot {
    oracle: ExecState,
    oracle_mem: Memory,
    trapped: bool,
    bpred: BranchPredictor,
    l1i: Cache,
    dl1: Cache,
    l2: Cache,
    dtlb: Dtlb,
    rf: PhysRegFile,
    fetch_queue: VecDeque<DynInst>,
    rob: VecDeque<DynInst>,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    cycle: u64,
    seq: u64,
    fetch_pc: u32,
    fetch_stalled_until: u64,
    last_fetch_line: Option<u64>,
    wrong_path_mode: bool,
    recovery: Option<Recovery>,
    fetch_done: bool,
    halted: bool,
    last_commit_cycle: u64,
    cache_faults: Vec<CacheFault>,
    stats: SimStats,
}

impl Pipeline<'_> {
    /// Captures the complete owned machine state.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline carries an ACE analyzer (snapshots are a
    /// fault-injection facility; analyzer event streams are
    /// append-only and cannot be rewound).
    pub(crate) fn snapshot(&self) -> PipelineSnapshot {
        assert!(
            self.analyzer.is_none(),
            "snapshot requires a fault-mode pipeline (no ACE analyzer)"
        );
        PipelineSnapshot {
            oracle: self.oracle.clone(),
            oracle_mem: self.oracle_mem.clone(),
            trapped: self.trapped,
            bpred: self.bpred.clone(),
            l1i: self.l1i.clone(),
            dl1: self.dl1.clone(),
            l2: self.l2.clone(),
            dtlb: self.dtlb.clone(),
            rf: self.rf.clone(),
            fetch_queue: self.fetch_queue.clone(),
            rob: self.rob.clone(),
            iq_count: self.iq_count,
            lq_count: self.lq_count,
            sq_count: self.sq_count,
            cycle: self.cycle,
            seq: self.seq,
            fetch_pc: self.fetch_pc,
            fetch_stalled_until: self.fetch_stalled_until,
            last_fetch_line: self.last_fetch_line,
            wrong_path_mode: self.wrong_path_mode,
            recovery: self.recovery,
            fetch_done: self.fetch_done,
            halted: self.halted,
            last_commit_cycle: self.last_commit_cycle,
            cache_faults: self.cache_faults.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Rewinds the machine to a previously captured snapshot.
    pub(crate) fn restore(&mut self, snap: &PipelineSnapshot) {
        self.oracle = snap.oracle.clone();
        self.oracle_mem = snap.oracle_mem.clone();
        self.trapped = snap.trapped;
        self.bpred = snap.bpred.clone();
        self.l1i = snap.l1i.clone();
        self.dl1 = snap.dl1.clone();
        self.l2 = snap.l2.clone();
        self.dtlb = snap.dtlb.clone();
        self.rf = snap.rf.clone();
        self.fetch_queue = snap.fetch_queue.clone();
        self.rob = snap.rob.clone();
        self.iq_count = snap.iq_count;
        self.lq_count = snap.lq_count;
        self.sq_count = snap.sq_count;
        self.cycle = snap.cycle;
        self.seq = snap.seq;
        self.fetch_pc = snap.fetch_pc;
        self.fetch_stalled_until = snap.fetch_stalled_until;
        self.last_fetch_line = snap.last_fetch_line;
        self.wrong_path_mode = snap.wrong_path_mode;
        self.recovery = snap.recovery;
        self.fetch_done = snap.fetch_done;
        self.halted = snap.halted;
        self.last_commit_cycle = snap.last_commit_cycle;
        self.cache_faults = snap.cache_faults.clone();
        self.stats = snap.stats.clone();
    }
}

impl PipelineSnapshot {
    /// Simulated cycle this snapshot was taken at.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Serializes the snapshot to a self-contained byte blob.
    ///
    /// Geometry-independent state only: the decoder reconstructs
    /// configuration-derived shapes (cache/TLB/predictor geometry, the
    /// static instructions) from the same `MachineConfig` and `Program`
    /// it is given, which must match the machine this snapshot was taken
    /// on. This is what lets a campaign shard checkpoints across
    /// processes or machines instead of replaying the fault-free prefix.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(avf_isa::wire::kind::SNAPSHOT);
        self.oracle.encode(&mut w);
        self.oracle_mem.encode(&mut w);
        w.bool(self.trapped);
        self.bpred.encode(&mut w);
        self.l1i.encode(&mut w);
        self.dl1.encode(&mut w);
        self.l2.encode(&mut w);
        self.dtlb.encode(&mut w);
        self.rf.encode(&mut w);
        w.usize(self.fetch_queue.len());
        for d in &self.fetch_queue {
            d.encode(&mut w);
        }
        w.usize(self.rob.len());
        for d in &self.rob {
            d.encode(&mut w);
        }
        w.usize(self.iq_count);
        w.usize(self.lq_count);
        w.usize(self.sq_count);
        w.u64(self.cycle);
        w.u64(self.seq);
        w.u32(self.fetch_pc);
        w.u64(self.fetch_stalled_until);
        w.opt_u64(self.last_fetch_line);
        w.bool(self.wrong_path_mode);
        match self.recovery {
            None => w.u8(0),
            Some(r) => {
                w.u8(1);
                w.u64(r.resume_cycle);
                w.u32(r.pc);
            }
        }
        w.bool(self.fetch_done);
        w.bool(self.halted);
        w.u64(self.last_commit_cycle);
        w.usize(self.cache_faults.len());
        for f in &self.cache_faults {
            w.bool(f.dl1);
            w.u64(f.line_base);
            w.u64(f.addr);
            w.u8(f.mask);
        }
        self.stats.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a snapshot written by [`PipelineSnapshot::to_wire`] for
    /// the same machine configuration and program.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the blob is truncated, version-skewed,
    /// or inconsistent with `cfg`/`program` geometry.
    pub fn from_wire(
        bytes: &[u8],
        cfg: &MachineConfig,
        program: &Program,
    ) -> Result<PipelineSnapshot, WireError> {
        let mut r = WireReader::new(bytes);
        r.expect_envelope(avf_isa::wire::kind::SNAPSHOT)?;
        let oracle = ExecState::decode(&mut r)?;
        let oracle_mem = Memory::decode(&mut r)?;
        let trapped = r.bool()?;
        let bpred = BranchPredictor::decode(&mut r, cfg.bpred.clone())?;
        let l1i = Cache::decode(&mut r, &cfg.l1i)?;
        let dl1 = Cache::decode(&mut r, &cfg.dl1)?;
        let l2 = Cache::decode(&mut r, &cfg.l2)?;
        let dtlb = Dtlb::decode(&mut r, cfg.dtlb_entries, cfg.page_bytes)?;
        let rf = PhysRegFile::decode(&mut r, cfg.phys_regs)?;
        // A DynInst is at least seq + pc + flag/tag bytes + cycles +
        // the two fetch-time source values.
        const DYNINST_MIN_BYTES: usize = 8 + 4 + 6 + 32 + 16;
        let n_fetch = r.seq_len(DYNINST_MIN_BYTES)?;
        let mut fetch_queue = VecDeque::with_capacity(n_fetch);
        for _ in 0..n_fetch {
            fetch_queue.push_back(DynInst::decode(&mut r, program)?);
        }
        let n_rob = r.seq_len(DYNINST_MIN_BYTES)?;
        let mut rob = VecDeque::with_capacity(n_rob);
        for _ in 0..n_rob {
            rob.push_back(DynInst::decode(&mut r, program)?);
        }
        let iq_count = r.usize()?;
        let lq_count = r.usize()?;
        let sq_count = r.usize()?;
        let cycle = r.u64()?;
        let seq = r.u64()?;
        let fetch_pc = r.u32()?;
        let fetch_stalled_until = r.u64()?;
        let last_fetch_line = r.opt_u64()?;
        let wrong_path_mode = r.bool()?;
        let recovery = match r.u8()? {
            0 => None,
            1 => Some(Recovery {
                resume_cycle: r.u64()?,
                pc: r.u32()?,
            }),
            t => return Err(WireError::BadTag(t)),
        };
        let fetch_done = r.bool()?;
        let halted = r.bool()?;
        let last_commit_cycle = r.u64()?;
        let n_faults = r.seq_len(1 + 8 + 8 + 1)?;
        let mut cache_faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            cache_faults.push(CacheFault {
                dl1: r.bool()?,
                line_base: r.u64()?,
                addr: r.u64()?,
                mask: r.u8()?,
            });
        }
        let stats = SimStats::decode(&mut r)?;
        r.finish()?;
        Ok(PipelineSnapshot {
            oracle,
            oracle_mem,
            trapped,
            bpred,
            l1i,
            dl1,
            l2,
            dtlb,
            rf,
            fetch_queue,
            rob,
            iq_count,
            lq_count,
            sq_count,
            cycle,
            seq,
            fetch_pc,
            fetch_stalled_until,
            last_fetch_line,
            wrong_path_mode,
            recovery,
            fetch_done,
            halted,
            last_commit_cycle,
            cache_faults,
            stats,
        })
    }
}
