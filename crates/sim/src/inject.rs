//! Fault-injection seams: fork the pipeline at an arbitrary cycle, flip
//! one bit of one hardware structure, and run the faulty future to
//! completion.
//!
//! This is the measurement side of statistical fault injection (SFI),
//! the standard technique for validating ACE-based AVF estimates (Wang
//! et al., Rhod et al.): where ACE analysis *reasons* about which bits
//! could have mattered, injection *observes* what one flipped bit does.
//! The two disagree in a known direction — ACE analysis is conservative
//! and over-approximates — so per-structure injection results both
//! sanity-check the simulator's AVF numbers and quantify the
//! methodology's built-in pessimism.
//!
//! ## Fault models
//!
//! The timing pipeline carries no data values (the architectural oracle
//! executes at fetch), so a flip is applied *semantically*: the engine
//! locates the architectural value the flipped bit backs and corrupts
//! that. Flips that land on provably dead state (vacant entries,
//! wrong-path instructions, un-ACE operand halves, padding bits of
//! byte-aligned tag fields) are classified masked without running.
//!
//! Queueing-structure (ROB/IQ/LQ/SQ) control and tag fields resolve
//! under one of two [`FaultModel`]s:
//!
//! * **trap** — any control-field corruption of a live entry is a
//!   detected unrecoverable error, without running. Coarse on purpose:
//!   it is the pre-replay baseline the fidelity gate compares against.
//! * **replay** (default) — the *micro-op replay oracle*: the corrupted
//!   entry is re-decoded into a (possibly different) micro-op — a
//!   flipped opcode byte decodes to another operation, a flipped
//!   operand tag re-routes the value of a different physical register
//!   into the slot, a flipped destination tag misdirects the writeback
//!   — re-executed from its recorded fetch-time operands
//!   ([`avf_isa::replay_eval`]), and its changed result replayed
//!   through every not-yet-issued in-flight consumer (and the oracle
//!   frontier for future fetches). The run's architectural outcome then
//!   classifies the trial like any data-field flip, with
//!   [`FlipEffect::Diverged`] for entries that decode to
//!   architecturally impossible states.
//!
//! Deliberate approximations, documented inline: value flips reach
//! in-flight consumers that have not yet issued plus all not-yet-fetched
//! readers (already-issued consumers keep their clean operands);
//! store-tag flips and replayed stores corrupt the corrupted address
//! without un-writing the original one; a misdirected writeback
//! clobbers the victim register while the true destination keeps its
//! already-applied value; replayed loads read frontier memory; a
//! register holding no live definition reads stale content modeled as
//! zero; and clean-cache-line flips hit the backing store directly.

use avf_ace::{Structure, StructureSizes};
use avf_isa::wire::WireError;
use avf_isa::{AccessSize, Inst, OpClass, Opcode, Program};

use crate::config::MachineConfig;
use crate::dyninst::{iq_field_of, rob_control_field_of, IqField, RobControlField, Stage};
use crate::pipeline::{Pipeline, ReplayEnd};

pub use crate::pipeline::PipelineSnapshot;

/// A hardware structure fault-injection campaigns can target.
///
/// Mirrors the structures of the ACE analysis but merges tag/data
/// arrays the way a physical entry does (an LQ entry is one 128-bit
/// word: 64 tag bits then 64 data bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InjectionTarget {
    /// Re-order buffer entries.
    Rob,
    /// Issue queue entries.
    Iq,
    /// Load queue entries (tag then data halves).
    Lq,
    /// Store queue entries (tag then data halves).
    Sq,
    /// Merged physical register file.
    RegFile,
    /// L1 data cache data array.
    Dl1,
    /// Unified L2 cache data array.
    L2,
    /// Data TLB entries.
    Dtlb,
}

impl InjectionTarget {
    /// Every target, in display order.
    pub const ALL: [InjectionTarget; 8] = [
        InjectionTarget::Rob,
        InjectionTarget::Iq,
        InjectionTarget::Lq,
        InjectionTarget::Sq,
        InjectionTarget::RegFile,
        InjectionTarget::Dl1,
        InjectionTarget::L2,
        InjectionTarget::Dtlb,
    ];

    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InjectionTarget::Rob => "ROB",
            InjectionTarget::Iq => "IQ",
            InjectionTarget::Lq => "LQ",
            InjectionTarget::Sq => "SQ",
            InjectionTarget::RegFile => "RF",
            InjectionTarget::Dl1 => "DL1",
            InjectionTarget::L2 => "L2",
            InjectionTarget::Dtlb => "DTLB",
        }
    }

    /// Number of physical entries on `cfg`.
    #[must_use]
    pub fn entries(self, cfg: &MachineConfig) -> u64 {
        match self {
            InjectionTarget::Rob => cfg.rob_entries as u64,
            InjectionTarget::Iq => cfg.iq_entries as u64,
            InjectionTarget::Lq => cfg.lq_entries as u64,
            InjectionTarget::Sq => cfg.sq_entries as u64,
            InjectionTarget::RegFile => cfg.phys_regs as u64,
            InjectionTarget::Dl1 => u64::from(cfg.dl1.lines()),
            InjectionTarget::L2 => u64::from(cfg.l2.lines()),
            InjectionTarget::Dtlb => cfg.dtlb_entries as u64,
        }
    }

    /// Bits per entry (the per-trial bit-sampling space).
    #[must_use]
    pub fn entry_bits(self, sizes: &StructureSizes) -> u32 {
        match self {
            InjectionTarget::Rob => sizes.rob_entry_bits,
            InjectionTarget::Iq => sizes.iq_entry_bits,
            InjectionTarget::Lq | InjectionTarget::Sq => sizes.lsq_tag_bits + sizes.lsq_data_bits,
            InjectionTarget::RegFile => sizes.rf_reg_bits,
            InjectionTarget::Dl1 | InjectionTarget::L2 => sizes.line_bytes * 8,
            InjectionTarget::Dtlb => sizes.dtlb_entry_bits,
        }
    }

    /// Stable single-byte code used on the wire (the target's position
    /// in [`InjectionTarget::ALL`]).
    #[must_use]
    pub fn wire_code(self) -> u8 {
        InjectionTarget::ALL
            .iter()
            .position(|&t| t == self)
            .expect("every target is in ALL") as u8
    }

    /// Inverse of [`InjectionTarget::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<InjectionTarget> {
        InjectionTarget::ALL.get(usize::from(code)).copied()
    }

    /// The ACE structures to compare injection-measured AVF against
    /// (bit-weighted merge where a target spans two arrays).
    #[must_use]
    pub fn ace_structures(self) -> &'static [Structure] {
        match self {
            InjectionTarget::Rob => &[Structure::Rob],
            InjectionTarget::Iq => &[Structure::Iq],
            InjectionTarget::Lq => &[Structure::LqTag, Structure::LqData],
            InjectionTarget::Sq => &[Structure::SqTag, Structure::SqData],
            InjectionTarget::RegFile => &[Structure::RegFile],
            InjectionTarget::Dl1 => &[Structure::Dl1Data],
            InjectionTarget::L2 => &[Structure::L2Data],
            InjectionTarget::Dtlb => &[Structure::Dtlb],
        }
    }
}

impl std::fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the injection engine resolves flips in queueing-structure
/// (ROB/IQ/LQ/SQ) control and tag fields.
///
/// Data-field flips classify identically under either model; only the
/// control/tag handling moves, which is exactly where the trap model is
/// coarse (every control corruption of a live entry becomes a DUE,
/// regardless of its architectural outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// Control-field corruption of a live entry is recorded as a
    /// detected unrecoverable error without running the faulty future —
    /// the pre-replay approximation.
    Trap,
    /// The corrupted entry is re-decoded into a (possibly different)
    /// micro-op and replayed through the execute/commit path from the
    /// recorded fetch-time operands; the run's architectural outcome
    /// (golden-digest comparison) decides the classification, with
    /// [`FlipEffect::Diverged`] for entries that decode to
    /// architecturally impossible states.
    #[default]
    Replay,
}

impl FaultModel {
    /// Short name used in reports and on the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::Trap => "trap",
            FaultModel::Replay => "replay",
        }
    }

    /// Parses a CLI spelling of the model.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s {
            "trap" => Some(FaultModel::Trap),
            "replay" => Some(FaultModel::Replay),
            _ => None,
        }
    }

    /// Stable single-byte code used by the job-setup wire codec.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            FaultModel::Trap => 0,
            FaultModel::Replay => 1,
        }
    }

    /// Inverse of [`FaultModel::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<FaultModel> {
        match code {
            0 => Some(FaultModel::Trap),
            1 => Some(FaultModel::Replay),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a flip provably cannot affect program output (classified masked
/// without running the faulty future).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskReason {
    /// The sampled entry holds no in-flight state.
    Vacant,
    /// The occupant is wrong-path work awaiting a squash.
    WrongPath,
    /// The occupant produces no architectural result (NOP, resolved
    /// control).
    Idle,
    /// A younger definition already supersedes the value for every
    /// future reader.
    Overwritten,
    /// The bit lies in an operand half a narrow access never makes ACE.
    UnAceBits,
    /// The field does not hold valid data yet (load data before the
    /// fill returns, store data before issue).
    NotYetValid,
    /// A misdirected destination tag lands the result in a physical
    /// register holding no reachable definition (replay model).
    DeadTarget,
    /// The re-decoded micro-op reproduces the original outcome exactly
    /// (same value / address / direction), so the corruption is benign
    /// by re-execution (replay model).
    ReplayClean,
}

impl MaskReason {
    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MaskReason::Vacant => "vacant",
            MaskReason::WrongPath => "wrong-path",
            MaskReason::Idle => "idle",
            MaskReason::Overwritten => "overwritten",
            MaskReason::UnAceBits => "un-ACE bits",
            MaskReason::NotYetValid => "not-yet-valid",
            MaskReason::DeadTarget => "dead-target",
            MaskReason::ReplayClean => "replay-clean",
        }
    }
}

/// Immediate result of applying one flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipEffect {
    /// The fault is live in machine state; the outcome is decided by
    /// running to completion and comparing against the golden run.
    Armed,
    /// The flip provably cannot reach program output.
    Masked(MaskReason),
    /// The corrupted entry decodes to an architecturally impossible
    /// state (an unencodable opcode or stage code, a register tag past
    /// the physical file, a tag naming no live definition): the replay
    /// oracle cannot express the faulty machine, and a campaign
    /// classifies the trial in its own `ReplayDiverged` bucket. No
    /// machine state is mutated.
    Diverged,
}

/// How a (possibly faulty) bounded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// Clean end: halted or reached the commit budget.
    Completed,
    /// Exceeded the cycle budget without completing (hang).
    Timeout,
    /// A detected unrecoverable error: corrupted control state, wrong
    /// DTLB translation consumed, pipeline deadlock, or PC out of text.
    Trapped,
}

/// Reference (fault-free) execution a campaign classifies against.
///
/// `PartialEq` is load-bearing for the distributed service: when N
/// workers each execute the golden pass themselves, the driver
/// cross-checks that every worker reports the *identical* reference —
/// any divergence is a hard protocol error, not a warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenRun {
    /// Cycles the fault-free run took (the injection-cycle sampling
    /// space).
    pub cycles: u64,
    /// Instructions the fault-free run committed.
    pub committed: u64,
    /// Semantic digest of final memory ([`avf_isa::Memory::digest`]).
    pub digest: u64,
}

/// A simulator instance with fault-injection seams: bounded stepping,
/// state snapshot/rewind, and single-bit flips.
pub struct InjectionSim<'a> {
    pipe: Pipeline<'a>,
    instr_budget: u64,
    cycle_budget: u64,
    fault_model: FaultModel,
}

impl<'a> InjectionSim<'a> {
    /// Builds an injectable simulation of `program` on `config`,
    /// bounded by `instr_budget` committed instructions.
    ///
    /// The fetch stage stops the architectural oracle exactly at the
    /// budget, so the final memory digest is a pure function of
    /// architectural execution (independent of pipeline timing), which
    /// makes golden-vs-faulty digest comparison sound.
    #[must_use]
    pub fn new(config: &'a MachineConfig, program: &'a Program, instr_budget: u64) -> Self {
        let pipe = Pipeline::new_faulty(config, program, instr_budget);
        let cycle_budget = pipe.default_cycle_limit(instr_budget);
        InjectionSim {
            pipe,
            instr_budget,
            cycle_budget,
            fault_model: FaultModel::default(),
        }
    }

    /// Overrides the cycle budget (campaigns tighten it around the
    /// golden run's length so hangs are detected quickly).
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.cycle_budget = cycles;
    }

    /// Selects how queueing-structure control/tag flips are resolved
    /// (default: [`FaultModel::Replay`]).
    pub fn set_fault_model(&mut self, model: FaultModel) {
        self.fault_model = model;
    }

    /// The active fault model.
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.pipe.cycle
    }

    /// Committed instructions so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.pipe.stats.committed
    }

    /// Semantic digest of current architectural memory.
    #[must_use]
    pub fn memory_digest(&self) -> u64 {
        self.pipe.oracle_mem.digest()
    }

    /// Advances until `cycle`; returns `false` if the run ended first.
    pub fn run_to_cycle(&mut self, cycle: u64) -> bool {
        while self.pipe.cycle < cycle {
            if self.pipe.done(self.instr_budget) || self.pipe.cycle >= self.cycle_budget {
                return false;
            }
            self.pipe.tick(self.instr_budget);
        }
        true
    }

    /// Runs to completion within the budgets and classifies the ending.
    pub fn run_to_end(&mut self) -> RunEnd {
        while !self.pipe.done(self.instr_budget) {
            if self.pipe.cycle >= self.cycle_budget {
                return RunEnd::Timeout;
            }
            self.pipe.tick(self.instr_budget);
        }
        if self.pipe.trapped {
            RunEnd::Trapped
        } else {
            RunEnd::Completed
        }
    }

    /// Captures the complete machine state (cheap relative to a replay:
    /// one deep clone of caches, queues, register state, and the sparse
    /// memory image).
    #[must_use]
    pub fn snapshot(&self) -> PipelineSnapshot {
        self.pipe.snapshot()
    }

    /// Rewinds to a snapshot taken earlier on this instance.
    pub fn restore(&mut self, snap: &PipelineSnapshot) {
        self.pipe.restore(snap);
    }

    /// Serializes the complete machine state to a self-contained blob
    /// (see [`PipelineSnapshot::to_wire`]).
    #[must_use]
    pub fn snapshot_wire(&self) -> Vec<u8> {
        self.pipe.snapshot().to_wire()
    }

    /// Restores state from a blob written by
    /// [`InjectionSim::snapshot_wire`] on the same machine configuration
    /// and program — including one captured by a *different* simulator
    /// instance, which is what checkpoint sharding relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the blob does not decode against this
    /// simulator's configuration and program.
    pub fn restore_wire(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let snap = PipelineSnapshot::from_wire(bytes, self.pipe.cfg, self.pipe.program)?;
        self.pipe.restore(&snap);
        Ok(())
    }

    /// Rewinds (or fast-forwards) to the nearest stored checkpoint at or
    /// before `cycle`, returning the restored cycle. The caller then
    /// [`InjectionSim::run_to_cycle`]s the remaining `O(interval)`
    /// distance instead of replaying the whole fault-free prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the store is empty or the checkpoint
    /// blob does not decode against this simulator's configuration.
    pub fn restore_nearest(
        &mut self,
        store: &CheckpointStore,
        cycle: u64,
    ) -> Result<u64, WireError> {
        let (cp_cycle, bytes) = store
            .nearest(cycle)
            .ok_or(WireError::Invalid("empty checkpoint store"))?;
        self.restore_wire(bytes)?;
        Ok(cp_cycle)
    }

    /// Flips bit `bit` of physical entry `entry` in `target` at the
    /// current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or `bit` exceed the target's geometry.
    pub fn flip_bit(&mut self, target: InjectionTarget, entry: u64, bit: u32) -> FlipEffect {
        self.flip_inner(target, entry, bit, true)
    }

    /// Dry-run of [`InjectionSim::flip_bit`]: classifies the flip
    /// without mutating any machine state. Campaign drivers use this to
    /// skip the snapshot/rewind cost for provably masked trials —
    /// followed by a real `flip_bit` at the same state, the two always
    /// agree.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or `bit` exceed the target's geometry.
    pub fn probe_bit(&mut self, target: InjectionTarget, entry: u64, bit: u32) -> FlipEffect {
        self.flip_inner(target, entry, bit, false)
    }

    fn flip_inner(
        &mut self,
        target: InjectionTarget,
        entry: u64,
        bit: u32,
        apply: bool,
    ) -> FlipEffect {
        assert!(
            entry < target.entries(self.pipe.cfg),
            "entry index out of range"
        );
        assert!(
            bit < target.entry_bits(&self.pipe.sizes),
            "bit index out of range"
        );
        match target {
            InjectionTarget::RegFile => self.flip_regfile(entry as u32, bit, apply),
            InjectionTarget::Rob => self.flip_rob(entry as usize, bit, apply),
            InjectionTarget::Iq => self.flip_iq(entry as usize, bit, apply),
            InjectionTarget::Lq => self.flip_lsq(entry as usize, bit, OpClass::Load, apply),
            InjectionTarget::Sq => self.flip_lsq(entry as usize, bit, OpClass::Store, apply),
            InjectionTarget::Dl1 => self.flip_cache_line(true, entry as usize, bit, apply),
            InjectionTarget::L2 => self.flip_cache_line(false, entry as usize, bit, apply),
            InjectionTarget::Dtlb => {
                if entry as usize >= self.pipe.dtlb.resident() {
                    return FlipEffect::Masked(MaskReason::Vacant);
                }
                if apply {
                    self.pipe
                        .dtlb
                        .poison_entry(entry as usize)
                        .expect("residency checked");
                }
                FlipEffect::Armed
            }
        }
    }

    /// Physical register flip: corrupt the architectural register whose
    /// newest definition the register holds.
    ///
    /// Approximation: the flip is visible to all *not-yet-fetched*
    /// readers (the oracle executes at fetch, so already-fetched
    /// in-flight consumers keep their clean value). A register whose
    /// value has been superseded for every future reader is masked by
    /// overwrite — exactly the un-ACE idle/rename-turnaround state the
    /// paper exploits.
    fn flip_regfile(&mut self, preg: u32, bit: u32, apply: bool) -> FlipEffect {
        if self.pipe.rf.is_free(preg) {
            return FlipEffect::Masked(MaskReason::Vacant);
        }
        match self.pipe.rf.arch_of_newest(preg) {
            Some(arch) => {
                if apply {
                    self.pipe.oracle.regs[usize::from(arch)] ^= 1u64 << (bit & 63);
                }
                FlipEffect::Armed
            }
            None => FlipEffect::Masked(MaskReason::Overwritten),
        }
    }

    /// Corrupts the in-flight instruction's destination value if (and
    /// only if) that value is still the newest definition of its
    /// architectural register.
    fn flip_result_value(&mut self, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let e = &self.pipe.rob[idx];
        let (Some(dest), Some(dest_preg)) = (e.inst.dest_reg(), e.dest_preg) else {
            return FlipEffect::Masked(MaskReason::Idle);
        };
        if self.pipe.rf.rename_src(dest.number()) != dest_preg {
            return FlipEffect::Masked(MaskReason::Overwritten);
        }
        if apply {
            self.pipe.oracle.regs[dest.index()] ^= 1u64 << (bit & 63);
        }
        FlipEffect::Armed
    }

    /// Marks the fault detected (control-state corruption → DUE).
    fn trap(&mut self, apply: bool) -> FlipEffect {
        if apply {
            self.pipe.trapped = true;
        }
        FlipEffect::Armed
    }

    fn flip_rob(&mut self, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let Some(e) = self.pipe.rob.get(idx) else {
            return FlipEffect::Masked(MaskReason::Vacant);
        };
        if e.wrong_path {
            return FlipEffect::Masked(MaskReason::WrongPath);
        }
        match self.fault_model {
            FaultModel::Trap => self.flip_rob_trap(idx, bit, apply),
            FaultModel::Replay => self.flip_rob_replay(idx, bit, apply),
        }
    }

    fn flip_rob_trap(&mut self, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let class = self.pipe.rob[idx].inst.op.class();
        // Table I's 76-bit ROB entry: a 64-bit result field plus control
        // (dest tag, status). Control corruption breaks commit
        // bookkeeping — a detected error; result-field corruption
        // propagates through the destination register.
        if bit >= 64 {
            return match class {
                OpClass::Nop => FlipEffect::Masked(MaskReason::Idle),
                _ => self.trap(apply),
            };
        }
        match class {
            OpClass::Nop => FlipEffect::Masked(MaskReason::Idle),
            OpClass::Branch | OpClass::Store | OpClass::Halt => {
                // No result field in use.
                FlipEffect::Masked(MaskReason::Idle)
            }
            _ => self.flip_result_value(idx, bit, apply),
        }
    }

    /// The micro-op replay oracle's ROB model. A result-field flip
    /// corrupts the value the entry carries (the same entry-backs-the-
    /// in-flight-value abstraction the ACE analysis credits dispatch→
    /// commit) and replays it through every not-yet-issued in-flight
    /// consumer; the 12-bit control half is re-decoded field by field
    /// instead of trapping wholesale.
    fn flip_rob_replay(&mut self, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let e = &self.pipe.rob[idx];
        let class = e.inst.op.class();
        if class == OpClass::Nop {
            // The ACE model resolves a NOP's whole entry un-ACE, so the
            // oracle masks it too (the flipped-opcode-on-a-NOP gap is
            // recorded in the ROADMAP).
            return FlipEffect::Masked(MaskReason::Idle);
        }
        if bit < 64 {
            if matches!(class, OpClass::Branch | OpClass::Store | OpClass::Halt) {
                // No result field in use.
                return FlipEffect::Masked(MaskReason::Idle);
            }
            let Some(dest) = e.inst.dest_reg() else {
                return FlipEffect::Masked(MaskReason::Idle);
            };
            let out = e.outcome.expect("right-path producer has an outcome");
            let corrupted = out.value ^ (1u64 << bit);
            if apply {
                let seq = e.seq;
                let mut new_out = out;
                new_out.value = corrupted;
                self.pipe.rob[idx].outcome = Some(new_out);
                self.replay_seed(seq, vec![(dest.number(), corrupted)]);
            }
            return FlipEffect::Armed;
        }
        match rob_control_field_of(bit - 64) {
            RobControlField::DestTag(b) => self.flip_dest_tag(idx, b, apply),
            RobControlField::Status(b) => {
                // 2-bit stage code: InIq 0, Executing 1, Complete 2.
                let code: u8 = match e.stage {
                    Stage::InIq => 0,
                    Stage::Executing => 1,
                    Stage::Complete => 2,
                };
                if code ^ (1 << b) == 3 {
                    // Unencodable scheduling state.
                    FlipEffect::Diverged
                } else {
                    // A live entry scheduled out of order breaks the
                    // in-order commit contract: detected.
                    self.trap(apply)
                }
            }
            RobControlField::PathFlag => self.trap(apply),
        }
    }

    fn flip_iq(&mut self, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let Some(rob_idx) = self
            .pipe
            .rob
            .iter()
            .enumerate()
            .filter(|(_, e)| e.stage == Stage::InIq)
            .map(|(i, _)| i)
            .nth(idx)
        else {
            return FlipEffect::Masked(MaskReason::Vacant);
        };
        let e = &self.pipe.rob[rob_idx];
        if e.wrong_path {
            return FlipEffect::Masked(MaskReason::WrongPath);
        }
        if e.inst.op.class() == OpClass::Nop {
            return FlipEffect::Masked(MaskReason::Idle);
        }
        match self.fault_model {
            FaultModel::Trap => {
                // A 32-bit IQ entry is all control: opcode and operand
                // tags. Corrupting a waiting computation's routing
                // yields a wrong result; corrupting waiting control
                // flow (branch/store/halt scheduling) is a detected
                // error.
                match self.pipe.rob[rob_idx].inst.op.class() {
                    OpClass::Branch | OpClass::Store | OpClass::Halt => self.trap(apply),
                    _ => self.flip_result_value(rob_idx, bit, apply),
                }
            }
            FaultModel::Replay => match iq_field_of(bit) {
                IqField::Opcode(b) => self.flip_iq_opcode(rob_idx, b, apply),
                IqField::SrcTag(slot, b) => self.flip_iq_src_tag(rob_idx, slot, b, apply),
                IqField::DestTag(b) => self.flip_dest_tag(rob_idx, b, apply),
            },
        }
    }

    /// Implemented width of a physical-register tag: `Table I` pads tag
    /// fields to a byte, but only `ceil(log2(phys_regs))` bits back real
    /// storage — a flip past that is a padding bit and masks.
    fn tag_width(&self) -> u8 {
        let regs = self.pipe.cfg.phys_regs.max(2);
        (usize::BITS - (regs - 1).leading_zeros()) as u8
    }

    /// Re-decodes a waiting micro-op's opcode byte with bit `b` flipped
    /// and replays the decoded instruction.
    fn flip_iq_opcode(&mut self, idx: usize, b: u8, apply: bool) -> FlipEffect {
        // Implemented opcode width: the encoding space holds
        // `Opcode::ALL.len()` points; bits past its log2 are padding.
        let opcode_width = (usize::BITS - (Opcode::ALL.len() - 1).leading_zeros()) as u8;
        if b >= opcode_width {
            return FlipEffect::Masked(MaskReason::UnAceBits);
        }
        let e = &self.pipe.rob[idx];
        let op = e.inst.op;
        let Some(op2) = Opcode::from_wire_code(op.wire_code() ^ (1 << b)) else {
            return FlipEffect::Diverged; // unencodable opcode
        };
        if op2.class() != op.class() {
            // The entry's routing metadata (function-unit class, LSQ
            // linkage, branch checkpoint) no longer matches the decoded
            // micro-op: a detected scheduling inconsistency.
            return self.trap(apply);
        }
        let mut inst2 = e.inst;
        inst2.op = op2;
        let vals = e.src_vals;
        self.replay_corrupted_uop(idx, inst2, vals, apply)
    }

    /// Re-routes one source-operand tag of a waiting micro-op and
    /// replays it with the victim register's value in that slot.
    fn flip_iq_src_tag(&mut self, idx: usize, slot: usize, b: u8, apply: bool) -> FlipEffect {
        if b >= self.tag_width() {
            return FlipEffect::Masked(MaskReason::UnAceBits);
        }
        let e = &self.pipe.rob[idx];
        let Some(p) = e.src_pregs[slot] else {
            // Immediate, zero-register, or unused operand slot.
            return FlipEffect::Masked(MaskReason::Idle);
        };
        let p2 = p ^ (1u32 << b);
        if p2 as usize >= self.pipe.cfg.phys_regs {
            // An implemented tag bit flipped the number past the
            // physical file: no such register exists.
            return FlipEffect::Diverged;
        }
        let v2 = self.pipe.preg_value(p2);
        let inst = e.inst;
        let mut vals = e.src_vals;
        vals[slot] = v2;
        self.replay_corrupted_uop(idx, inst, vals, apply)
    }

    /// Misdirected-writeback decode shared by the ROB control half and
    /// the IQ destination byte: the tag with bit `b` flipped names a
    /// different physical register, so the result lands there —
    /// clobbering whatever architected value that register backs.
    ///
    /// Approximation: the true destination keeps its already-applied
    /// oracle value (mirroring the store-tag model, which does not
    /// un-write the original address).
    fn flip_dest_tag(&mut self, idx: usize, b: u8, apply: bool) -> FlipEffect {
        if b >= self.tag_width() {
            return FlipEffect::Masked(MaskReason::UnAceBits);
        }
        let e = &self.pipe.rob[idx];
        let Some(dest_preg) = e.dest_preg else {
            // No result to misdirect.
            return FlipEffect::Masked(MaskReason::Idle);
        };
        let victim = dest_preg ^ (1u32 << b);
        if victim as usize >= self.pipe.cfg.phys_regs {
            // An implemented tag bit flipped the number past the
            // physical file: no such register exists.
            return FlipEffect::Diverged;
        }
        if e.is_complete(self.pipe.cycle) {
            // Writeback already consumed the tag; its remaining use is
            // commit bookkeeping — freeing and mapping the wrong
            // register. Detected.
            return self.trap(apply);
        }
        let Some(victim_arch) = self.pipe.rf.arch_of_newest(victim) else {
            return FlipEffect::Masked(MaskReason::DeadTarget);
        };
        let value = e.outcome.expect("right-path def has an outcome").value;
        if apply {
            let seq = e.seq;
            self.replay_seed(seq, vec![(victim_arch, value)]);
        }
        FlipEffect::Armed
    }

    /// Re-executes in-flight entry `idx` as the (possibly re-decoded)
    /// micro-op `inst` with source values `vals` and compares against
    /// its original oracle outcome: a reproduced outcome is benign
    /// ([`MaskReason::ReplayClean`]); a changed one is applied and
    /// replayed through the in-flight window.
    fn replay_corrupted_uop(
        &mut self,
        idx: usize,
        inst: Inst,
        vals: [u64; 2],
        apply: bool,
    ) -> FlipEffect {
        let e = &self.pipe.rob[idx];
        let out = e.outcome.expect("right-path entry has an outcome");
        let (pc, seq) = (e.pc, e.seq);
        let new_out = avf_isa::replay_eval(&inst, pc, vals[0], vals[1], &self.pipe.oracle_mem);
        if inst.op.is_branch() {
            if new_out.taken == out.taken {
                return FlipEffect::Masked(MaskReason::ReplayClean);
            }
            // The corrupted micro-op steers control off the fetched
            // history: detected divergence.
            return self.trap(apply);
        }
        if inst.op.is_store() {
            if (new_out.ea, new_out.size, new_out.value) == (out.ea, out.size, out.value) {
                return FlipEffect::Masked(MaskReason::ReplayClean);
            }
            if apply {
                // The corrupted write reaches memory; the original
                // (clean) write is not un-written, as in the store-tag
                // model.
                let ea = new_out.ea.expect("store has an effective address");
                match new_out.size.expect("store has a size") {
                    AccessSize::Word => self.pipe.oracle_mem.write_u32(ea, new_out.value as u32),
                    AccessSize::Quad => self.pipe.oracle_mem.write_u64(ea, new_out.value),
                }
                self.pipe.rob[idx].outcome = Some(new_out);
            }
            return FlipEffect::Armed;
        }
        // Value producers (ALU ops, loads).
        let Some(dest) = inst.dest_reg() else {
            return FlipEffect::Masked(MaskReason::Idle);
        };
        if new_out.value == out.value {
            return FlipEffect::Masked(MaskReason::ReplayClean);
        }
        if apply {
            self.pipe.rob[idx].outcome = Some(new_out);
            self.replay_seed(seq, vec![(dest.number(), new_out.value)]);
        }
        FlipEffect::Armed
    }

    /// Runs the in-flight replay walk, recording a control divergence
    /// as a detected error (the simplified oracle cannot re-steer the
    /// already-fetched path).
    fn replay_seed(&mut self, after_seq: u64, delta: Vec<(u8, u64)>) {
        if let ReplayEnd::ControlDiverged { .. } = self.pipe.replay_forward(after_seq, delta) {
            self.pipe.trapped = true;
        }
    }

    fn flip_lsq(&mut self, idx: usize, bit: u32, class: OpClass, apply: bool) -> FlipEffect {
        let Some(rob_idx) = self
            .pipe
            .rob
            .iter()
            .enumerate()
            .filter(|(_, e)| e.inst.op.class() == class)
            .map(|(i, _)| i)
            .nth(idx)
        else {
            return FlipEffect::Masked(MaskReason::Vacant);
        };
        let e = &self.pipe.rob[rob_idx];
        if e.wrong_path {
            return FlipEffect::Masked(MaskReason::WrongPath);
        }
        let outcome = e.outcome.expect("right-path memory op has an outcome");
        let ea = outcome.ea.expect("memory op has an effective address");
        let size = outcome.size.expect("memory op has an access size");
        let is_load = class == OpClass::Load;
        if bit < 64 {
            // Tag half: the access goes to a wrong address.
            let flipped_ea = ea ^ (1u64 << bit);
            if is_load {
                // The load returns whatever lives at the corrupted
                // address.
                let wrong = match size {
                    AccessSize::Word => u64::from(self.pipe.oracle_mem.read_u32(flipped_ea)),
                    AccessSize::Quad => self.pipe.oracle_mem.read_u64(flipped_ea),
                };
                if self.fault_model == FaultModel::Replay {
                    // The wrong-address load is a replayed micro-op:
                    // its (different) result reaches not-yet-issued
                    // in-flight consumers, not just future fetches.
                    let Some(dest) = e.inst.dest_reg() else {
                        return FlipEffect::Masked(MaskReason::Idle);
                    };
                    if wrong == outcome.value {
                        // The corrupted address holds the right value.
                        return FlipEffect::Masked(MaskReason::ReplayClean);
                    }
                    if apply {
                        let seq = e.seq;
                        let mut new_out = outcome;
                        new_out.ea = Some(flipped_ea);
                        new_out.value = wrong;
                        self.pipe.rob[rob_idx].outcome = Some(new_out);
                        self.replay_seed(seq, vec![(dest.number(), wrong)]);
                    }
                    return FlipEffect::Armed;
                }
                return self.set_result_value(rob_idx, wrong, apply);
            }
            // Approximation: the misdirected store corrupts the flipped
            // address; the clean value it already wrote at the original
            // address is not un-written (the oracle ran at fetch).
            if apply {
                match size {
                    AccessSize::Word => {
                        self.pipe
                            .oracle_mem
                            .write_u32(flipped_ea, outcome.value as u32);
                    }
                    AccessSize::Quad => self.pipe.oracle_mem.write_u64(flipped_ea, outcome.value),
                }
            }
            return FlipEffect::Armed;
        }
        // Data half: only valid inside the window the ACE analysis
        // credits (after the fill returns for loads, after issue for
        // stores), and only the bytes the access actually uses.
        let data_bit = bit - 64;
        if u64::from(data_bit) >= size.bits() {
            return FlipEffect::Masked(MaskReason::UnAceBits);
        }
        if is_load {
            if e.data_return_cycle == 0 || self.pipe.cycle < e.data_return_cycle {
                return FlipEffect::Masked(MaskReason::NotYetValid);
            }
            return self.flip_result_value(rob_idx, data_bit, apply);
        }
        if e.stage == Stage::InIq {
            return FlipEffect::Masked(MaskReason::NotYetValid);
        }
        // Store data corrupts the in-memory copy the commit writes.
        if apply {
            let addr = ea + u64::from(data_bit / 8);
            let byte = self.pipe.oracle_mem.read_u8(addr);
            self.pipe
                .oracle_mem
                .write_u8(addr, byte ^ (1 << (data_bit % 8)));
        }
        FlipEffect::Armed
    }

    /// Overwrites (rather than XORs) the in-flight destination value —
    /// used when a wrong-address load replaces the whole result.
    fn set_result_value(&mut self, idx: usize, value: u64, apply: bool) -> FlipEffect {
        let e = &self.pipe.rob[idx];
        let (Some(dest), Some(dest_preg)) = (e.inst.dest_reg(), e.dest_preg) else {
            return FlipEffect::Masked(MaskReason::Idle);
        };
        if self.pipe.rf.rename_src(dest.number()) != dest_preg {
            return FlipEffect::Masked(MaskReason::Overwritten);
        }
        if apply {
            // If the wrong address happens to hold the right value the
            // write is a no-op: a benign fault the run classifies as
            // masked by comparing equal.
            self.pipe.oracle.regs[dest.index()] = value;
        }
        FlipEffect::Armed
    }

    /// Cache data-array flip. The fault is registered *in the line*,
    /// not in memory: loads that hit the line at their timing-accurate
    /// issue point consume the corrupted bytes (propagating through
    /// their destination register), stores over the bytes repair it, a
    /// dirty eviction writes it down the hierarchy (ultimately making
    /// it architectural), and a clean eviction discards it — the next
    /// fill restores clean data, exactly as in hardware.
    fn flip_cache_line(&mut self, dl1: bool, idx: usize, bit: u32, apply: bool) -> FlipEffect {
        let cache = if dl1 { &self.pipe.dl1 } else { &self.pipe.l2 };
        let Some(base) = cache.valid_line(idx) else {
            return FlipEffect::Masked(MaskReason::Vacant);
        };
        if apply {
            let addr = base + u64::from(bit / 8);
            let mask = 1u8 << (bit % 8);
            self.pipe.cache_faults.push(crate::pipeline::CacheFault {
                dl1,
                line_base: base,
                addr,
                mask,
            });
        }
        FlipEffect::Armed
    }
}

/// Periodic serialized checkpoints of the fault-free run.
///
/// Built once per campaign by [`golden_run_checkpointed`]; trial workers
/// call [`InjectionSim::restore_nearest`] to jump to the checkpoint at or
/// before their injection cycle, turning per-trial setup from `O(cycle)`
/// prefix replay into `O(interval)`. Checkpoints are plain byte blobs
/// ([`PipelineSnapshot::to_wire`]), so a store can also be handed to
/// another process or machine holding the same configuration and program.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    interval: u64,
    /// `(cycle, blob)` in strictly ascending cycle order; always starts
    /// with the cycle-0 initial state, so `nearest` never comes up empty.
    checkpoints: Vec<(u64, Vec<u8>)>,
}

impl CheckpointStore {
    /// Requested checkpoint spacing in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of stored checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Total serialized size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.checkpoints.iter().map(|(_, b)| b.len()).sum()
    }

    /// The latest checkpoint at or before `cycle`.
    #[must_use]
    pub fn nearest(&self, cycle: u64) -> Option<(u64, &[u8])> {
        let idx = self.checkpoints.partition_point(|&(c, _)| c <= cycle);
        let (c, bytes) = self.checkpoints.get(idx.checked_sub(1)?)?;
        Some((*c, bytes.as_slice()))
    }

    /// Serializes the whole store (interval plus every checkpoint blob)
    /// into a wire writer — the payload a campaign service ships to a
    /// remote worker so trial execution there starts from checkpoints
    /// instead of replaying the fault-free prefix.
    pub fn encode(&self, w: &mut avf_isa::wire::WireWriter) {
        w.u64(self.interval);
        w.usize(self.checkpoints.len());
        for (cycle, blob) in &self.checkpoints {
            w.u64(*cycle);
            w.usize(blob.len());
            w.bytes(blob);
        }
    }

    /// Decodes a store written by [`CheckpointStore::encode`],
    /// validating the structural invariants `nearest` relies on (a
    /// cycle-0 checkpoint first, strictly ascending cycles). The blobs
    /// themselves are validated lazily by [`CheckpointStore::decode_all`]
    /// against the worker's machine and program.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or a store whose cycle
    /// index is unusable.
    pub fn decode(r: &mut avf_isa::wire::WireReader<'_>) -> Result<CheckpointStore, WireError> {
        let interval = r.u64()?;
        if interval == 0 {
            return Err(WireError::Invalid("checkpoint interval must be positive"));
        }
        // Each checkpoint costs at least cycle (8) + blob length (8).
        let n = r.seq_len(16)?;
        let mut checkpoints = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = r.u64()?;
            let len = r.seq_len(1)?;
            checkpoints.push((cycle, r.bytes(len)?.to_vec()));
        }
        let starts_at_zero = checkpoints.first().is_some_and(|&(c, _)| c == 0);
        let ascending = checkpoints.windows(2).all(|w| w[0].0 < w[1].0);
        if !starts_at_zero || !ascending {
            return Err(WireError::Invalid(
                "checkpoint store must start at cycle 0 with ascending cycles",
            ));
        }
        Ok(CheckpointStore {
            interval,
            checkpoints,
        })
    }

    /// Decodes every checkpoint once for in-process use, so a campaign
    /// restoring from the store per worker per batch pays one decode
    /// per checkpoint instead of one per restore ([`Pipeline`] restores
    /// from the decoded snapshot by deep clone, the same cost as a v1
    /// in-memory fork).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if any blob does not decode against
    /// `config`/`program`.
    pub fn decode_all(
        &self,
        config: &MachineConfig,
        program: &Program,
    ) -> Result<DecodedCheckpoints, WireError> {
        let mut checkpoints = Vec::with_capacity(self.checkpoints.len());
        for (cycle, bytes) in &self.checkpoints {
            checkpoints.push((*cycle, PipelineSnapshot::from_wire(bytes, config, program)?));
        }
        Ok(DecodedCheckpoints {
            interval: self.interval,
            checkpoints,
        })
    }
}

/// An in-memory decoded view of a [`CheckpointStore`]: each serialized
/// checkpoint parsed once into a [`PipelineSnapshot`] that any number
/// of workers can [`InjectionSim::restore`] from.
pub struct DecodedCheckpoints {
    interval: u64,
    checkpoints: Vec<(u64, PipelineSnapshot)>,
}

impl std::fmt::Debug for DecodedCheckpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedCheckpoints")
            .field("interval", &self.interval)
            .field("len", &self.checkpoints.len())
            .finish()
    }
}

impl DecodedCheckpoints {
    /// Requested checkpoint spacing in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of decoded checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the view holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The latest checkpoint at or before `cycle`.
    #[must_use]
    pub fn nearest(&self, cycle: u64) -> Option<(u64, &PipelineSnapshot)> {
        let idx = self.checkpoints.partition_point(|&(c, _)| c <= cycle);
        let (c, snap) = self.checkpoints.get(idx.checked_sub(1)?)?;
        Some((*c, snap))
    }
}

/// Runs the fault-free reference execution for `program` bounded by
/// `instr_budget` commits.
#[must_use]
pub fn golden_run(config: &MachineConfig, program: &Program, instr_budget: u64) -> GoldenRun {
    let mut sim = InjectionSim::new(config, program, instr_budget);
    let end = sim.run_to_end();
    assert!(
        end == RunEnd::Completed,
        "fault-free golden run must complete cleanly, got {end:?}"
    );
    GoldenRun {
        cycles: sim.cycle().max(1),
        committed: sim.committed(),
        digest: sim.memory_digest(),
    }
}

/// [`golden_run`] that also captures a serialized checkpoint every
/// `interval` cycles (plus the cycle-0 initial state).
///
/// # Panics
///
/// Panics if `interval` is zero or the fault-free run does not complete
/// cleanly.
#[must_use]
pub fn golden_run_checkpointed(
    config: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    interval: u64,
) -> (GoldenRun, CheckpointStore) {
    assert!(interval > 0, "checkpoint interval must be positive");
    let mut sim = InjectionSim::new(config, program, instr_budget);
    let mut checkpoints = vec![(0, sim.snapshot_wire())];
    loop {
        let next = sim.cycle().saturating_add(interval);
        if !sim.run_to_cycle(next) {
            break;
        }
        checkpoints.push((sim.cycle(), sim.snapshot_wire()));
    }
    let end = sim.run_to_end();
    assert!(
        end == RunEnd::Completed,
        "fault-free golden run must complete cleanly, got {end:?}"
    );
    (
        GoldenRun {
            cycles: sim.cycle().max(1),
            committed: sim.committed(),
            digest: sim.memory_digest(),
        },
        CheckpointStore {
            interval,
            checkpoints,
        },
    )
}

/// Default cycle-window width for [`PruneEvidence`] folding. Smaller
/// windows bound occupancy tighter (more pruning); larger windows keep
/// the evidence compact. 64 keeps a 50k-cycle run under 1k windows.
pub const PRUNE_WINDOW: u64 = 64;

/// Per-window occupancy and register-deadness evidence recorded during
/// an instrumented golden pass, consumed by the `avf-prune` site
/// classifier.
///
/// All samples are taken at cycle boundaries `c ∈ [1, cycles)` — the
/// exact states a planned trial at cycle `c` observes after
/// [`InjectionSim::run_to_cycle`]`(c)` — and folded conservatively over
/// fixed windows of `window` cycles: occupancies by per-window *max*
/// (an entry index at or past the max is vacant on every cycle of the
/// window), register deadness by per-window *AND* (a register is in a
/// dead window only if it was provably masked on every cycle of it).
///
/// `PartialEq`/`Eq` are load-bearing: in delegated mode every worker
/// derives the evidence (and hence the prune map) itself, and the
/// driver cross-checks bit-identity the same way it does for
/// [`GoldenRun`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneEvidence {
    /// Cycle-window width the per-cycle samples were folded over.
    pub window: u64,
    /// Golden-run cycle count; the samples span cycles `1..cycles`.
    pub cycles: u64,
    /// Per-window maximum ROB occupancy (the ROB is prefix-occupied:
    /// entry indices at or past `rob.len()` are vacant).
    pub rob_max: Vec<u64>,
    /// Per-window maximum count of in-IQ micro-ops (the flip engine
    /// indexes the IQ by compaction over `Stage::InIq` entries).
    pub iq_max: Vec<u64>,
    /// Per-window maximum count of in-flight loads (LQ compaction
    /// index space).
    pub lq_max: Vec<u64>,
    /// Per-window maximum count of in-flight stores (SQ compaction
    /// index space).
    pub sq_max: Vec<u64>,
    /// Per-window maximum DTLB residency (the DTLB fills bottom-up;
    /// entries at or past `resident()` are vacant).
    pub dtlb_max: Vec<u64>,
    /// Per-window AND-folded register-deadness bitmaps
    /// (`ceil(phys_regs / 64)` words per window): bit `p` set means
    /// physical register `p` was free or held a superseded definition
    /// on *every* cycle of the window — exactly the two conditions
    /// `flip_regfile` masks on.
    pub rf_dead: Vec<Vec<u64>>,
}

impl PruneEvidence {
    fn new(window: u64) -> PruneEvidence {
        PruneEvidence {
            window,
            cycles: 1,
            rob_max: Vec::new(),
            iq_max: Vec::new(),
            lq_max: Vec::new(),
            sq_max: Vec::new(),
            dtlb_max: Vec::new(),
            rf_dead: Vec::new(),
        }
    }

    /// Number of evidence windows covering the sampled cycle space.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.rob_max.len()
    }
}

/// [`golden_run_checkpointed`] that additionally records the per-cycle
/// occupancy/deadness evidence the pre-campaign site classifier
/// consumes. The checkpoint store and golden run are bit-identical to
/// the uninstrumented pass (the evidence is read-only observation).
///
/// # Panics
///
/// Panics if `interval` or `window` is zero or the fault-free run does
/// not complete cleanly.
#[must_use]
pub fn golden_run_with_evidence(
    config: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    interval: u64,
    window: u64,
) -> (GoldenRun, CheckpointStore, PruneEvidence) {
    assert!(interval > 0, "checkpoint interval must be positive");
    assert!(window > 0, "evidence window must be positive");
    let mut sim = InjectionSim::new(config, program, instr_budget);
    let mut checkpoints = vec![(0, sim.snapshot_wire())];
    let mut ev = PruneEvidence::new(window);
    let rf_words = config.phys_regs.div_ceil(64);
    loop {
        if sim.pipe.done(sim.instr_budget) || sim.pipe.cycle >= sim.cycle_budget {
            break;
        }
        sim.pipe.tick(sim.instr_budget);
        let c = sim.pipe.cycle;
        let w = ((c - 1) / window) as usize;
        if w == ev.rob_max.len() {
            ev.rob_max.push(0);
            ev.iq_max.push(0);
            ev.lq_max.push(0);
            ev.sq_max.push(0);
            ev.dtlb_max.push(0);
            ev.rf_dead.push(vec![u64::MAX; rf_words]);
        }
        let (mut iq, mut lq, mut sq) = (0u64, 0u64, 0u64);
        for e in sim.pipe.rob.iter() {
            if e.stage == Stage::InIq {
                iq += 1;
            }
            match e.inst.op.class() {
                OpClass::Load => lq += 1,
                OpClass::Store => sq += 1,
                _ => {}
            }
        }
        ev.rob_max[w] = ev.rob_max[w].max(sim.pipe.rob.len() as u64);
        ev.iq_max[w] = ev.iq_max[w].max(iq);
        ev.lq_max[w] = ev.lq_max[w].max(lq);
        ev.sq_max[w] = ev.sq_max[w].max(sq);
        ev.dtlb_max[w] = ev.dtlb_max[w].max(sim.pipe.dtlb.resident() as u64);
        let dead = &mut ev.rf_dead[w];
        for p in 0..config.phys_regs as u32 {
            let masked = sim.pipe.rf.is_free(p) || sim.pipe.rf.arch_of_newest(p).is_none();
            if !masked {
                dead[(p / 64) as usize] &= !(1u64 << (p % 64));
            }
        }
        if c.is_multiple_of(interval) {
            checkpoints.push((c, sim.snapshot_wire()));
        }
    }
    let end = sim.run_to_end();
    assert!(
        end == RunEnd::Completed,
        "fault-free golden run must complete cleanly, got {end:?}"
    );
    ev.cycles = sim.cycle().max(1);
    (
        GoldenRun {
            cycles: sim.cycle().max(1),
            committed: sim.committed(),
            digest: sim.memory_digest(),
        },
        CheckpointStore {
            interval,
            checkpoints,
        },
        ev,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_isa::{Opcode, ProgramBuilder, Reg};

    fn counted_loop() -> Program {
        let r1 = Reg::of(1);
        let r2 = Reg::of(2);
        let rb = Reg::of(3);
        let mut b = ProgramBuilder::new("inject-test");
        b.addi(r1, Reg::ZERO, 64);
        b.load_addr(rb, avf_isa::DATA_BASE);
        let top = b.here();
        b.alu_ri(Opcode::Add, r2, r2, 3);
        b.stq(r2, rb, 0);
        b.subi(r1, r1, 1);
        b.bne(r1, top);
        b.halt();
        b.build().expect("valid program")
    }

    #[test]
    fn golden_run_is_deterministic() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let a = golden_run(&cfg, &p, 10_000);
        let b = golden_run(&cfg, &p, 10_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let golden = golden_run(&cfg, &p, 10_000);
        let mut sim = InjectionSim::new(&cfg, &p, 10_000);
        assert!(sim.run_to_cycle(golden.cycles / 2));
        let snap = sim.snapshot();
        let end_a = sim.run_to_end();
        let digest_a = sim.memory_digest();
        sim.restore(&snap);
        let end_b = sim.run_to_end();
        let digest_b = sim.memory_digest();
        assert_eq!(end_a, end_b);
        assert_eq!(digest_a, digest_b);
        assert_eq!(digest_a, golden.digest, "fault-free replay matches golden");
    }

    #[test]
    fn flip_in_live_register_changes_output() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let golden = golden_run(&cfg, &p, 10_000);
        let mut sim = InjectionSim::new(&cfg, &p, 10_000);
        assert!(sim.run_to_cycle(golden.cycles / 2));
        // r2 is the accumulator; its newest definition sits in the preg
        // the speculative map points at.
        let mut flipped = false;
        for preg in 0..cfg.phys_regs as u64 {
            let snap = sim.snapshot();
            if sim.flip_bit(InjectionTarget::RegFile, preg, 0) == FlipEffect::Armed {
                flipped = true;
                let end = sim.run_to_end();
                if end == RunEnd::Completed && sim.memory_digest() != golden.digest {
                    return; // observed an SDC — the seam works
                }
            }
            sim.restore(&snap);
        }
        assert!(flipped, "no register flip armed at mid-run");
        panic!("no register flip produced an SDC in a live accumulator loop");
    }

    #[test]
    fn wire_snapshot_round_trips_across_instances() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let golden = golden_run(&cfg, &p, 10_000);
        let mut sim = InjectionSim::new(&cfg, &p, 10_000);
        assert!(sim.run_to_cycle(golden.cycles / 2));
        let bytes = sim.snapshot_wire();
        let end_a = sim.run_to_end();
        let digest_a = sim.memory_digest();
        let cycles_a = sim.cycle();
        // Restore onto a *fresh* instance: the blob must be self-contained.
        let mut other = InjectionSim::new(&cfg, &p, 10_000);
        other.restore_wire(&bytes).expect("blob decodes");
        assert_eq!(other.cycle(), golden.cycles / 2);
        let end_b = other.run_to_end();
        assert_eq!(end_a, end_b);
        assert_eq!(digest_a, other.memory_digest());
        assert_eq!(cycles_a, other.cycle(), "timing replays identically");
        assert_eq!(digest_a, golden.digest);
    }

    #[test]
    fn wire_snapshot_rejects_geometry_mismatch() {
        // A checkpoint from the baseline machine must not decode on
        // config-a (96 phys regs, 512 TLB entries): restoring it would
        // leave the pipeline indexing structures out of bounds.
        let base = MachineConfig::baseline();
        let p = counted_loop();
        let mut sim = InjectionSim::new(&base, &p, 10_000);
        assert!(sim.run_to_cycle(50));
        let bytes = sim.snapshot_wire();
        let a = MachineConfig::config_a();
        let mut other = InjectionSim::new(&a, &p, 10_000);
        assert!(other.restore_wire(&bytes).is_err());
    }

    #[test]
    fn decoded_checkpoints_match_wire_restores() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let (golden, store) = golden_run_checkpointed(&cfg, &p, 10_000, 40);
        let decoded = store.decode_all(&cfg, &p).expect("own store decodes");
        assert_eq!(decoded.len(), store.len());
        assert_eq!(decoded.interval(), store.interval());
        for target in [0, 39, 40, golden.cycles / 2, golden.cycles] {
            let via_wire = store.nearest(target).map(|(c, _)| c);
            let via_decoded = decoded.nearest(target).map(|(c, _)| c);
            assert_eq!(via_wire, via_decoded);
            if let Some((c, snap)) = decoded.nearest(target) {
                let mut sim = InjectionSim::new(&cfg, &p, 10_000);
                sim.restore(snap);
                assert_eq!(sim.cycle(), c);
            }
        }
    }

    #[test]
    fn wire_snapshot_rejects_garbage() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let mut sim = InjectionSim::new(&cfg, &p, 10_000);
        assert!(sim.restore_wire(&[]).is_err());
        assert!(sim.restore_wire(&[0xFF; 64]).is_err());
        let mut bytes = sim.snapshot_wire();
        bytes.truncate(bytes.len() / 2);
        assert!(sim.restore_wire(&bytes).is_err());
    }

    #[test]
    fn restore_nearest_matches_full_prefix_replay() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let (golden, store) = golden_run_checkpointed(&cfg, &p, 10_000, 32);
        assert!(store.len() >= 2, "loop is long enough for checkpoints");
        for target in [1, golden.cycles / 3, golden.cycles / 2, golden.cycles - 1] {
            // Full-prefix replay.
            let mut slow = InjectionSim::new(&cfg, &p, 10_000);
            assert!(slow.run_to_cycle(target));
            // Checkpoint restore + O(interval) catch-up.
            let mut fast = InjectionSim::new(&cfg, &p, 10_000);
            let at = fast
                .restore_nearest(&store, target)
                .expect("store non-empty");
            assert!(at <= target && target - at <= store.interval());
            assert!(fast.run_to_cycle(target));
            assert_eq!(slow.cycle(), fast.cycle());
            assert_eq!(slow.committed(), fast.committed());
            assert_eq!(slow.memory_digest(), fast.memory_digest());
            assert_eq!(
                slow.snapshot_wire(),
                fast.snapshot_wire(),
                "whole state at cycle {target}"
            );
        }
    }

    #[test]
    fn checkpoint_store_nearest_picks_floor() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let (golden, store) = golden_run_checkpointed(&cfg, &p, 10_000, 50);
        let (c0, _) = store.nearest(0).expect("cycle-0 checkpoint");
        assert_eq!(c0, 0);
        let (c, _) = store.nearest(golden.cycles).expect("some checkpoint");
        assert!(c <= golden.cycles);
        let (c49, _) = store.nearest(49).expect("floor of 49");
        assert_eq!(c49, 0, "no checkpoint strictly between 0 and 50");
    }

    #[test]
    fn checkpoint_store_wire_round_trips() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let (_, store) = golden_run_checkpointed(&cfg, &p, 10_000, 40);
        let mut w = avf_isa::wire::WireWriter::new();
        store.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = avf_isa::wire::WireReader::new(&bytes);
        let back = CheckpointStore::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.interval(), store.interval());
        assert_eq!(back.len(), store.len());
        // The decoded store restores simulators exactly like the original.
        back.decode_all(&cfg, &p).expect("blobs decode");
        for cut in [0, 8, bytes.len() - 1] {
            let mut r = avf_isa::wire::WireReader::new(&bytes[..cut]);
            assert!(CheckpointStore::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn injection_target_wire_codes_round_trip() {
        for t in InjectionTarget::ALL {
            assert_eq!(InjectionTarget::from_wire_code(t.wire_code()), Some(t));
        }
        assert_eq!(InjectionTarget::from_wire_code(200), None);
    }

    #[test]
    fn vacant_entries_mask() {
        let cfg = MachineConfig::baseline();
        let p = counted_loop();
        let mut sim = InjectionSim::new(&cfg, &p, 10_000);
        // Cycle 0: nothing is in flight yet.
        assert_eq!(
            sim.flip_bit(InjectionTarget::Rob, 50, 3),
            FlipEffect::Masked(MaskReason::Vacant)
        );
        assert_eq!(
            sim.flip_bit(InjectionTarget::Dtlb, 200, 3),
            FlipEffect::Masked(MaskReason::Vacant)
        );
    }
}
