use avf_ace::StructureSizes;
use avf_isa::wire::{WireError, WireReader, WireWriter};

/// Geometry and latency of one cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> u32 {
        (self.size_bytes / u64::from(self.line_bytes)) as u32
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.lines() / self.ways
    }

    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.size_bytes);
        w.u32(self.ways);
        w.u32(self.line_bytes);
        w.u32(self.latency);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<CacheConfig, WireError> {
        let c = CacheConfig {
            size_bytes: r.u64()?,
            ways: r.u32()?,
            line_bytes: r.u32()?,
            latency: r.u32()?,
        };
        // The geometry arithmetic (lines, sets, index masks) divides by
        // these — a zero smuggled over the wire would panic a worker —
        // and the line/set arrays are allocated eagerly, so a crafted
        // multi-terabyte cache must fail here, not OOM the allocator.
        if c.line_bytes == 0
            || c.ways == 0
            || c.size_bytes == 0
            || c.size_bytes > 1 << 30
            || c.line_bytes > 1 << 16
            || !c.size_bytes.is_multiple_of(u64::from(c.line_bytes))
            || c.lines() == 0
            || !c.lines().is_multiple_of(c.ways)
        {
            return Err(WireError::Invalid("degenerate cache geometry"));
        }
        Ok(c)
    }
}

/// Hybrid (tournament) branch predictor geometry, per the paper's Table I:
/// 4K-entry global, 2-level 1K local, 4K choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpredConfig {
    /// Global predictor entries (2-bit counters indexed by global history).
    pub global_entries: u32,
    /// Local history table entries.
    pub local_hist_entries: u32,
    /// Bits of local history per entry.
    pub local_hist_bits: u32,
    /// Local predictor entries (3-bit counters indexed by local history).
    pub local_counter_entries: u32,
    /// Choice predictor entries (2-bit counters indexed by global history).
    pub choice_entries: u32,
}

impl BpredConfig {
    /// Table I predictor: hybrid, 4K global, 2-level 1K local, 4K choice.
    #[must_use]
    pub fn ev6() -> BpredConfig {
        BpredConfig {
            global_entries: 4096,
            local_hist_entries: 1024,
            local_hist_bits: 10,
            local_counter_entries: 1024,
            choice_entries: 4096,
        }
    }
}

/// Full machine configuration.
///
/// [`MachineConfig::baseline`] reproduces the paper's Table I (an Alpha
/// 21264 / EV6 integer pipeline); [`MachineConfig::config_a`] reproduces
/// Table II. Latencies the paper does not state (main memory, DTLB miss)
/// have documented defaults (DESIGN.md §7).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Configuration name, used in reports.
    pub name: String,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Memory operations issued per cycle (the Alpha 21264 allows two;
    /// paper Section III).
    pub mem_issue_width: u32,
    /// Fetch queue capacity.
    pub fetch_queue: usize,
    /// Integer issue queue entries.
    pub iq_entries: usize,
    /// Re-order buffer entries.
    pub rob_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Physical (rename) integer registers.
    pub phys_regs: usize,
    /// Single-cycle integer ALUs.
    pub n_alus: u32,
    /// Integer multipliers.
    pub n_muls: u32,
    /// ALU latency in cycles.
    pub alu_latency: u32,
    /// Multiplier latency in cycles.
    pub mul_latency: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u32,
    /// Branch predictor geometry.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// DTLB entries (fully associative).
    pub dtlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// DTLB miss penalty in cycles.
    pub dtlb_miss_penalty: u32,
    /// Main memory latency in cycles.
    pub mem_latency: u32,
}

impl MachineConfig {
    /// The paper's Table I baseline configuration.
    #[must_use]
    pub fn baseline() -> MachineConfig {
        MachineConfig {
            name: "Baseline".to_owned(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            mem_issue_width: 2,
            fetch_queue: 16,
            iq_entries: 20,
            rob_entries: 80,
            lq_entries: 32,
            sq_entries: 32,
            phys_regs: 80,
            n_alus: 4,
            n_muls: 1,
            alu_latency: 1,
            mul_latency: 7,
            mispredict_penalty: 7,
            bpred: BpredConfig::ev6(),
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            dl1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 1,
                line_bytes: 64,
                latency: 7,
            },
            dtlb_entries: 256,
            page_bytes: 8192,
            dtlb_miss_penalty: 30,
            mem_latency: 160,
        }
    }

    /// The paper's Table II "Configuration A": larger IQ (32), ROB (96),
    /// rename file (96), 4 multipliers, 4-way DL1, 512-entry DTLB, 2 MB
    /// 8-way L2 with 12-cycle latency.
    #[must_use]
    pub fn config_a() -> MachineConfig {
        let mut c = MachineConfig::baseline();
        c.name = "Config A".to_owned();
        c.iq_entries = 32;
        c.rob_entries = 96;
        c.phys_regs = 96;
        c.n_muls = 4;
        c.dl1 = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 3,
        };
        c.dtlb_entries = 512;
        c.l2 = CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 12,
        };
        c
    }

    /// Derives the ACE-analysis structure sizes from this configuration.
    ///
    /// Per-entry bit widths follow Table I (ROB 76, IQ 32, LQ/SQ 128 split
    /// 64 tag + 64 data, registers 64); the paper states Config A keeps the
    /// same entry widths.
    #[must_use]
    pub fn structure_sizes(&self) -> StructureSizes {
        StructureSizes {
            rob_entries: self.rob_entries as u32,
            rob_entry_bits: 76,
            iq_entries: self.iq_entries as u32,
            iq_entry_bits: 32,
            lq_entries: self.lq_entries as u32,
            sq_entries: self.sq_entries as u32,
            lsq_tag_bits: 64,
            lsq_data_bits: 64,
            n_alus: self.n_alus,
            n_muls: self.n_muls,
            mul_latency: self.mul_latency,
            fu_stage_bits: 192,
            rf_regs: self.phys_regs as u32,
            rf_reg_bits: 64,
            dl1_lines: self.dl1.lines(),
            line_bytes: self.dl1.line_bytes,
            dl1_tag_bits: 32,
            l2_lines: self.l2.lines(),
            l2_tag_bits: 32,
            dtlb_entries: self.dtlb_entries as u32,
            dtlb_entry_bits: 64,
        }
    }

    /// Memory footprint needed to cover every DTLB page (the stressmark's
    /// "page size × DTLB entries" allocation, Figure 2).
    #[must_use]
    pub fn dtlb_reach_bytes(&self) -> u64 {
        self.page_bytes * self.dtlb_entries as u64
    }

    /// Serializes the full configuration into a wire writer, so a
    /// campaign job can carry the exact machine it was planned against
    /// to a remote worker (checkpoint blobs only decode against the
    /// matching geometry).
    pub fn encode(&self, w: &mut WireWriter) {
        w.str(&self.name);
        for v in [
            self.fetch_width,
            self.dispatch_width,
            self.issue_width,
            self.commit_width,
            self.mem_issue_width,
        ] {
            w.u32(v);
        }
        for v in [
            self.fetch_queue,
            self.iq_entries,
            self.rob_entries,
            self.lq_entries,
            self.sq_entries,
            self.phys_regs,
        ] {
            w.usize(v);
        }
        for v in [
            self.n_alus,
            self.n_muls,
            self.alu_latency,
            self.mul_latency,
            self.mispredict_penalty,
        ] {
            w.u32(v);
        }
        for v in [
            self.bpred.global_entries,
            self.bpred.local_hist_entries,
            self.bpred.local_hist_bits,
            self.bpred.local_counter_entries,
            self.bpred.choice_entries,
        ] {
            w.u32(v);
        }
        self.l1i.encode(w);
        self.dl1.encode(w);
        self.l2.encode(w);
        w.usize(self.dtlb_entries);
        w.u64(self.page_bytes);
        w.u32(self.dtlb_miss_penalty);
        w.u32(self.mem_latency);
    }

    /// Decodes a configuration written by [`MachineConfig::encode`],
    /// rejecting degenerate geometry that would panic the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or impossible geometry.
    pub fn decode(r: &mut WireReader<'_>) -> Result<MachineConfig, WireError> {
        let name = r.str()?;
        let fetch_width = r.u32()?;
        let dispatch_width = r.u32()?;
        let issue_width = r.u32()?;
        let commit_width = r.u32()?;
        let mem_issue_width = r.u32()?;
        let fetch_queue = r.usize()?;
        let iq_entries = r.usize()?;
        let rob_entries = r.usize()?;
        let lq_entries = r.usize()?;
        let sq_entries = r.usize()?;
        let phys_regs = r.usize()?;
        let n_alus = r.u32()?;
        let n_muls = r.u32()?;
        let alu_latency = r.u32()?;
        let mul_latency = r.u32()?;
        let mispredict_penalty = r.u32()?;
        let bpred = BpredConfig {
            global_entries: r.u32()?,
            local_hist_entries: r.u32()?,
            local_hist_bits: r.u32()?,
            local_counter_entries: r.u32()?,
            choice_entries: r.u32()?,
        };
        let l1i = CacheConfig::decode(r)?;
        let dl1 = CacheConfig::decode(r)?;
        let l2 = CacheConfig::decode(r)?;
        let dtlb_entries = r.usize()?;
        let page_bytes = r.u64()?;
        let dtlb_miss_penalty = r.u32()?;
        let mem_latency = r.u32()?;
        // Upper bounds matter as much as the lower ones: queue sizes
        // feed `with_capacity` and array allocations in the simulator,
        // so a crafted config with rob_entries = 1<<60 would panic (or
        // OOM) a worker instead of failing with this typed error. The
        // caps are orders of magnitude beyond any machine the paper's
        // methodology models.
        const MAX_ENTRIES: usize = 1 << 20;
        const MAX_WIDTH: u32 = 1 << 10;
        let widths_ok = (1..=MAX_WIDTH).contains(&fetch_width)
            && (1..=MAX_WIDTH).contains(&dispatch_width)
            && (1..=MAX_WIDTH).contains(&issue_width)
            && (1..=MAX_WIDTH).contains(&commit_width)
            && (1..=MAX_WIDTH).contains(&mem_issue_width)
            && (1..=MAX_WIDTH).contains(&n_alus)
            && n_muls <= MAX_WIDTH;
        let queues_ok = (1..=MAX_ENTRIES).contains(&fetch_queue)
            && (1..=MAX_ENTRIES).contains(&iq_entries)
            && (1..=MAX_ENTRIES).contains(&rob_entries)
            && (1..=MAX_ENTRIES).contains(&lq_entries)
            && (1..=MAX_ENTRIES).contains(&sq_entries)
            && (1..=MAX_ENTRIES).contains(&dtlb_entries)
            && (avf_isa::Reg::COUNT..=MAX_ENTRIES).contains(&phys_regs);
        let bpred_ok = bpred.global_entries.is_power_of_two()
            && bpred.local_hist_entries.is_power_of_two()
            && bpred.local_counter_entries.is_power_of_two()
            && bpred.choice_entries.is_power_of_two()
            && bpred.global_entries as usize <= MAX_ENTRIES
            && bpred.local_hist_entries as usize <= MAX_ENTRIES
            && bpred.local_counter_entries as usize <= MAX_ENTRIES
            && bpred.choice_entries as usize <= MAX_ENTRIES
            && bpred.local_hist_bits > 0
            && bpred.local_hist_bits < 32;
        let pages_ok = page_bytes.is_power_of_two() && page_bytes <= 1 << 30;
        if !(widths_ok && queues_ok && bpred_ok && pages_ok) {
            return Err(WireError::Invalid("degenerate machine configuration"));
        }
        Ok(MachineConfig {
            name,
            fetch_width,
            dispatch_width,
            issue_width,
            commit_width,
            mem_issue_width,
            fetch_queue,
            iq_entries,
            rob_entries,
            lq_entries,
            sq_entries,
            phys_regs,
            n_alus,
            n_muls,
            alu_latency,
            mul_latency,
            mispredict_penalty,
            bpred,
            l1i,
            dl1,
            l2,
            dtlb_entries,
            page_bytes,
            dtlb_miss_penalty,
            mem_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_i() {
        let c = MachineConfig::baseline();
        assert_eq!(c.iq_entries, 20);
        assert_eq!(c.rob_entries, 80);
        assert_eq!(c.phys_regs, 80);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.n_alus, 4);
        assert_eq!(c.n_muls, 1);
        assert_eq!(c.mul_latency, 7);
        assert_eq!(c.mispredict_penalty, 7);
        assert_eq!(c.dl1.latency, 3);
        assert_eq!(c.l2.ways, 1);
        assert_eq!(c.l2.latency, 7);
        assert_eq!(c.dtlb_entries, 256);
        assert_eq!(c.page_bytes, 8192);
    }

    #[test]
    fn config_a_matches_table_ii() {
        let c = MachineConfig::config_a();
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.phys_regs, 96);
        assert_eq!(c.n_muls, 4);
        assert_eq!(c.dl1.ways, 4);
        assert_eq!(c.dtlb_entries, 512);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 12);
    }

    #[test]
    fn cache_geometry_helpers() {
        let c = MachineConfig::baseline();
        assert_eq!(c.dl1.lines(), 1024);
        assert_eq!(c.dl1.sets(), 512);
        assert_eq!(c.l2.lines(), 16_384);
        assert_eq!(c.l2.sets(), 16_384);
    }

    #[test]
    fn structure_sizes_track_config() {
        let sizes = MachineConfig::config_a().structure_sizes();
        assert_eq!(sizes.rob_entries, 96);
        assert_eq!(sizes.iq_entries, 32);
        assert_eq!(sizes.dtlb_entries, 512);
        assert_eq!(sizes.l2_lines, 32_768);
    }

    #[test]
    fn wire_codec_round_trips() {
        for cfg in [MachineConfig::baseline(), MachineConfig::config_a()] {
            let mut w = WireWriter::new();
            cfg.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = MachineConfig::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn wire_codec_rejects_degenerate_geometry() {
        let mut cfg = MachineConfig::baseline();
        cfg.dl1.line_bytes = 0;
        let mut w = WireWriter::new();
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(MachineConfig::decode(&mut WireReader::new(&bytes)).is_err());

        let mut cfg = MachineConfig::baseline();
        cfg.phys_regs = 4; // fewer than the architected registers
        let mut w = WireWriter::new();
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(MachineConfig::decode(&mut WireReader::new(&bytes)).is_err());

        // A crafted huge queue would feed `with_capacity` in the
        // simulator: the decoder must reject it, not let it panic or
        // OOM a worker.
        let mut cfg = MachineConfig::baseline();
        cfg.rob_entries = 1 << 60;
        let mut w = WireWriter::new();
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(MachineConfig::decode(&mut WireReader::new(&bytes)).is_err());

        let mut cfg = MachineConfig::baseline();
        cfg.l2.size_bytes = 1 << 45; // a 32 TiB cache array
        cfg.l2.ways = 1;
        let mut w = WireWriter::new();
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(MachineConfig::decode(&mut WireReader::new(&bytes)).is_err());

        // Truncation errors instead of panicking.
        let mut w = WireWriter::new();
        MachineConfig::baseline().encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() / 2]);
        assert!(MachineConfig::decode(&mut r).is_err());
    }

    #[test]
    fn dtlb_reach_covers_all_pages() {
        assert_eq!(MachineConfig::baseline().dtlb_reach_bytes(), 8192 * 256);
        assert_eq!(MachineConfig::config_a().dtlb_reach_bytes(), 8192 * 512);
    }
}
