use avf_ace::StructureSizes;

/// Geometry and latency of one cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> u32 {
        (self.size_bytes / u64::from(self.line_bytes)) as u32
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.lines() / self.ways
    }
}

/// Hybrid (tournament) branch predictor geometry, per the paper's Table I:
/// 4K-entry global, 2-level 1K local, 4K choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpredConfig {
    /// Global predictor entries (2-bit counters indexed by global history).
    pub global_entries: u32,
    /// Local history table entries.
    pub local_hist_entries: u32,
    /// Bits of local history per entry.
    pub local_hist_bits: u32,
    /// Local predictor entries (3-bit counters indexed by local history).
    pub local_counter_entries: u32,
    /// Choice predictor entries (2-bit counters indexed by global history).
    pub choice_entries: u32,
}

impl BpredConfig {
    /// Table I predictor: hybrid, 4K global, 2-level 1K local, 4K choice.
    #[must_use]
    pub fn ev6() -> BpredConfig {
        BpredConfig {
            global_entries: 4096,
            local_hist_entries: 1024,
            local_hist_bits: 10,
            local_counter_entries: 1024,
            choice_entries: 4096,
        }
    }
}

/// Full machine configuration.
///
/// [`MachineConfig::baseline`] reproduces the paper's Table I (an Alpha
/// 21264 / EV6 integer pipeline); [`MachineConfig::config_a`] reproduces
/// Table II. Latencies the paper does not state (main memory, DTLB miss)
/// have documented defaults (DESIGN.md §7).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Configuration name, used in reports.
    pub name: String,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Memory operations issued per cycle (the Alpha 21264 allows two;
    /// paper Section III).
    pub mem_issue_width: u32,
    /// Fetch queue capacity.
    pub fetch_queue: usize,
    /// Integer issue queue entries.
    pub iq_entries: usize,
    /// Re-order buffer entries.
    pub rob_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Physical (rename) integer registers.
    pub phys_regs: usize,
    /// Single-cycle integer ALUs.
    pub n_alus: u32,
    /// Integer multipliers.
    pub n_muls: u32,
    /// ALU latency in cycles.
    pub alu_latency: u32,
    /// Multiplier latency in cycles.
    pub mul_latency: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u32,
    /// Branch predictor geometry.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// DTLB entries (fully associative).
    pub dtlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// DTLB miss penalty in cycles.
    pub dtlb_miss_penalty: u32,
    /// Main memory latency in cycles.
    pub mem_latency: u32,
}

impl MachineConfig {
    /// The paper's Table I baseline configuration.
    #[must_use]
    pub fn baseline() -> MachineConfig {
        MachineConfig {
            name: "Baseline".to_owned(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            mem_issue_width: 2,
            fetch_queue: 16,
            iq_entries: 20,
            rob_entries: 80,
            lq_entries: 32,
            sq_entries: 32,
            phys_regs: 80,
            n_alus: 4,
            n_muls: 1,
            alu_latency: 1,
            mul_latency: 7,
            mispredict_penalty: 7,
            bpred: BpredConfig::ev6(),
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            dl1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 1,
                line_bytes: 64,
                latency: 7,
            },
            dtlb_entries: 256,
            page_bytes: 8192,
            dtlb_miss_penalty: 30,
            mem_latency: 160,
        }
    }

    /// The paper's Table II "Configuration A": larger IQ (32), ROB (96),
    /// rename file (96), 4 multipliers, 4-way DL1, 512-entry DTLB, 2 MB
    /// 8-way L2 with 12-cycle latency.
    #[must_use]
    pub fn config_a() -> MachineConfig {
        let mut c = MachineConfig::baseline();
        c.name = "Config A".to_owned();
        c.iq_entries = 32;
        c.rob_entries = 96;
        c.phys_regs = 96;
        c.n_muls = 4;
        c.dl1 = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 3,
        };
        c.dtlb_entries = 512;
        c.l2 = CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 12,
        };
        c
    }

    /// Derives the ACE-analysis structure sizes from this configuration.
    ///
    /// Per-entry bit widths follow Table I (ROB 76, IQ 32, LQ/SQ 128 split
    /// 64 tag + 64 data, registers 64); the paper states Config A keeps the
    /// same entry widths.
    #[must_use]
    pub fn structure_sizes(&self) -> StructureSizes {
        StructureSizes {
            rob_entries: self.rob_entries as u32,
            rob_entry_bits: 76,
            iq_entries: self.iq_entries as u32,
            iq_entry_bits: 32,
            lq_entries: self.lq_entries as u32,
            sq_entries: self.sq_entries as u32,
            lsq_tag_bits: 64,
            lsq_data_bits: 64,
            n_alus: self.n_alus,
            n_muls: self.n_muls,
            mul_latency: self.mul_latency,
            fu_stage_bits: 192,
            rf_regs: self.phys_regs as u32,
            rf_reg_bits: 64,
            dl1_lines: self.dl1.lines(),
            line_bytes: self.dl1.line_bytes,
            dl1_tag_bits: 32,
            l2_lines: self.l2.lines(),
            l2_tag_bits: 32,
            dtlb_entries: self.dtlb_entries as u32,
            dtlb_entry_bits: 64,
        }
    }

    /// Memory footprint needed to cover every DTLB page (the stressmark's
    /// "page size × DTLB entries" allocation, Figure 2).
    #[must_use]
    pub fn dtlb_reach_bytes(&self) -> u64 {
        self.page_bytes * self.dtlb_entries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_i() {
        let c = MachineConfig::baseline();
        assert_eq!(c.iq_entries, 20);
        assert_eq!(c.rob_entries, 80);
        assert_eq!(c.phys_regs, 80);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.n_alus, 4);
        assert_eq!(c.n_muls, 1);
        assert_eq!(c.mul_latency, 7);
        assert_eq!(c.mispredict_penalty, 7);
        assert_eq!(c.dl1.latency, 3);
        assert_eq!(c.l2.ways, 1);
        assert_eq!(c.l2.latency, 7);
        assert_eq!(c.dtlb_entries, 256);
        assert_eq!(c.page_bytes, 8192);
    }

    #[test]
    fn config_a_matches_table_ii() {
        let c = MachineConfig::config_a();
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.phys_regs, 96);
        assert_eq!(c.n_muls, 4);
        assert_eq!(c.dl1.ways, 4);
        assert_eq!(c.dtlb_entries, 512);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 12);
    }

    #[test]
    fn cache_geometry_helpers() {
        let c = MachineConfig::baseline();
        assert_eq!(c.dl1.lines(), 1024);
        assert_eq!(c.dl1.sets(), 512);
        assert_eq!(c.l2.lines(), 16_384);
        assert_eq!(c.l2.sets(), 16_384);
    }

    #[test]
    fn structure_sizes_track_config() {
        let sizes = MachineConfig::config_a().structure_sizes();
        assert_eq!(sizes.rob_entries, 96);
        assert_eq!(sizes.iq_entries, 32);
        assert_eq!(sizes.dtlb_entries, 512);
        assert_eq!(sizes.l2_lines, 32_768);
    }

    #[test]
    fn dtlb_reach_covers_all_pages() {
        assert_eq!(MachineConfig::baseline().dtlb_reach_bytes(), 8192 * 256);
        assert_eq!(MachineConfig::config_a().dtlb_reach_bytes(), 8192 * 512);
    }
}
