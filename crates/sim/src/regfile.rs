//! Physical register file, rename map and free list.
//!
//! Thirty-one architected registers (`r31` is hardwired zero and never
//! renamed) map onto a merged physical file. Read events are recorded at
//! consumer *commit* so that squashed consumers never contribute, and each
//! physical register's lifetime is reported to the ACE analysis when it is
//! freed — the paper's observation that "rename registers cannot hold ACE
//! data all the time" (Section III) falls out of these lifetimes.

use avf_ace::{DynId, PregRecord};
use avf_isa::wire::{WireError, WireReader, WireWriter};

const ARCH_REGS: usize = 31;

#[derive(Debug, Clone, Default)]
struct Preg {
    ready: bool,
    write_cycle: u64,
    reads: Vec<(DynId, u64)>,
}

/// Merged physical register file with speculative and committed rename maps.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    pregs: Vec<Preg>,
    free: Vec<u32>,
    map: [u32; ARCH_REGS],
    committed_map: [u32; ARCH_REGS],
    reg_bits: u32,
}

impl PhysRegFile {
    /// Creates a file of `n_phys` registers; the first 31 start mapped to
    /// the architected registers, ready, with value-written-at-cycle-0.
    ///
    /// # Panics
    ///
    /// Panics if `n_phys < 32` (there must be at least one rename register).
    #[must_use]
    pub fn new(n_phys: usize, reg_bits: u32) -> PhysRegFile {
        assert!(
            n_phys > ARCH_REGS,
            "need at least {} physical registers",
            ARCH_REGS + 1
        );
        let mut pregs = vec![Preg::default(); n_phys];
        let mut map = [0u32; ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u32;
            pregs[i].ready = true;
        }
        let free: Vec<u32> = (ARCH_REGS as u32..n_phys as u32).rev().collect();
        PhysRegFile {
            pregs,
            free,
            map,
            committed_map: map,
            reg_bits,
        }
    }

    /// Number of currently free physical registers.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Whether `preg` is on the free list (holds no live value).
    #[must_use]
    pub fn is_free(&self, preg: u32) -> bool {
        self.free.contains(&preg)
    }

    /// The architected register whose *newest* (speculative) definition
    /// lives in `preg`, or `None` — a `None` for a non-free register
    /// means the value has already been superseded by a younger
    /// definition, so a fault in it can no longer reach future readers.
    #[must_use]
    pub fn arch_of_newest(&self, preg: u32) -> Option<u8> {
        self.map.iter().position(|&p| p == preg).map(|i| i as u8)
    }

    /// Current speculative mapping of an architected register.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is the zero register (31) or out of range.
    #[must_use]
    pub fn rename_src(&self, arch: u8) -> u32 {
        self.map[usize::from(arch)]
    }

    /// Allocates a new physical register for a write to `arch`, returning
    /// `(new_preg, previous_speculative_preg)`, or `None` if the free list
    /// is empty (dispatch must stall).
    pub fn allocate(&mut self, arch: u8) -> Option<(u32, u32)> {
        let new = self.free.pop()?;
        let prev = self.map[usize::from(arch)];
        self.map[usize::from(arch)] = new;
        let p = &mut self.pregs[new as usize];
        p.ready = false;
        p.write_cycle = 0;
        debug_assert!(p.reads.is_empty(), "freed register carried stale reads");
        Some((new, prev))
    }

    /// Marks `preg` written at `cycle` (writeback).
    pub fn set_ready(&mut self, preg: u32, cycle: u64) {
        let p = &mut self.pregs[preg as usize];
        p.ready = true;
        p.write_cycle = cycle;
    }

    /// Whether `preg` holds a value.
    #[inline]
    #[must_use]
    pub fn is_ready(&self, preg: u32) -> bool {
        self.pregs[preg as usize].ready
    }

    /// Records that committed instruction `reader` read `preg` at
    /// `issue_cycle`.
    pub fn record_read(&mut self, preg: u32, reader: DynId, issue_cycle: u64) {
        self.pregs[preg as usize].reads.push((reader, issue_cycle));
    }

    /// Commits a definition of `arch` by `preg`: updates the committed map
    /// and returns the lifetime record of the physical register this
    /// releases (the previous speculative mapping saved at rename).
    pub fn commit_def(&mut self, arch: u8, preg: u32, released: u32) -> PregRecord {
        self.committed_map[usize::from(arch)] = preg;
        let rec = {
            let p = &mut self.pregs[released as usize];
            PregRecord {
                write_cycle: p.write_cycle,
                reads: std::mem::take(&mut p.reads),
                bits: self.reg_bits,
            }
        };
        self.free.push(released);
        rec
    }

    /// Returns a squashed instruction's destination register to the free
    /// list (no lifetime is reported: the value was never architecturally
    /// visible and no committed consumer read it).
    pub fn squash_dest(&mut self, preg: u32) {
        let p = &mut self.pregs[preg as usize];
        debug_assert!(
            p.reads.is_empty(),
            "squashed register had committed readers"
        );
        p.ready = false;
        p.reads.clear();
        self.free.push(preg);
    }

    /// Rebuilds the speculative map after a pipeline flush: start from the
    /// committed map, then reapply surviving (older, uncommitted)
    /// definitions in program order.
    pub fn rebuild_map<'a>(&mut self, survivors: impl Iterator<Item = (u8, u32)> + 'a) {
        self.map = self.committed_map;
        for (arch, preg) in survivors {
            self.map[usize::from(arch)] = preg;
        }
    }

    /// Serializes the rename state for checkpoint snapshots.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.usize(self.pregs.len());
        for p in &self.pregs {
            w.bool(p.ready);
            w.u64(p.write_cycle);
            w.usize(p.reads.len());
            for &(DynId(id), cycle) in &p.reads {
                w.u64(id);
                w.u64(cycle);
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
        for &m in &self.map {
            w.u32(m);
        }
        for &m in &self.committed_map {
            w.u32(m);
        }
        w.u32(self.reg_bits);
    }

    /// Decodes state written by [`PhysRegFile::encode`] for a file of
    /// `expect_phys` registers; a geometry-mismatched blob (e.g. a
    /// checkpoint from a different machine configuration) is rejected
    /// with an error rather than decoding into a file the consuming
    /// pipeline would index out of bounds.
    pub(crate) fn decode(
        r: &mut WireReader<'_>,
        expect_phys: usize,
    ) -> Result<PhysRegFile, WireError> {
        // Each preg is at least ready + write_cycle + read count bytes.
        let n_phys = r.seq_len(1 + 8 + 8)?;
        if n_phys != expect_phys || n_phys <= ARCH_REGS {
            return Err(WireError::Invalid("physical register count mismatch"));
        }
        let valid_preg = |p: u32| {
            if (p as usize) < n_phys {
                Ok(p)
            } else {
                Err(WireError::Invalid("preg index out of range"))
            }
        };
        let mut pregs = Vec::with_capacity(n_phys);
        for _ in 0..n_phys {
            let ready = r.bool()?;
            let write_cycle = r.u64()?;
            let n_reads = r.seq_len(8 + 8)?;
            let mut reads = Vec::with_capacity(n_reads);
            for _ in 0..n_reads {
                reads.push((DynId(r.u64()?), r.u64()?));
            }
            pregs.push(Preg {
                ready,
                write_cycle,
                reads,
            });
        }
        let n_free = r.seq_len(4)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(valid_preg(r.u32()?)?);
        }
        let mut map = [0u32; ARCH_REGS];
        for m in &mut map {
            *m = valid_preg(r.u32()?)?;
        }
        let mut committed_map = [0u32; ARCH_REGS];
        for m in &mut committed_map {
            *m = valid_preg(r.u32()?)?;
        }
        Ok(PhysRegFile {
            pregs,
            free,
            map,
            committed_map,
            reg_bits: r.u32()?,
        })
    }

    /// Drains every still-mapped register's lifetime at the end of
    /// simulation (registers never overwritten were never freed).
    pub fn drain_lifetimes(&mut self) -> Vec<PregRecord> {
        let mut out = Vec::with_capacity(ARCH_REGS);
        for arch in 0..ARCH_REGS {
            let preg = self.committed_map[arch];
            let p = &mut self.pregs[preg as usize];
            if !p.reads.is_empty() {
                out.push(PregRecord {
                    write_cycle: p.write_cycle,
                    reads: std::mem::take(&mut p.reads),
                    bits: self.reg_bits,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_maps_arch_identity() {
        let rf = PhysRegFile::new(80, 64);
        assert_eq!(rf.free_count(), 80 - 31);
        for r in 0..31u8 {
            assert_eq!(rf.rename_src(r), u32::from(r));
            assert!(rf.is_ready(u32::from(r)));
        }
    }

    #[test]
    fn allocate_and_commit_frees_previous() {
        let mut rf = PhysRegFile::new(34, 64);
        let (p1, prev1) = rf.allocate(5).unwrap();
        assert_eq!(prev1, 5);
        assert_eq!(rf.rename_src(5), p1);
        assert!(!rf.is_ready(p1));
        rf.set_ready(p1, 42);
        let rec = rf.commit_def(5, p1, prev1);
        assert_eq!(rec.write_cycle, 0, "previous def was the initial register");
        assert_eq!(rf.free_count(), 3, "released register returned");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = PhysRegFile::new(33, 64);
        assert!(rf.allocate(0).is_some());
        assert!(rf.allocate(1).is_some());
        assert!(rf.allocate(2).is_none(), "free list exhausted");
    }

    #[test]
    fn reads_reported_in_lifetime() {
        let mut rf = PhysRegFile::new(34, 64);
        let (p, prev) = rf.allocate(3).unwrap();
        rf.set_ready(p, 10);
        rf.record_read(p, DynId(7), 15);
        rf.record_read(p, DynId(9), 25);
        // Next writer of r3 releases p.
        let (_p2, prev2) = rf.allocate(3).unwrap();
        assert_eq!(prev2, p);
        rf.commit_def(3, p, prev); // commit first def
        let rec = rf.commit_def(3, _p2, prev2);
        assert_eq!(rec.write_cycle, 10);
        assert_eq!(rec.reads.len(), 2);
    }

    #[test]
    fn squash_restores_map_and_free_list() {
        let mut rf = PhysRegFile::new(40, 64);
        let before_free = rf.free_count();
        let (p1, _) = rf.allocate(1).unwrap();
        let (p2, _) = rf.allocate(2).unwrap();
        // Squash both, no survivors.
        rf.squash_dest(p2);
        rf.squash_dest(p1);
        rf.rebuild_map(std::iter::empty());
        assert_eq!(rf.free_count(), before_free);
        assert_eq!(rf.rename_src(1), 1);
        assert_eq!(rf.rename_src(2), 2);
    }

    #[test]
    fn rebuild_applies_survivors_in_order() {
        let mut rf = PhysRegFile::new(40, 64);
        let (p1, _) = rf.allocate(1).unwrap();
        let (p2, _) = rf.allocate(1).unwrap();
        rf.rebuild_map([(1u8, p1), (1u8, p2)].into_iter());
        assert_eq!(rf.rename_src(1), p2, "later def wins");
    }

    #[test]
    fn drain_reports_read_registers_only() {
        let mut rf = PhysRegFile::new(34, 64);
        let (p, prev) = rf.allocate(4).unwrap();
        rf.set_ready(p, 5);
        let rec = rf.commit_def(4, p, prev);
        assert!(rec.reads.is_empty());
        rf.record_read(p, DynId(1), 9);
        let drained = rf.drain_lifetimes();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].reads.len(), 1);
    }
}
