/// Per-generation search statistics; the series behind the paper's
/// Figure 5(b) convergence plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness in the generation.
    pub best: f64,
    /// Mean fitness over the generation (the quantity Figure 5b plots).
    pub mean: f64,
    /// Fitness standard deviation.
    pub std_dev: f64,
    /// Whether a cataclysm was triggered *after* this generation.
    pub cataclysm: bool,
}

/// Computes mean and standard deviation of a fitness slice.
#[must_use]
pub fn mean_std(fitness: &[f64]) -> (f64, f64) {
    if fitness.is_empty() {
        return (0.0, 0.0);
    }
    let n = fitness.len() as f64;
    let mean = fitness.iter().sum::<f64>() / n;
    let var = fitness.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_of_constant_is_zero_dev() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slice_is_zeroes() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
