/// Genetic algorithm parameters.
///
/// The paper drives IBM's SNAP framework with a crossover rate of 0.73 and
/// a mutation probability of 0.05 (from the recommended ranges of
/// Grefenstette and Srinivas & Patnaik), 50 individuals for 50 generations,
/// and relies on SNAP's *cataclysm* — when the population converges, the
/// best solution is moved into a fresh random population (visible as the
/// fitness dip at generation 30 in Figure 5b).
#[derive(Debug, Clone, PartialEq)]
pub struct GaParams {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability that a child is produced by crossover (else cloned).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Gaussian mutation step size (genes live in `[0, 1]`).
    pub mutation_sigma: f64,
    /// Individuals preserved unchanged each generation.
    pub elite: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Generations without improvement before a cataclysm.
    pub cataclysm_patience: usize,
    /// Fitness standard deviation below which the population counts as
    /// converged (also triggers a cataclysm).
    pub convergence_epsilon: f64,
    /// Inject fresh random immigrants every this many generations
    /// (0 disables migration).
    pub migration_interval: usize,
    /// Number of immigrants per migration.
    pub migration_count: usize,
    /// RNG seed; the whole search is deterministic given the seed and a
    /// deterministic fitness function.
    pub seed: u64,
}

impl GaParams {
    /// The paper's configuration: 50 × 50 with crossover 0.73 and
    /// mutation 0.05.
    #[must_use]
    pub fn paper() -> GaParams {
        GaParams {
            population: 50,
            generations: 50,
            crossover_rate: 0.73,
            mutation_rate: 0.05,
            mutation_sigma: 0.2,
            elite: 2,
            tournament: 3,
            cataclysm_patience: 8,
            convergence_epsilon: 1e-4,
            migration_interval: 10,
            migration_count: 4,
            seed: 0xA5F5_7E55,
        }
    }

    /// A scaled-down configuration for fast experiment regeneration
    /// (DESIGN.md §7): 16 individuals × 24 generations.
    #[must_use]
    pub fn quick() -> GaParams {
        GaParams {
            population: 16,
            generations: 24,
            ..GaParams::paper()
        }
    }

    /// Sets the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> GaParams {
        self.seed = seed;
        self
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on zero population/generations, elite ≥ population, or rates
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.population > 0, "population must be positive");
        assert!(self.generations > 0, "generations must be positive");
        assert!(
            self.elite < self.population,
            "elite must leave room for offspring"
        );
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate),
            "crossover rate in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.mutation_rate),
            "mutation rate in [0,1]"
        );
        assert!(self.tournament >= 1, "tournament size must be at least 1");
    }
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_section_v() {
        let p = GaParams::paper();
        assert_eq!(p.population, 50);
        assert_eq!(p.generations, 50);
        assert!((p.crossover_rate - 0.73).abs() < 1e-12);
        assert!((p.mutation_rate - 0.05).abs() < 1e-12);
        p.validate();
    }

    #[test]
    fn quick_params_are_valid() {
        GaParams::quick().validate();
    }

    #[test]
    #[should_panic(expected = "elite")]
    fn oversized_elite_rejected() {
        let mut p = GaParams::quick();
        p.elite = p.population;
        p.validate();
    }
}
