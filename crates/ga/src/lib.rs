//! # avf-ga
//!
//! A compact genetic-algorithm framework — the reproduction's substitute
//! for the IBM SNAP tool the AVF stressmark paper obtained under NDA
//! (Nair, John & Eeckhout, MICRO 2010, Section V).
//!
//! It reproduces every behaviour the paper relies on:
//!
//! * crossover rate 0.73 and mutation probability 0.05
//!   ([`GaParams::paper`]), per Grefenstette / Srinivas & Patnaik;
//! * elitist generational replacement with tournament selection;
//! * **migration** — periodic injection of fresh random individuals;
//! * **cataclysm** — when the population converges or stagnates, the best
//!   solution is moved into a new random population (the abrupt
//!   average-fitness dip at generation 30 of Figure 5b);
//! * per-generation statistics ([`GenerationStats`]) for convergence plots.
//!
//! Genomes are vectors of `[0, 1]` genes; the stressmark layer maps them
//! onto code-generator knobs.
//!
//! Fitness evaluation is pluggable: [`optimize`] scores each generation
//! through a [`FitnessEvaluator`] — wrap a closure in
//! [`ClosureEvaluator`], use [`LocalEvaluator`] for a persistent memoizing
//! thread pool, or supply a remote backend (the stressmark layer ships
//! one that fans generations out across a worker fleet).
//!
//! ## Example
//!
//! ```
//! use avf_ga::{optimize, ClosureEvaluator, GaParams};
//!
//! let params = GaParams { population: 16, generations: 12, ..GaParams::quick() };
//! let mut fitness = ClosureEvaluator::new(|g: &[f64]| -(g[0] - 0.5).abs() - g[1] * g[2]);
//! let result = optimize(3, &params, &mut fitness).expect("local evaluation cannot fail");
//! assert_eq!(result.history.len(), 12);
//! assert!(result.best_fitness <= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod evaluator;
mod history;
mod ops;
mod params;

pub use engine::{optimize, GaResult};
pub use evaluator::{genome_bits, ClosureEvaluator, EvalError, FitnessEvaluator, LocalEvaluator};
pub use history::{mean_std, GenerationStats};
pub use ops::{crossover, mutate, random_genome, tournament};
pub use params::GaParams;
