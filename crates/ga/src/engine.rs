//! The generational loop: evaluate → select → crossover/mutate → migrate,
//! with elitism and cataclysm-on-convergence.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::evaluator::{EvalError, FitnessEvaluator};
use crate::history::{mean_std, GenerationStats};
use crate::ops::{crossover, mutate, random_genome, tournament};
use crate::params::GaParams;

/// Result of a GA search.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best genome found across all generations.
    pub best_genome: Vec<f64>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics (Figure 5b's series).
    pub history: Vec<GenerationStats>,
    /// Actual fitness evaluations performed by the evaluator: cache
    /// hits excluded, re-dispatched duplicates counted once (see
    /// [`FitnessEvaluator::evaluations`]).
    pub evaluations: u64,
}

/// Maximizes fitness over genomes of `genome_len` genes in `[0, 1]`,
/// scoring each generation through `evaluator`.
///
/// The search itself is deterministic for a fixed seed and a
/// deterministic evaluator: the RNG consumption sequence depends only
/// on the parameters and the returned scores, never on where or how the
/// evaluator computed them — which is what makes local, remote, and
/// brokered runs bit-identical.
///
/// # Errors
///
/// Propagates the evaluator's [`EvalError`] (local evaluation is
/// infallible; a remote fleet dying entirely is not).
///
/// # Panics
///
/// Panics if `params` fail [`GaParams::validate`], `genome_len == 0`,
/// or the evaluator returns the wrong number of scores.
pub fn optimize<E>(
    genome_len: usize,
    params: &GaParams,
    evaluator: &mut E,
) -> Result<GaResult, EvalError>
where
    E: FitnessEvaluator + ?Sized,
{
    params.validate();
    assert!(genome_len > 0, "genome must have at least one gene");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut population: Vec<Vec<f64>> = (0..params.population)
        .map(|_| random_genome(genome_len, &mut rng))
        .collect();

    let mut best_genome = population[0].clone();
    let mut best_fitness = f64::NEG_INFINITY;
    let mut history = Vec::with_capacity(params.generations);
    let mut stagnant = 0usize;

    for generation in 0..params.generations {
        let scores = evaluator.evaluate(&population)?;
        assert_eq!(
            scores.len(),
            population.len(),
            "evaluator must score every individual"
        );

        let (mean, std_dev) = mean_std(&scores);
        let (gen_best_idx, gen_best) = scores
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty population");
        if gen_best > best_fitness {
            best_fitness = gen_best;
            best_genome = population[gen_best_idx].clone();
            stagnant = 0;
        } else {
            stagnant += 1;
        }

        // Cataclysm (SNAP behaviour): on convergence or stagnation, move
        // the best known solution into a fresh random population.
        let converged = std_dev < params.convergence_epsilon && generation > 0;
        let cataclysm = (converged || stagnant >= params.cataclysm_patience)
            && generation + 1 < params.generations;
        // A fully-converged population can leave `mean` a few ulps above
        // `gen_best` through summation rounding; clamp to keep the
        // mathematical invariant `best >= mean` exact.
        let mean = mean.min(gen_best);
        history.push(GenerationStats {
            generation,
            best: gen_best,
            mean,
            std_dev,
            cataclysm,
        });

        if generation + 1 == params.generations {
            break;
        }
        if cataclysm {
            stagnant = 0;
            population = std::iter::once(best_genome.clone())
                .chain((1..params.population).map(|_| random_genome(genome_len, &mut rng)))
                .collect();
            continue;
        }

        // Rank for elitism.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

        let mut next: Vec<Vec<f64>> = Vec::with_capacity(params.population);
        for &i in order.iter().take(params.elite) {
            next.push(population[i].clone());
        }
        while next.len() < params.population {
            let p1 = tournament(&scores, params.tournament, &mut rng);
            let child = if rng.gen_bool(params.crossover_rate) {
                let p2 = tournament(&scores, params.tournament, &mut rng);
                crossover(&population[p1], &population[p2], &mut rng)
            } else {
                population[p1].clone()
            };
            let mut child = child;
            mutate(
                &mut child,
                params.mutation_rate,
                params.mutation_sigma,
                &mut rng,
            );
            next.push(child);
        }

        // Migration: periodically replace the tail with fresh immigrants.
        if params.migration_interval > 0 && (generation + 1) % params.migration_interval == 0 {
            let n = params.migration_count.min(next.len() - params.elite);
            let len = next.len();
            for slot in next.iter_mut().take(len).skip(len - n) {
                *slot = random_genome(genome_len, &mut rng);
            }
        }
        population = next;
    }

    Ok(GaResult {
        best_genome,
        best_fitness,
        history,
        evaluations: evaluator.evaluations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ClosureEvaluator, LocalEvaluator};

    /// Smooth unimodal test function with maximum 0 at the target point.
    fn sphere(genome: &[f64]) -> f64 {
        -genome.iter().map(|&g| (g - 0.7) * (g - 0.7)).sum::<f64>()
    }

    fn run<F: Fn(&[f64]) -> f64>(genome_len: usize, params: &GaParams, f: F) -> GaResult {
        optimize(genome_len, params, &mut ClosureEvaluator::new(f))
            .expect("closure evaluation cannot fail")
    }

    #[test]
    fn converges_on_sphere() {
        let params = GaParams {
            population: 24,
            generations: 40,
            ..GaParams::quick()
        };
        let result = run(6, &params, sphere);
        assert!(
            result.best_fitness > -0.02,
            "GA should approach the optimum, got {}",
            result.best_fitness
        );
        for g in &result.best_genome {
            assert!((g - 0.7).abs() < 0.15, "gene {g} far from optimum");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let params = GaParams::quick().with_seed(99);
        let a = run(5, &params, sphere);
        let b = run(5, &params, sphere);
        assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
        assert_eq!(a.best_genome, b.best_genome);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn history_has_one_entry_per_generation() {
        let params = GaParams {
            population: 8,
            generations: 12,
            ..GaParams::quick()
        };
        let result = run(4, &params, sphere);
        assert_eq!(result.history.len(), 12);
        assert_eq!(
            result.evaluations,
            8 * 12,
            "the uncached evaluator counts every call"
        );
        for (i, h) in result.history.iter().enumerate() {
            assert_eq!(h.generation, i);
            assert!(h.best >= h.mean, "best {} >= mean {}", h.best, h.mean);
        }
    }

    #[test]
    fn best_fitness_is_monotone_over_history() {
        let params = GaParams {
            population: 12,
            generations: 20,
            ..GaParams::quick()
        };
        let result = run(4, &params, sphere);
        let mut run_best = f64::NEG_INFINITY;
        for h in &result.history {
            run_best = run_best.max(h.best);
        }
        assert!((run_best - result.best_fitness).abs() < 1e-12);
    }

    #[test]
    fn cataclysm_triggers_on_constant_fitness() {
        // Constant fitness: zero std-dev => convergence cataclysms.
        let params = GaParams {
            population: 8,
            generations: 10,
            ..GaParams::quick()
        };
        let result = run(4, &params, |_| 1.0);
        assert!(
            result.history.iter().any(|h| h.cataclysm),
            "constant fitness must trigger a cataclysm"
        );
    }

    #[test]
    fn pooled_and_uncached_evaluators_agree() {
        let params = GaParams::quick().with_seed(5);
        let a = run(6, &params, sphere);
        let mut seq = LocalEvaluator::new(1, sphere);
        let mut par = LocalEvaluator::new(4, sphere);
        let b = optimize(6, &params, &mut seq).unwrap();
        let c = optimize(6, &params, &mut par).unwrap();
        assert_eq!(
            a.best_genome, b.best_genome,
            "caching must not change the search"
        );
        assert_eq!(
            b.best_genome, c.best_genome,
            "thread count must not change the search"
        );
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.best.to_bits(), y.best.to_bits());
            assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        }
        assert_eq!(
            b.evaluations, c.evaluations,
            "distinct-genome count is venue-independent"
        );
        assert!(
            b.evaluations <= a.evaluations,
            "memoized evaluations ({}) cannot exceed raw calls ({})",
            b.evaluations,
            a.evaluations
        );
    }

    #[test]
    fn single_gene_optimization() {
        let params = GaParams {
            population: 16,
            generations: 25,
            ..GaParams::quick()
        };
        let result = run(1, &params, |g| -(g[0] - 0.25).abs());
        assert!((result.best_genome[0] - 0.25).abs() < 0.05);
    }
}
