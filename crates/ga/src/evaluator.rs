//! Pluggable fitness evaluation.
//!
//! The generational loop in [`crate::optimize`] does not own execution:
//! it hands each generation to a [`FitnessEvaluator`] and gets scores
//! back. Where and how those scores are computed — inline, on a
//! persistent local thread pool ([`LocalEvaluator`]), or across a
//! remote worker fleet — is the evaluator's business, which is what
//! lets the stressmark search run distributed without the GA knowing.
//!
//! Evaluators also own the *evaluation count*: [`GaResult::evaluations`]
//! reports actual fitness computations, so an evaluator that memoizes
//! (every evaluator here except [`ClosureEvaluator`]) counts distinct
//! genomes, not calls. Re-scored elites are cache hits, and a remote
//! evaluator that re-dispatches work after a worker death must not
//! double-count — keeping the paper's evaluations-to-convergence
//! comparison honest across execution venues.
//!
//! [`GaResult::evaluations`]: crate::GaResult::evaluations

use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A fitness evaluation failed in a way the evaluator cannot recover
/// from (e.g. every remote worker died). Local evaluation is
/// infallible and never returns this.
#[derive(Debug, Clone)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fitness evaluation failed: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Scores whole generations of genomes for [`crate::optimize`].
///
/// Implementations must be *deterministic*: the same genome always
/// scores identically, no matter which call, thread, or worker computes
/// it. The GA's fixed-seed reproducibility guarantee rests on this.
pub trait FitnessEvaluator {
    /// Scores every genome of `generation`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] only on unrecoverable failure (local
    /// evaluators are infallible).
    fn evaluate(&mut self, generation: &[Vec<f64>]) -> Result<Vec<f64>, EvalError>;

    /// Actual fitness computations performed so far: cache hits are
    /// excluded and redundant/re-dispatched computations of one genome
    /// count once.
    fn evaluations(&self) -> u64;
}

/// The exact bit pattern of a genome, used as a memoization key.
///
/// Genomes are compared by `f64` bit pattern, not value, so `-0.0` and
/// `0.0` are distinct keys — exactness matters more than canonicalizing
/// values the GA's own operators never produce.
#[must_use]
pub fn genome_bits(genome: &[f64]) -> Vec<u64> {
    genome.iter().map(|g| g.to_bits()).collect()
}

/// The trivial evaluator: calls a closure once per individual, no
/// caching, no threads. `evaluations` counts every call.
///
/// This is the convenience path for tests and cheap analytic fitness
/// functions; real sim-backed searches want [`LocalEvaluator`] (or a
/// remote backend) so duplicate genomes are not re-simulated.
pub struct ClosureEvaluator<F> {
    fitness: F,
    evaluations: u64,
}

impl<F: Fn(&[f64]) -> f64> ClosureEvaluator<F> {
    /// Wraps `fitness` as an evaluator.
    pub fn new(fitness: F) -> ClosureEvaluator<F> {
        ClosureEvaluator {
            fitness,
            evaluations: 0,
        }
    }
}

impl<F: Fn(&[f64]) -> f64> FitnessEvaluator for ClosureEvaluator<F> {
    fn evaluate(&mut self, generation: &[Vec<f64>]) -> Result<Vec<f64>, EvalError> {
        self.evaluations += generation.len() as u64;
        Ok(generation.iter().map(|g| (self.fitness)(g)).collect())
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

/// In-process parallel evaluator with a genome-keyed memo cache.
///
/// The worker pool is built once, when the evaluator is constructed, and
/// lives for the whole search — thread setup is paid per search, not per
/// generation. Scores are memoized by exact genome bits, so elites
/// carried across generations (and duplicate genomes within one) are
/// evaluated exactly once; `evaluations` therefore counts *distinct*
/// genomes, matching what a remote fleet would report for the same
/// search. The cache is unbounded: a search touches at most
/// `population × generations` genomes, a few megabytes at paper scale.
pub struct LocalEvaluator {
    job_tx: Option<mpsc::Sender<(usize, Vec<f64>)>>,
    result_rx: mpsc::Receiver<(usize, f64)>,
    pool: Vec<JoinHandle<()>>,
    cache: HashMap<Vec<u64>, f64>,
    evaluations: u64,
}

impl LocalEvaluator {
    /// Builds a pool of `threads` persistent workers evaluating
    /// `fitness` (0 = one per available core).
    pub fn new<F>(threads: usize, fitness: F) -> LocalEvaluator
    where
        F: Fn(&[f64]) -> f64 + Send + Sync + 'static,
    {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let (job_tx, job_rx) = mpsc::channel::<(usize, Vec<f64>)>();
        let (result_tx, result_rx) = mpsc::channel();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let fitness = Arc::new(fitness);
        let pool = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let fitness = Arc::clone(&fitness);
                std::thread::spawn(move || loop {
                    // Take the next job while holding the lock only for
                    // the recv, never for the evaluation itself.
                    let job = job_rx.lock().expect("job queue lock").recv();
                    let Ok((slot, genome)) = job else {
                        return; // queue closed: the evaluator was dropped
                    };
                    let score = fitness(&genome);
                    if result_tx.send((slot, score)).is_err() {
                        return;
                    }
                })
            })
            .collect();
        LocalEvaluator {
            job_tx: Some(job_tx),
            result_rx,
            pool,
            cache: HashMap::new(),
            evaluations: 0,
        }
    }
}

impl FitnessEvaluator for LocalEvaluator {
    fn evaluate(&mut self, generation: &[Vec<f64>]) -> Result<Vec<f64>, EvalError> {
        let mut scores = vec![0.0f64; generation.len()];
        // One job per *distinct* uncached genome; duplicates within the
        // generation share the single result.
        let mut fresh: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
        let mut slot_of: HashMap<Vec<u64>, usize> = HashMap::new();
        for (i, genome) in generation.iter().enumerate() {
            let key = genome_bits(genome);
            if let Some(&score) = self.cache.get(&key) {
                scores[i] = score;
            } else if let Some(&slot) = slot_of.get(&key) {
                fresh[slot].1.push(i);
            } else {
                slot_of.insert(key.clone(), fresh.len());
                fresh.push((key, vec![i]));
            }
        }
        let tx = self
            .job_tx
            .as_ref()
            .expect("pool alive while evaluator lives");
        for (slot, (_, indices)) in fresh.iter().enumerate() {
            tx.send((slot, generation[indices[0]].clone()))
                .expect("evaluation pool hung up");
        }
        for _ in 0..fresh.len() {
            let (slot, score) = self
                .result_rx
                .recv()
                .expect("evaluation pool worker panicked");
            let (key, indices) = &fresh[slot];
            self.cache.insert(key.clone(), score);
            self.evaluations += 1;
            for &i in indices {
                scores[i] = score;
            }
        }
        Ok(scores)
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

impl Drop for LocalEvaluator {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(genome: &[f64]) -> f64 {
        genome.iter().sum()
    }

    #[test]
    fn local_matches_closure_bit_for_bit() {
        let generation: Vec<Vec<f64>> = (0..7)
            .map(|i| vec![i as f64 * 0.1, 0.5, 1.0 / (i + 1) as f64])
            .collect();
        let mut closure = ClosureEvaluator::new(sum);
        let mut local = LocalEvaluator::new(3, sum);
        let a = closure.evaluate(&generation).unwrap();
        let b = local.evaluate(&generation).unwrap();
        let bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn local_counts_distinct_genomes_only() {
        let gen_a: Vec<Vec<f64>> = vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.1, 0.2]];
        let mut local = LocalEvaluator::new(2, sum);
        local.evaluate(&gen_a).unwrap();
        assert_eq!(local.evaluations(), 2, "in-generation duplicate is one job");
        // Re-scoring the same genomes (elites surviving a generation) is
        // free.
        local.evaluate(&gen_a).unwrap();
        assert_eq!(local.evaluations(), 2, "re-scored genomes are cache hits");
        local.evaluate(&[vec![0.9, 0.9]]).unwrap();
        assert_eq!(local.evaluations(), 3);
    }

    #[test]
    fn closure_counts_every_call() {
        let generation = vec![vec![0.5], vec![0.5]];
        let mut closure = ClosureEvaluator::new(sum);
        closure.evaluate(&generation).unwrap();
        closure.evaluate(&generation).unwrap();
        assert_eq!(closure.evaluations(), 4);
    }

    #[test]
    fn genome_bits_distinguishes_negative_zero() {
        assert_ne!(genome_bits(&[0.0]), genome_bits(&[-0.0]));
        assert_eq!(genome_bits(&[0.25, 0.5]), genome_bits(&[0.25, 0.5]));
    }
}
