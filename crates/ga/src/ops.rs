//! Genetic operators over normalized genomes (`Vec<f64>` with every gene in
//! `[0, 1]`).

use rand::rngs::SmallRng;
use rand::Rng;

/// Generates a uniformly random genome.
#[must_use]
pub fn random_genome(len: usize, rng: &mut SmallRng) -> Vec<f64> {
    (0..len).map(|_| rng.gen::<f64>()).collect()
}

/// Tournament selection: returns the index of the fittest of `k` random
/// contestants.
#[must_use]
pub fn tournament(fitness: &[f64], k: usize, rng: &mut SmallRng) -> usize {
    debug_assert!(!fitness.is_empty());
    let mut best = rng.gen_range(0..fitness.len());
    for _ in 1..k {
        let c = rng.gen_range(0..fitness.len());
        if fitness[c] > fitness[best] {
            best = c;
        }
    }
    best
}

/// Uniform crossover: each gene is drawn from either parent with equal
/// probability.
#[must_use]
pub fn crossover(a: &[f64], b: &[f64], rng: &mut SmallRng) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb })
        .collect()
}

/// Per-gene Gaussian mutation with probability `rate` and step `sigma`;
/// results are clamped back into `[0, 1]`.
pub fn mutate(genome: &mut [f64], rate: f64, sigma: f64, rng: &mut SmallRng) {
    for g in genome.iter_mut() {
        if rng.gen_bool(rate) {
            // Box-Muller keeps the dependency surface at `rand` alone.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *g = (*g + normal * sigma).clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn random_genome_in_bounds() {
        let g = random_genome(64, &mut rng());
        assert_eq!(g.len(), 64);
        assert!(g.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn tournament_prefers_fitter() {
        let fitness = [0.0, 0.0, 10.0, 0.0];
        let mut r = rng();
        let mut wins = 0;
        for _ in 0..200 {
            if tournament(&fitness, 3, &mut r) == 2 {
                wins += 1;
            }
        }
        assert!(
            wins > 100,
            "fittest should win most tournaments, won {wins}"
        );
    }

    #[test]
    fn crossover_mixes_parent_genes() {
        let a = vec![0.0; 32];
        let b = vec![1.0; 32];
        let child = crossover(&a, &b, &mut rng());
        let ones = child.iter().filter(|&&g| g == 1.0).count();
        assert!(
            ones > 4 && ones < 28,
            "child should mix parents, got {ones} from b"
        );
    }

    #[test]
    fn mutation_respects_bounds_and_rate() {
        let mut r = rng();
        let mut genome = vec![0.5; 1000];
        mutate(&mut genome, 0.05, 0.2, &mut r);
        let changed = genome.iter().filter(|&&g| g != 0.5).count();
        assert!(
            changed > 10 && changed < 150,
            "~5% of genes should change, got {changed}"
        );
        assert!(genome.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let mut genome = vec![0.3; 16];
        mutate(&mut genome, 0.0, 0.2, &mut rng());
        assert!(genome.iter().all(|&g| g == 0.3));
    }
}
