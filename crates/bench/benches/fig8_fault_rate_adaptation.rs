//! Regenerates the paper's Figure 8: how the methodology adapts the
//! stressmark when circuit-level fault rates change (8a rates are inputs;
//! 8b queueing AVFs; 8c/8d knob settings).

use avf_ace::{FaultRates, Structure};

fn main() {
    avf_bench::run("fig8_fault_rate_adaptation", |cfg| {
        println!("== Figure 8(a): circuit-level fault rates (units/bit, inputs) ==");
        for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
            print!("{:>9}:", rates.name());
            for s in [
                Structure::Rob,
                Structure::Iq,
                Structure::Fu,
                Structure::RegFile,
                Structure::LqTag,
                Structure::SqTag,
            ] {
                print!("  {}={:.2}", s.name(), rates.rate(s));
            }
            println!();
        }
        println!();
        let fig8 = avf_stressmark::fig8(cfg);
        println!("{fig8}");
    });
}
