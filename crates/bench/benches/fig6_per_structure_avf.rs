//! Regenerates the paper's Figure 6: per-structure AVF of the SPEC int,
//! SPEC fp and MiBench proxies against the stressmark.

fn main() {
    avf_bench::run("fig6_per_structure_avf", |cfg| {
        for table in avf_stressmark::fig6(cfg) {
            println!("{table}");
        }
    });
}
