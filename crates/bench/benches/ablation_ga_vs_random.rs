//! Ablation: GA search vs pure random search at equal evaluation budget.
//!
//! Section VIII argues random injection (AVP-style) "would likely not
//! maximize the corruptible state" — directed search matters. This bench
//! quantifies that on the real fitness landscape.

use avf_ace::FaultRates;
use avf_codegen::{generate, Knobs, GENOME_LEN};
use avf_ga::{random_genome, GaParams};
use avf_sim::{simulate, MachineConfig};
use avf_stressmark::{generate_stressmark, target_params, Fitness, SearchBackend, SearchConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    avf_bench::run("ablation_ga_vs_random", |cfg| {
        let machine = MachineConfig::baseline();
        let fitness = Fitness::overall(FaultRates::baseline());

        // GA search.
        let search = SearchConfig {
            machine: machine.clone(),
            fitness: fitness.clone(),
            ga: cfg.ga.clone(),
            eval_instructions: cfg.eval_instructions,
            final_instructions: cfg.eval_instructions,
            backend: SearchBackend::default(),
        };
        let ga = generate_stressmark(&search).expect("local search cannot fail");
        let ga_evals = ga.ga.evaluations;

        // Random search with the same number of evaluations.
        let params = target_params(&machine);
        let mut rng = SmallRng::seed_from_u64(0xDEAD_5EED);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..ga_evals {
            let genes = random_genome(GENOME_LEN, &mut rng);
            let knobs = Knobs::from_genome(&genes, &params);
            let sm = generate(&knobs, &params);
            let result = simulate(&machine, &sm.program, cfg.eval_instructions);
            best = best.max(fitness.score(&result.report));
        }

        println!("equal budget of {ga_evals} evaluations:");
        println!("  GA best fitness     = {:.4}", ga.ga.best_fitness);
        println!("  random best fitness = {best:.4}");
        println!(
            "  GA advantage        = {:+.1}%",
            100.0 * (ga.ga.best_fitness / best - 1.0)
        );
        let _ = GaParams::quick(); // keep the dependency explicit
    });
}
