//! Regenerates the paper's Table III: worst-case core-SER estimation
//! methodologies compared (stressmark vs best individual program vs sum of
//! highest per-structure SERs vs raw circuit-level sum), plus the
//! Section VI instantaneous-occupancy bound.

fn main() {
    avf_bench::run("table3_estimation", |cfg| {
        let t3 = avf_stressmark::table3(cfg);
        println!("{t3}");
        for (name, vals) in t3.table.rows() {
            let sm = vals[0];
            let best = vals[1];
            if best > 0.0 {
                println!(
                    "  {name}: stressmark exceeds the best individual program by {:.0}%",
                    100.0 * (sm / best - 1.0)
                );
            }
        }
    });
}
