//! Regenerates the paper's Figure 5: the GA's final knob settings (5a) and
//! its convergence curve with cataclysm dips (5b).

fn main() {
    avf_bench::run("fig5_ga_convergence", |cfg| {
        let fig5 = avf_stressmark::fig5(cfg);
        println!("{fig5}");
        let ser = fig5
            .outcome
            .result
            .report
            .ser(&avf_ace::FaultRates::baseline());
        println!("final stressmark SER:");
        print!("{ser}");
        println!("evaluations: {}", fig5.outcome.ga.evaluations);
    });
}
