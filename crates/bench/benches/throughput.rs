//! Criterion micro-benchmarks of the substrate itself: simulator
//! throughput on stall-bound and compute-bound kernels, code-generation
//! latency, and the functional ACE verifier.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use avf_codegen::{dead_fraction, generate, Knobs, TargetParams};
use avf_sim::{simulate, MachineConfig};

fn sim_throughput(c: &mut Criterion) {
    let machine = MachineConfig::baseline();
    let params = TargetParams::baseline();
    let miss_bound = generate(&Knobs::paper_baseline(), &params);
    let mut hit_knobs = Knobs::paper_baseline();
    hit_knobs.l2_mode = avf_codegen::L2Mode::Hit;
    let compute_bound = generate(&hit_knobs, &params);

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let instructions = 50_000u64;
    group.throughput(Throughput::Elements(instructions));
    group.bench_function("stall_bound_stressmark", |b| {
        b.iter(|| simulate(&machine, &miss_bound.program, instructions));
    });
    group.bench_function("compute_bound_stressmark", |b| {
        b.iter(|| simulate(&machine, &compute_bound.program, instructions));
    });
    let workload = avf_workloads::by_name("403.gcc")
        .expect("gcc proxy")
        .build();
    group.bench_function("workload_gcc_proxy", |b| {
        b.iter(|| simulate(&machine, &workload, instructions));
    });
    group.finish();
}

fn codegen_latency(c: &mut Criterion) {
    let params = TargetParams::baseline();
    let mut group = c.benchmark_group("codegen");
    group.sample_size(20);
    group.bench_function("generate_stressmark_program", |b| {
        b.iter(|| generate(&Knobs::paper_baseline(), &params));
    });
    let sm = generate(&Knobs::paper_baseline(), &params);
    group.bench_function("functional_ace_verify_10k", |b| {
        b.iter(|| dead_fraction(&sm.program, 10_000));
    });
    group.finish();
}

criterion_group!(benches, sim_throughput, codegen_latency);
criterion_main!(benches);
