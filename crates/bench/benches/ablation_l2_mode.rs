//! Ablation: the L2-miss vs L2-hit (miss-free) generator templates under
//! each fault-rate configuration.
//!
//! Section VI-A: under EDR rates (ROB/LQ/SQ protected) stalling no longer
//! pays — the GA switches to the miss-free template because IPC, FU and RF
//! activity dominate what is left. This sweep shows the crossover directly.

use avf_ace::FaultRates;
use avf_codegen::{Knobs, L2Mode};
use avf_sim::MachineConfig;
use avf_stressmark::{evaluate_knobs, Fitness};

fn main() {
    avf_bench::run("ablation_l2_mode", |cfg| {
        let machine = MachineConfig::baseline();
        let budget = cfg.final_instructions / 4;
        println!("core SER (QS+RF units/bit) by template and fault rates:");
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            "rates", "miss", "hit", "winner"
        );
        for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
            let fitness = Fitness::core(rates.clone());
            let mut scores = Vec::new();
            for mode in [L2Mode::Miss, L2Mode::Hit] {
                let mut knobs = Knobs::paper_baseline();
                knobs.l2_mode = mode;
                let (_, _, score) = evaluate_knobs(&machine, &fitness, &knobs, budget);
                scores.push(score);
            }
            println!(
                "{:<10} {:>10.3} {:>10.3} {:>10}",
                rates.name(),
                scores[0],
                scores[1],
                if scores[0] >= scores[1] {
                    "miss"
                } else {
                    "hit"
                }
            );
        }
    });
}
