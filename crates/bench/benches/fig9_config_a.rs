//! Regenerates the paper's Figure 9: the stressmark re-targeted to the
//! scaled-up Configuration A (Table II).

fn main() {
    avf_bench::run("fig9_config_a", |cfg| {
        let fig9 = avf_stressmark::fig9(cfg);
        println!("{fig9}");
    });
}
