//! Scaling benchmark for the fault-injection campaign driver: the same
//! deterministic campaign at 1, 2, and 4 worker threads (plus all
//! available cores), reporting wall-clock speedup and verifying that
//! the per-structure outcome tallies are identical at every thread
//! count — sharding must never change the measurement.
//!
//! On a multi-core host the 4-thread run demonstrates the >2× speedup
//! of the embarrassingly parallel sweep; on a single hardware thread
//! the runs serialize and the speedup column reads ~1×.

use std::time::Instant;

use avf_codegen::{generate, Knobs, TargetParams};
use avf_inject::{Campaign, CampaignConfig};
use avf_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::baseline();
    let stressmark = generate(&Knobs::paper_baseline(), &TargetParams::baseline());

    let (injections, instr_budget) = match std::env::var("AVF_EXPERIMENT_SCALE").as_deref() {
        Ok("smoke") => (160, 6_000),
        Ok("full") => (4_000, 30_000),
        _ => (800, 12_000),
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1, 2, 4];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }

    println!(
        "campaign_throughput: {injections} injections on `{}`, {instr_budget} instr budget, \
         {cores} core(s) available",
        stressmark.program.name()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "threads", "wall (s)", "inj/s", "speedup"
    );

    let mut baseline_wall = None;
    let mut baseline_counts = None;
    for threads in thread_counts {
        let config = CampaignConfig {
            injections,
            seed: 42,
            threads,
            instr_budget,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let report = Campaign::new(&machine, &stressmark.program, config).run();
        let wall = start.elapsed().as_secs_f64();

        let counts: Vec<_> = report
            .targets
            .iter()
            .map(|t| (t.target, t.counts))
            .collect();
        match &baseline_counts {
            None => baseline_counts = Some(counts),
            Some(reference) => assert_eq!(
                reference, &counts,
                "campaign outcome must be independent of thread count"
            ),
        }

        let speedup = baseline_wall.get_or_insert(wall).max(1e-9) / wall.max(1e-9);
        println!(
            "{threads:>8} {wall:>10.2} {:>10.0} {speedup:>8.2}x",
            injections as f64 / wall.max(1e-9)
        );
    }
    println!("outcome tallies identical across all thread counts ✓");
}
