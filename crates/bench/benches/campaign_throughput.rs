//! Scaling benchmark for the fault-injection campaign driver.
//!
//! Part 1 runs the same deterministic fixed-size campaign at 1, 2, and
//! 4 worker threads (plus all available cores), reporting wall-clock
//! speedup and verifying that the per-structure outcome tallies are
//! identical at every thread count — sharding must never change the
//! measurement. On a multi-core host the 4-thread run demonstrates the
//! 2×+ speedup of the embarrassingly parallel sweep; on a single
//! hardware thread the runs serialize and the speedup column reads ~1×.
//!
//! Part 2 measures the adaptive sequential-sampling engine: an adaptive
//! campaign runs to a CI target, then a fixed round-robin campaign of
//! the *same* total size shows how far from that precision an even
//! split lands — the trials-to-verdict gap the CI-driven allocator
//! closes.
//!
//! Perf note (PR 3): fault-mode pipelines skip the per-cycle
//! ROB/IQ/LQ/SQ occupancy sums (injection trials never read them). On
//! a single-CPU host the inj/s delta measured here is within the ±5%
//! run-to-run noise floor (medians 889 → 872 inj/s over 3×800-trial
//! runs) — the four adds were the only per-cycle stat work left in
//! trial workers, so the cut is kept for the principle and for wider
//! machines where memory traffic matters more.

use std::time::Instant;

use avf_codegen::{generate, Knobs, TargetParams};
use avf_inject::{Campaign, CampaignConfig, StopReason};
use avf_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::baseline();
    let stressmark = generate(&Knobs::paper_baseline(), &TargetParams::baseline());

    let (injections, instr_budget, ci_target) =
        match std::env::var("AVF_EXPERIMENT_SCALE").as_deref() {
            Ok("smoke") => (160, 6_000, 0.15),
            Ok("full") => (4_000, 30_000, 0.05),
            _ => (800, 12_000, 0.10),
        };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1, 2, 4];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }

    println!(
        "campaign_throughput: {injections} injections on `{}`, {instr_budget} instr budget, \
         {cores} core(s) available",
        stressmark.program.name()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "threads", "wall (s)", "inj/s", "speedup"
    );

    let mut baseline_wall = None;
    let mut baseline_counts = None;
    for threads in thread_counts {
        let config = CampaignConfig {
            injections,
            seed: 42,
            threads,
            instr_budget,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let report = Campaign::new(&machine, &stressmark.program, config).run();
        let wall = start.elapsed().as_secs_f64();

        let counts: Vec<_> = report
            .targets
            .iter()
            .map(|t| (t.target, t.counts))
            .collect();
        match &baseline_counts {
            None => baseline_counts = Some(counts),
            Some(reference) => assert_eq!(
                reference, &counts,
                "campaign outcome must be independent of thread count"
            ),
        }

        let speedup = baseline_wall.get_or_insert(wall).max(1e-9) / wall.max(1e-9);
        println!(
            "{threads:>8} {wall:>10.2} {:>10.0} {speedup:>8.2}x",
            injections as f64 / wall.max(1e-9)
        );
    }
    println!("outcome tallies identical across all thread counts ✓");

    // ---- adaptive sequential sampling vs the fixed round-robin plan ----
    let adaptive_config = CampaignConfig {
        injections: injections * 8, // generous cap; sampling stops itself
        seed: 42,
        threads: 0,
        instr_budget,
        ci_target: Some(ci_target),
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let adaptive = Campaign::new(&machine, &stressmark.program, adaptive_config).run();
    let adaptive_wall = start.elapsed().as_secs_f64();

    println!(
        "\nadaptive campaign to CI target ±{ci_target}: {} trials in {} batch(es), \
         stop: {} ({:.2} s, {} checkpoint(s))",
        adaptive.injections,
        adaptive.batches.len(),
        adaptive.stop.name(),
        adaptive_wall,
        adaptive.checkpoints
    );
    for b in &adaptive.batches {
        println!(
            "  batch {:>3}: {:>5} trials ({:>6} total), widest CI ±{:.4} ({})",
            b.batch, b.trials, b.cumulative, b.max_half_width, b.widest
        );
    }

    let fixed = Campaign::new(
        &machine,
        &stressmark.program,
        CampaignConfig {
            injections: adaptive.injections,
            seed: 42,
            threads: 0,
            instr_budget,
            ..CampaignConfig::default()
        },
    )
    .run();
    let fixed_max = fixed
        .targets
        .iter()
        .map(|t| t.counts.half_width95())
        .fold(0.0f64, f64::max);
    println!(
        "fixed round-robin at the same {} trials: widest CI ±{fixed_max:.4} \
         (target ±{ci_target}) — {}",
        fixed.injections,
        if adaptive.stop != StopReason::CiTarget {
            "adaptive hit its trial cap before converging; raise the cap to compare"
        } else if fixed_max > ci_target {
            "adaptive reaches the precision target with fewer trials ✓"
        } else {
            "fixed plan matched the target here"
        }
    );

    write_bench_json(&machine, &stressmark.program, injections, instr_budget);
}

/// PR number stamped into the perf-trajectory artifact when
/// `AVF_BENCH_PR` is unset. `scripts/ci/bench_delta.sh` is the single
/// authority in CI (it exports `AVF_BENCH_PR`); this fallback only
/// serves ad-hoc local runs, so a stale value here cannot break the
/// pipeline.
const BENCH_PR_FALLBACK: &str = "10";

/// Inj/s of three identical fixed campaigns under `model`, sorted
/// ascending (the caller reads the median at index 1 and records the
/// full spread in the artifact).
fn sorted_rates(
    machine: &MachineConfig,
    program: &avf_isa::Program,
    injections: u64,
    instr_budget: u64,
    model: avf_inject::FaultModel,
) -> [f64; 3] {
    let mut rates = Vec::with_capacity(3);
    for _ in 0..3 {
        let config = CampaignConfig {
            injections,
            seed: 42,
            threads: 0,
            instr_budget,
            fault_model: model,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let report = Campaign::new(machine, program, config).run();
        rates.push(report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    rates.sort_by(f64::total_cmp);
    rates.try_into().expect("three runs")
}

/// Inj/s of three identical fixed campaigns routed through an
/// in-process broker fronting two loopback workers, sorted ascending.
/// Every frame crosses two real TCP hops (driver → broker → worker),
/// so this series prices the whole brokered path: MUX wrapping, the
/// scheduler grant, and the relay copy. Delegated golden only — the
/// brokered plane does not ship checkpoint stores.
fn brokered_rates(
    machine: &MachineConfig,
    program: &avf_isa::Program,
    injections: u64,
    instr_budget: u64,
) -> [f64; 3] {
    use avf_broker::{Broker, BrokerOptions, BrokeredBackend};
    use avf_service::{spawn_local, ServeOptions};

    let workers: Vec<String> = (0..2)
        .map(|_| {
            spawn_local(ServeOptions {
                threads: 1,
                ..ServeOptions::default()
            })
            .expect("spawn bench worker")
            .to_string()
        })
        .collect();
    let store = std::env::temp_dir().join(format!(
        "avf-bench-broker-{}-campaigns.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let broker = Broker::start(BrokerOptions {
        workers,
        store_path: store.clone(),
        ..BrokerOptions::default()
    })
    .expect("start bench broker");
    let addr = broker.spawn_local().expect("broker listener").to_string();
    let backend = BrokeredBackend::connect(&addr, "bench", None).expect("connect");

    let mut rates = Vec::with_capacity(3);
    for _ in 0..3 {
        let config = CampaignConfig {
            injections,
            seed: 42,
            threads: 1,
            instr_budget,
            golden_mode: avf_inject::GoldenMode::Worker,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let report = Campaign::new(machine, program, config)
            .run_on(&backend)
            .expect("brokered bench campaign");
        rates.push(report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    let _ = std::fs::remove_file(&store);
    rates.sort_by(f64::total_cmp);
    rates.try_into().expect("three runs")
}

/// Generations/s of three identical fixed-seed GA searches on the
/// local evaluator, sorted ascending. The search hot path is candidate
/// scoring — codegen + simulate per distinct genome, memoized for
/// elites — so this series prices the whole `search` loop the
/// distributed backends must keep up with.
fn search_rates(machine: &MachineConfig, instr_budget: u64) -> [f64; 3] {
    use avf_ace::FaultRates;
    use avf_ga::GaParams;
    use avf_stressmark::{generate_stressmark, Fitness, SearchConfig};

    let mut config = SearchConfig::quick(machine.clone(), Fitness::overall(FaultRates::baseline()));
    config.ga = GaParams {
        population: 8,
        generations: 6,
        ..GaParams::quick()
    };
    config.eval_instructions = instr_budget;
    config.final_instructions = instr_budget;

    let mut rates = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        let outcome = generate_stressmark(&config).expect("local search cannot fail");
        let gens = outcome.ga.history.len() as f64;
        rates.push(gens / start.elapsed().as_secs_f64().max(1e-9));
    }
    rates.sort_by(f64::total_cmp);
    rates.try_into().expect("three runs")
}

/// Emits `BENCH_pr<N>.json` (path overridable via `AVF_BENCH_JSON`):
/// the median inj/s of three identical fixed campaigns, the per-PR
/// perf-trajectory artifact CI uploads and diffs against the committed
/// history in `bench-results/`. The primary `median` series runs the
/// trap fault model — directly comparable with the pre-replay history —
/// a second `replay_median` series tracks the replay oracle's
/// throughput (its hot path adds field decode + the in-flight walk, so
/// regressions there must be visible per PR too), and a third
/// `brokered_median` series runs the same trap campaign through an
/// in-process broker fronting two loopback workers, pricing the
/// relay/auth/scheduling overhead of the brokered path per PR. A
/// fourth `search_gen_per_s` series times the GA search loop itself
/// (generations/s on the local evaluator) so stressmark-search
/// regressions are visible independently of campaign throughput.
fn write_bench_json(
    machine: &MachineConfig,
    program: &avf_isa::Program,
    injections: u64,
    instr_budget: u64,
) {
    use avf_inject::FaultModel;
    let rates = sorted_rates(machine, program, injections, instr_budget, FaultModel::Trap);
    let replay = sorted_rates(
        machine,
        program,
        injections,
        instr_budget,
        FaultModel::Replay,
    );
    let brokered = brokered_rates(machine, program, injections, instr_budget);
    let search = search_rates(machine, instr_budget);
    let median = rates[1];
    let replay_median = replay[1];
    let brokered_median = brokered[1];
    let search_median = search[1];
    let scale = std::env::var("AVF_EXPERIMENT_SCALE").unwrap_or_else(|_| "standard".to_owned());
    let pr = std::env::var("AVF_BENCH_PR").unwrap_or_else(|_| BENCH_PR_FALLBACK.to_owned());
    let path = std::env::var("AVF_BENCH_JSON").unwrap_or_else(|_| format!("BENCH_pr{pr}.json"));
    // Hand-rolled JSON (the workspace is offline; no serde). One field
    // per line on purpose: the CI delta script extracts fields with
    // grep/sed.
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"bench\": \"campaign_throughput\",\n  \
         \"metric\": \"inj_per_s\",\n  \"scale\": \"{scale}\",\n  \
         \"injections\": {injections},\n  \"instr_budget\": {instr_budget},\n  \
         \"runs\": [{:.1}, {:.1}, {:.1}],\n  \"median\": {median:.1},\n  \
         \"replay_runs\": [{:.1}, {:.1}, {:.1}],\n  \"replay_median\": {replay_median:.1},\n  \
         \"brokered_runs\": [{:.1}, {:.1}, {:.1}],\n  \
         \"brokered_median\": {brokered_median:.1},\n  \
         \"search_runs\": [{:.2}, {:.2}, {:.2}],\n  \
         \"search_gen_per_s\": {search_median:.2}\n}}\n",
        rates[0],
        rates[1],
        rates[2],
        replay[0],
        replay[1],
        replay[2],
        brokered[0],
        brokered[1],
        brokered[2],
        search[0],
        search[1],
        search[2],
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "\nperf artifact {path}: median {median:.0} inj/s (trap), \
             {replay_median:.0} inj/s (replay), {brokered_median:.0} inj/s \
             (brokered), {search_median:.2} gen/s (search) over 3 fixed runs \
             each ({injections} inj, {scale} scale)"
        ),
        Err(e) => eprintln!("WARNING: could not write {path}: {e}"),
    }
}
