//! Ablation: inner-loop size vs core SER.
//!
//! Section IV-B argues the loop should be about ROB-sized — equal to the
//! ROB it minimizes L2 misses per ROB-full of instructions while keeping
//! the miss shadow saturated — and caps the search at 1.2 × ROB. This sweep
//! regenerates that design rationale.

use avf_ace::FaultRates;
use avf_codegen::Knobs;
use avf_sim::MachineConfig;
use avf_stressmark::{evaluate_knobs, Fitness};

fn main() {
    avf_bench::run("ablation_loop_size", |cfg| {
        let machine = MachineConfig::baseline();
        let fitness = Fitness::core(FaultRates::baseline());
        println!("loop size vs core SER (QS+RF units/bit), ROB = 80:");
        for loop_size in [12u32, 24, 40, 56, 72, 80, 88, 96] {
            let mut knobs = Knobs::paper_baseline();
            knobs.loop_size = loop_size;
            let (sm, result, score) =
                evaluate_knobs(&machine, &fitness, &knobs, cfg.final_instructions / 4);
            println!(
                "  loop {:>3} (emitted {:>3}): QS+RF {:.3}  rob_occ {:>5.1}  ipc {:.2}",
                loop_size,
                sm.derived.body_len,
                score,
                result.stats.avg_rob_occupancy(),
                result.stats.ipc()
            );
        }
    });
}
