//! Ablation: dependency distance and miss-shadow chain length vs IQ AVF.
//!
//! Section IV-A.2: low ILP (short dependency distance, more instructions
//! dependent on the miss) raises IQ occupancy and hence IQ AVF.

use avf_ace::{FaultRates, Structure};
use avf_codegen::Knobs;
use avf_sim::MachineConfig;
use avf_stressmark::{evaluate_knobs, Fitness};

fn main() {
    avf_bench::run("ablation_dep_distance", |cfg| {
        let machine = MachineConfig::baseline();
        let fitness = Fitness::core(FaultRates::baseline());
        let budget = cfg.final_instructions / 4;

        println!("instructions dependent on the L2 miss vs IQ AVF:");
        for dep in [0u32, 4, 8, 16, 24] {
            let mut knobs = Knobs::paper_baseline();
            knobs.n_dep_on_miss = dep;
            let (_, result, _) = evaluate_knobs(&machine, &fitness, &knobs, budget);
            println!(
                "  dep-on-miss {:>2}: IQ AVF {:.3}  iq_occ {:>5.1}",
                dep,
                result.report.avf(Structure::Iq),
                result.stats.avg_iq_occupancy()
            );
        }

        println!("dependency distance vs IQ AVF (spacing raises ILP):");
        for dist in [1u32, 2, 4, 8] {
            let mut knobs = Knobs::paper_baseline();
            knobs.dep_distance = dist;
            let (_, result, _) = evaluate_knobs(&machine, &fitness, &knobs, budget);
            println!(
                "  distance {:>2}: IQ AVF {:.3}  ipc {:.2}",
                dist,
                result.report.avf(Structure::Iq),
                result.stats.ipc()
            );
        }
    });
}
