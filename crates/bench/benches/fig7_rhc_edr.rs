//! Regenerates the paper's Figure 7: core SER of every workload and the
//! re-targeted stressmarks under the RHC (7a) and EDR (7b) fault rates.

fn main() {
    avf_bench::run("fig7_rhc_edr", |cfg| {
        for table in avf_stressmark::fig7(cfg) {
            println!("{table}");
            if let Some((who, v)) = table.column_max("QS+RF") {
                println!("highest QS+RF: {who} = {v:.3}\n");
            }
        }
    });
}
