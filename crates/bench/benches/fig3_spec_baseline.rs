//! Regenerates the paper's fig3 (see DESIGN.md §4).

fn main() {
    avf_bench::run("fig3_spec_baseline", |cfg| {
        let table = avf_stressmark::fig3(cfg);
        println!("{table}");
        if let Some((who, v)) = table.column_max("QS+RF") {
            println!("highest QS+RF: {who} = {v:.3}");
        }
    });
}
