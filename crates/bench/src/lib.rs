//! Shared scaffolding for the experiment-regeneration benches.
//!
//! Every figure/table of the paper's evaluation has a `cargo bench` target
//! that regenerates it (see DESIGN.md §4). Budgets honour the
//! `AVF_EXPERIMENT_SCALE` environment variable:
//!
//! * `smoke` — seconds per target (CI);
//! * `standard` (default) — tens of seconds per target;
//! * `full` — minutes per target, closest to the paper's scale.

use std::time::Instant;

use avf_ga::GaParams;
use avf_stressmark::ExperimentConfig;

/// Experiment scale selected via `AVF_EXPERIMENT_SCALE`.
#[must_use]
pub fn config() -> ExperimentConfig {
    match std::env::var("AVF_EXPERIMENT_SCALE").as_deref() {
        Ok("smoke") => ExperimentConfig::smoke(),
        Ok("full") => ExperimentConfig {
            workload_instructions: 8_000_000,
            eval_instructions: 300_000,
            final_instructions: 8_000_000,
            ga: GaParams {
                population: 24,
                generations: 32,
                ..GaParams::quick()
            },
            ..ExperimentConfig::standard()
        },
        _ => ExperimentConfig::standard(),
    }
}

/// Runs one experiment body with wall-clock reporting.
pub fn run(name: &str, body: impl FnOnce(&ExperimentConfig)) {
    let cfg = config();
    eprintln!(
        "[{name}] scale: workloads {}k instr, GA {}x{}, eval {}k, final {}k",
        cfg.workload_instructions / 1000,
        cfg.ga.population,
        cfg.ga.generations,
        cfg.eval_instructions / 1000,
        cfg.final_instructions / 1000,
    );
    let t = Instant::now();
    body(&cfg);
    eprintln!("[{name}] regenerated in {:.1}s", t.elapsed().as_secs_f64());
}
