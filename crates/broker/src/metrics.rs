//! Broker-side counters for the plaintext metrics endpoint.
//!
//! The rendering itself lives in [`crate::server`] (it needs live
//! queue depths and worker probes); this module only holds the atomic
//! counters every broker thread bumps lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic broker counters. All methods are lock-free and safe to
/// call from any thread.
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// Specs admitted to the queue.
    pub accepted: AtomicU64,
    /// Specs refused by admission control.
    pub rejected: AtomicU64,
    /// Campaigns that produced a report.
    pub completed: AtomicU64,
    /// Campaigns that terminated in error.
    pub failed: AtomicU64,
    /// Trials dispatched to workers across all campaigns.
    pub trials_dispatched: AtomicU64,
    /// Trials re-dispatched after a worker death.
    pub trials_redispatched: AtomicU64,
    /// Frames refused by authentication.
    pub auth_rejects: AtomicU64,
    /// Interactive (MUX) sessions relayed.
    pub mux_sessions: AtomicU64,
    /// Driver connections accepted.
    pub connections: AtomicU64,
}

impl BrokerStats {
    /// A fresh shared counter block.
    #[must_use]
    pub fn shared() -> Arc<BrokerStats> {
        Arc::new(BrokerStats::default())
    }

    /// Relaxed add — counters are advisory, not synchronization.
    pub fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Relaxed read for rendering.
    #[must_use]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = BrokerStats::shared();
        BrokerStats::bump(&stats.accepted, 1);
        BrokerStats::bump(&stats.accepted, 2);
        BrokerStats::bump(&stats.trials_dispatched, 128);
        assert_eq!(BrokerStats::get(&stats.accepted), 3);
        assert_eq!(BrokerStats::get(&stats.trials_dispatched), 128);
        assert_eq!(BrokerStats::get(&stats.failed), 0);
    }
}
