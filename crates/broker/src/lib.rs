//! Multi-tenant campaign broker for the AVF stressmark service.
//!
//! `avf-stressmark broker --listen <addr> --worker <addr>...` runs a
//! long-lived coordinator between campaign drivers and the `serve`
//! worker fleet. Where a bare [`avf_service::RemoteBackend`] couples a
//! driver's lifetime to its campaign, the broker decouples them:
//!
//! * **Admission control + fair scheduling** — submissions pass typed
//!   per-tenant and global quotas, then a deficit-round-robin queue
//!   ([`FairQueue`]) shares the fleet's `max_running` slots so no
//!   tenant's expensive campaign starves another's cheap one.
//! * **Durable campaigns** — accepted specs land in an append-only
//!   on-disk log ([`CampaignStore`]) before they are acknowledged. The
//!   broker runs them itself; a driver may disconnect and `attach`
//!   later — even after a broker restart — and receive a report
//!   bit-identical to what an uninterrupted run would have produced,
//!   because campaigns are deterministic functions of their spec.
//! * **Session multiplexing** — one persistent connection carries
//!   submissions, attachments, and whole interactive campaigns
//!   (`MUX`-tagged worker-protocol frames relayed into the broker's
//!   fleet session by [`BrokeredBackend`]).
//! * **Authenticated framing** — with `--auth-key-file`, every frame
//!   on both planes (driver↔broker, broker↔worker) carries a keyed
//!   SipHash tag over a per-direction sequence number; tampered,
//!   replayed, or unkeyed frames are rejected typed, never executed.
//! * **Observability** — `--metrics` serves a plaintext page: queue
//!   depths per tenant, slot usage, dispatch/re-dispatch counters, and
//!   live worker liveness probes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod store;

pub use backend::{BrokeredBackend, BrokeredEvaluator};
pub use client::{BrokerClient, SubmitError};
pub use metrics::BrokerStats;
pub use protocol::{CampaignPhase, CampaignSpec, LogRecord, RejectReason, Reply, Request};
pub use queue::FairQueue;
pub use server::{Broker, BrokerOptions};
pub use store::{CampaignStore, StoredCampaign};
