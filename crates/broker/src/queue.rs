//! Admission-controlled deficit-round-robin fair queue.
//!
//! Tenants are served in a fixed rotation; each visit tops the
//! tenant's deficit counter up by one quantum and serves queued jobs
//! until the head job costs more than the accumulated deficit. Cheap
//! campaigns therefore interleave freely while an expensive campaign
//! from one tenant cannot starve the others — the classic
//! deficit-round-robin guarantee, with cost measured in injections
//! rather than bytes.
//!
//! Admission control is applied at [`FairQueue::enqueue`] time and is
//! typed: a tenant over its pending quota gets
//! [`RejectReason::QuotaExceeded`], a full broker gets
//! [`RejectReason::QueueFull`], and neither disturbs jobs already
//! queued.

use std::collections::VecDeque;

use crate::protocol::RejectReason;

/// One queued unit of work with its scheduling cost.
#[derive(Debug)]
struct Job<T> {
    cost: u64,
    item: T,
}

/// Per-tenant state: a FIFO of jobs plus the DRR deficit counter.
#[derive(Debug)]
struct Lane<T> {
    tenant: String,
    deficit: u64,
    jobs: VecDeque<Job<T>>,
}

/// A deficit-round-robin queue over named tenants.
#[derive(Debug)]
pub struct FairQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Rotation cursor into `lanes`.
    cursor: usize,
    /// DRR quantum: deficit granted per rotation visit, in cost units.
    quantum: u64,
    /// Per-tenant pending-job cap (admission).
    per_tenant_limit: usize,
    /// Global pending-job cap (admission).
    total_limit: usize,
    pending: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue with the given quantum and admission limits.
    #[must_use]
    pub fn new(quantum: u64, per_tenant_limit: usize, total_limit: usize) -> FairQueue<T> {
        FairQueue {
            lanes: Vec::new(),
            cursor: 0,
            quantum: quantum.max(1),
            per_tenant_limit: per_tenant_limit.max(1),
            total_limit: total_limit.max(1),
            pending: 0,
        }
    }

    /// Total jobs queued across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Jobs queued for one tenant.
    #[must_use]
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|l| l.tenant == tenant)
            .map_or(0, |l| l.jobs.len())
    }

    /// Queue depth per tenant, for the metrics endpoint.
    #[must_use]
    pub fn depths(&self) -> Vec<(String, usize)> {
        self.lanes
            .iter()
            .filter(|l| !l.jobs.is_empty())
            .map(|l| (l.tenant.clone(), l.jobs.len()))
            .collect()
    }

    fn lane_mut(&mut self, tenant: &str) -> &mut Lane<T> {
        if let Some(i) = self.lanes.iter().position(|l| l.tenant == tenant) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane {
            tenant: tenant.to_owned(),
            deficit: 0,
            jobs: VecDeque::new(),
        });
        self.lanes.last_mut().expect("just pushed")
    }

    /// The admission decision alone, without queueing anything. Lets a
    /// caller that must do fallible work between admission and enqueue
    /// (e.g. a durable-log append) decide first and then
    /// [`FairQueue::force_enqueue`] — valid as long as the caller holds
    /// the queue's lock across both.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QuotaExceeded`] when the tenant is at its
    /// pending cap; [`RejectReason::QueueFull`] when the broker is at
    /// its global cap.
    pub fn check_admission(&self, tenant: &str) -> Result<(), RejectReason> {
        if self.tenant_depth(tenant) >= self.per_tenant_limit {
            return Err(RejectReason::QuotaExceeded);
        }
        if self.pending >= self.total_limit {
            return Err(RejectReason::QueueFull);
        }
        Ok(())
    }

    /// Admits a job, or refuses it with a typed reason. Refusal leaves
    /// the queue untouched.
    ///
    /// # Errors
    ///
    /// Same as [`FairQueue::check_admission`].
    pub fn enqueue(&mut self, tenant: &str, cost: u64, item: T) -> Result<(), RejectReason> {
        self.check_admission(tenant)?;
        self.force_enqueue(tenant, cost, item);
        Ok(())
    }

    /// Queues a job bypassing admission control — used when a restarted
    /// broker re-queues campaigns it already accepted (durability must
    /// not be subject to the quotas that governed first admission).
    pub fn force_enqueue(&mut self, tenant: &str, cost: u64, item: T) {
        let lane = self.lane_mut(tenant);
        lane.jobs.push_back(Job {
            cost: cost.max(1),
            item,
        });
        self.pending += 1;
    }

    /// Removes and returns the next job under the DRR policy, or
    /// `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.pending == 0 {
            return None;
        }
        loop {
            if self.lanes.is_empty() {
                return None;
            }
            self.cursor %= self.lanes.len();
            let quantum = self.quantum;
            let lane = &mut self.lanes[self.cursor];
            match lane.jobs.front() {
                // An idle tenant banks no deficit: credit accrues only
                // while work is actually waiting.
                None => {
                    lane.deficit = 0;
                    self.cursor += 1;
                }
                Some(head) if head.cost <= lane.deficit => {
                    let job = lane.jobs.pop_front().expect("head exists");
                    lane.deficit -= job.cost;
                    self.pending -= 1;
                    return Some(job.item);
                }
                // Head too expensive for the current deficit: grant a
                // quantum and move to the next tenant.
                Some(_) => {
                    lane.deficit = lane.deficit.saturating_add(quantum);
                    self.cursor += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue<&'static str>) -> Vec<&'static str> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(10, 8, 32);
        q.enqueue("a", 5, "first").unwrap();
        q.enqueue("a", 5, "second").unwrap();
        q.enqueue("a", 5, "third").unwrap();
        assert_eq!(drain(&mut q), ["first", "second", "third"]);
        assert!(q.is_empty());
    }

    #[test]
    fn cheap_tenant_interleaves_with_expensive_tenant() {
        // Tenant "big" queues jobs costing a full quantum each; tenant
        // "small" queues four cheap jobs. DRR must not let "big" hog
        // the head: with quantum 4, each rotation serves one big job
        // and accumulates enough deficit for small's cheap jobs.
        let mut q = FairQueue::new(4, 8, 32);
        q.enqueue("big", 4, "b1").unwrap();
        q.enqueue("big", 4, "b2").unwrap();
        q.enqueue("big", 4, "b3").unwrap();
        q.enqueue("small", 1, "s1").unwrap();
        q.enqueue("small", 1, "s2").unwrap();
        q.enqueue("small", 1, "s3").unwrap();
        q.enqueue("small", 1, "s4").unwrap();
        let order = drain(&mut q);
        // All jobs come out exactly once.
        assert_eq!(order.len(), 7);
        // "small" finishes all four jobs before "big" finishes its
        // three: the cheap tenant is never starved behind the heavy
        // one.
        let small_last = order.iter().rposition(|j| j.starts_with('s')).unwrap();
        let big_last = order.iter().rposition(|j| j.starts_with('b')).unwrap();
        assert!(
            small_last < big_last,
            "cheap tenant starved: order {order:?}"
        );
    }

    #[test]
    fn quota_and_queue_limits_reject_typed() {
        let mut q = FairQueue::new(8, 2, 3);
        q.enqueue("a", 1, "a1").unwrap();
        q.enqueue("a", 1, "a2").unwrap();
        // Third job for "a" trips the per-tenant quota.
        assert_eq!(q.enqueue("a", 1, "a3"), Err(RejectReason::QuotaExceeded));
        // Another tenant still fits until the global cap.
        q.enqueue("b", 1, "b1").unwrap();
        assert_eq!(q.enqueue("c", 1, "c1"), Err(RejectReason::QueueFull));
        // Rejections left the queue intact.
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q).len(), 3);
    }

    #[test]
    fn force_enqueue_bypasses_admission() {
        let mut q = FairQueue::new(8, 1, 1);
        q.enqueue("a", 1, "a1").unwrap();
        assert_eq!(q.enqueue("a", 1, "a2"), Err(RejectReason::QuotaExceeded));
        // Restart re-queues ignore both caps.
        q.force_enqueue("a", 1, "a2");
        q.force_enqueue("b", 1, "b1");
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q).len(), 3);
    }

    #[test]
    fn idle_tenant_does_not_bank_deficit() {
        let mut q = FairQueue::new(2, 8, 32);
        q.enqueue("a", 2, "a1").unwrap();
        assert_eq!(q.pop(), Some("a1"));
        // "a" sat idle; any banked deficit must reset. A later
        // expensive job still needs fresh quanta, so "b" queued first
        // with equal cost is not jumped.
        q.enqueue("b", 2, "b1").unwrap();
        q.enqueue("a", 2, "a2").unwrap();
        let order = drain(&mut q);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&"b1") && order.contains(&"a2"));
    }

    #[test]
    fn depths_reports_per_tenant() {
        let mut q = FairQueue::new(8, 8, 32);
        q.enqueue("a", 1, "a1").unwrap();
        q.enqueue("a", 1, "a2").unwrap();
        q.enqueue("b", 1, "b1").unwrap();
        let mut depths = q.depths();
        depths.sort();
        assert_eq!(depths, [("a".to_owned(), 2), ("b".to_owned(), 1)]);
        assert_eq!(q.tenant_depth("a"), 2);
        assert_eq!(q.tenant_depth("missing"), 0);
    }
}
