//! The broker process: accept loop, fair scheduler, campaign runners,
//! and the plaintext metrics renderer.
//!
//! One broker fronts a fixed worker fleet for many drivers. Every
//! driver connection is persistent and multiplexed: campaign-id-tagged
//! replies and `MUX`-tagged interactive sessions interleave freely, so
//! a driver submits, attaches, and relays campaigns over one socket.
//!
//! Work reaches the workers through exactly one gate — the
//! deficit-round-robin scheduler with `max_running` slots — whichever
//! path it arrives by:
//!
//! * **Spec path** (durable): a [`CampaignSpec`] is admitted, appended
//!   to the on-disk log, queued, and eventually run *by the broker
//!   itself* on a runner thread. The submitting driver may die, attach
//!   later, or never return; the campaign finishes regardless and its
//!   report is durably stored. A restarted broker re-queues every
//!   unfinished spec — campaigns are deterministic, so the re-run
//!   report is identical to what the lost run would have produced.
//! * **Interactive path**: `MUX`-wrapped standard worker-protocol
//!   frames. The broker relays trial batches into its own
//!   [`RemoteBackend`] fleet session (inheriting its re-dispatch
//!   supervision), so a driver using [`crate::BrokeredBackend`] gets
//!   the full fleet behind a single authenticated connection. An
//!   interactive session occupies one scheduler slot for its lifetime
//!   and pays a full quantum, so spec campaigns are never starved by
//!   chatty drivers.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use avf_inject::{
    BackendError, Campaign, CampaignBackend, CampaignSession, DispatchRecord, GoldenSpec, JobSpec,
    OpenedJob, Trial, TrialStream,
};
use avf_isa::wire::kind;
use avf_service::auth::{read_frame_verified, write_frame_signed, AuthKey, ConnectionAuth};
use avf_service::protocol::{ClientMessage, JobReady, Mux, ServerMessage, SetupMode};
use avf_service::{EvalBatch, EvalFleet, EvalScore, RemoteBackend};

use crate::metrics::BrokerStats;
use crate::protocol::{frame_kind, CampaignPhase, CampaignSpec, Reply, Request};
use crate::queue::FairQueue;
use crate::store::{CampaignStore, StoredCampaign};

/// Broker tuning.
#[derive(Debug, Clone)]
pub struct BrokerOptions {
    /// Worker addresses (`host:port`) the broker fronts. Must not be
    /// empty.
    pub workers: Vec<String>,
    /// Frame-authentication key, applied on *both* planes: driver
    /// connections must present it, and worker connections are opened
    /// with it. `None` runs both planes plain.
    pub auth: Option<AuthKey>,
    /// Campaigns (spec or interactive) executing concurrently.
    pub max_running: usize,
    /// Admission: queued campaigns allowed per tenant.
    pub per_tenant_pending: usize,
    /// Admission: queued campaigns allowed in total.
    pub max_pending: usize,
    /// Deficit-round-robin quantum, in injection units.
    pub quantum: u64,
    /// Path of the durable campaign log.
    pub store_path: PathBuf,
}

impl Default for BrokerOptions {
    fn default() -> BrokerOptions {
        BrokerOptions {
            workers: Vec::new(),
            auth: None,
            max_running: 2,
            per_tenant_pending: 16,
            max_pending: 64,
            quantum: 512,
            store_path: PathBuf::from("broker-campaigns.log"),
        }
    }
}

/// A scheduled unit: a durable spec campaign, or a slot grant for an
/// interactive relay waiting to run.
enum Work {
    Spec(u64),
    Grant(mpsc::Sender<()>),
}

struct Sched {
    queue: FairQueue<Work>,
    running: usize,
}

/// Live state of one known campaign.
struct CampaignState {
    tenant: String,
    spec: Arc<CampaignSpec>,
    phase: CampaignPhase,
    trials_done: u64,
    outcome: Option<Result<Arc<avf_inject::CampaignReport>, String>>,
    /// Outboxes of connections attached to this campaign; each gets
    /// Status pushes and the terminal Report/Failed frame.
    waiters: Vec<mpsc::Sender<Vec<u8>>>,
}

pub(crate) struct Inner {
    opts: BrokerOptions,
    store: Mutex<CampaignStore>,
    sched: Mutex<Sched>,
    wake: Condvar,
    registry: Mutex<HashMap<u64, CampaignState>>,
    next_id: AtomicU64,
    stats: Arc<BrokerStats>,
}

/// A running broker: scheduler + runners started, ready to accept.
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    /// Opens the durable store, replays it, re-queues every unfinished
    /// campaign in original acceptance order, and starts the scheduler.
    ///
    /// # Errors
    ///
    /// Fails if the store cannot be opened.
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` is empty — a broker with no fleet
    /// cannot run campaigns.
    pub fn start(opts: BrokerOptions) -> std::io::Result<Broker> {
        assert!(
            !opts.workers.is_empty(),
            "broker needs at least one worker address"
        );
        let (store, replayed) = CampaignStore::open(&opts.store_path)?;
        let mut queue = FairQueue::new(opts.quantum, opts.per_tenant_pending, opts.max_pending);
        let mut registry = HashMap::new();
        let mut next_id = 1;
        let mut requeued = 0usize;
        for StoredCampaign {
            id,
            tenant,
            spec,
            trials_done,
            outcome,
        } in replayed
        {
            next_id = next_id.max(id + 1);
            let phase = match &outcome {
                None => CampaignPhase::Queued,
                Some(Ok(_)) => CampaignPhase::Done,
                Some(Err(_)) => CampaignPhase::Failed,
            };
            if outcome.is_none() {
                // Durability beats admission: the broker already said
                // yes to these, so restart re-queues bypass the quotas.
                queue.force_enqueue(&tenant, spec.cost(), Work::Spec(id));
                requeued += 1;
            }
            registry.insert(
                id,
                CampaignState {
                    tenant,
                    spec,
                    phase,
                    trials_done,
                    outcome,
                    waiters: Vec::new(),
                },
            );
        }
        if requeued > 0 {
            eprintln!("broker: re-queued {requeued} unfinished campaign(s) from the durable log");
        }
        let inner = Arc::new(Inner {
            opts,
            store: Mutex::new(store),
            sched: Mutex::new(Sched { queue, running: 0 }),
            wake: Condvar::new(),
            registry: Mutex::new(registry),
            next_id: AtomicU64::new(next_id),
            stats: BrokerStats::shared(),
        });
        spawn_scheduler(Arc::clone(&inner));
        Ok(Broker { inner })
    }

    /// Runs the accept loop forever, one handler thread per driver
    /// connection. Never returns except on listener failure.
    ///
    /// # Errors
    ///
    /// Returns the I/O error that broke the accept loop.
    pub fn listen(&self, listener: TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                BrokerStats::bump(&inner.stats.connections, 1);
                handle_driver(&inner, stream);
            });
        }
        Ok(())
    }

    /// Binds an ephemeral local port and runs [`Broker::listen`] on a
    /// background thread — the in-process harness tests use. The
    /// handle stays usable (e.g. for [`Broker::render_metrics`]).
    ///
    /// # Errors
    ///
    /// Fails if the port cannot be bound.
    pub fn spawn_local(&self) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let broker = Broker {
            inner: Arc::clone(&self.inner),
        };
        std::thread::spawn(move || {
            if let Err(e) = broker.listen(listener) {
                eprintln!("broker: accept loop failed: {e}");
            }
        });
        Ok(addr)
    }

    /// The broker's counters (shared with every handler thread).
    #[must_use]
    pub fn stats(&self) -> Arc<BrokerStats> {
        Arc::clone(&self.inner.stats)
    }

    /// Renders the metrics page: queue depths, slot usage, counters,
    /// and a live liveness probe of every fronted worker.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        render_metrics(&self.inner)
    }

    /// A rendering closure for [`avf_service::spawn_metrics`].
    pub fn metrics_renderer(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let inner = Arc::clone(&self.inner);
        move || render_metrics(&inner)
    }
}

/// Escapes a Prometheus label value. Tenant names come verbatim from
/// the driver's Hello frame, so backslashes, quotes, and newlines must
/// not reach the exposition format unescaped.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_metrics(inner: &Inner) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "avf_broker_up 1");
    let _ = writeln!(out, "avf_broker_workers {}", inner.opts.workers.len());
    {
        let sched = inner.sched.lock().expect("sched lock");
        let _ = writeln!(out, "avf_broker_running {}", sched.running);
        let _ = writeln!(out, "avf_broker_queued {}", sched.queue.len());
        for (tenant, depth) in sched.queue.depths() {
            let _ = writeln!(
                out,
                "avf_broker_queue_depth{{tenant=\"{}\"}} {depth}",
                escape_label(&tenant)
            );
        }
    }
    {
        // Per-tenant campaign counts by lifecycle phase.
        let registry = inner.registry.lock().expect("registry lock");
        let mut counts: HashMap<(String, CampaignPhase), u64> = HashMap::new();
        for state in registry.values() {
            *counts
                .entry((state.tenant.clone(), state.phase))
                .or_insert(0) += 1;
        }
        let mut counts: Vec<_> = counts.into_iter().collect();
        counts.sort_by(|a, b| a.0.cmp(&b.0));
        for ((tenant, phase), n) in counts {
            let _ = writeln!(
                out,
                "avf_broker_campaigns{{tenant=\"{}\",phase=\"{phase}\"}} {n}",
                escape_label(&tenant)
            );
        }
    }
    let s = &inner.stats;
    for (name, counter) in [
        ("accepted", &s.accepted),
        ("rejected", &s.rejected),
        ("completed", &s.completed),
        ("failed", &s.failed),
        ("trials_dispatched", &s.trials_dispatched),
        ("trials_redispatched", &s.trials_redispatched),
        ("auth_rejects", &s.auth_rejects),
        ("mux_sessions", &s.mux_sessions),
        ("connections", &s.connections),
    ] {
        let _ = writeln!(out, "avf_broker_{name}_total {}", BrokerStats::get(counter));
    }
    // Liveness is probed at scrape time: a connect that completes
    // within the timeout is "up". Cheap enough for a metrics page and
    // always current, unlike a background heartbeat.
    for addr in &inner.opts.workers {
        let up = addr
            .parse::<SocketAddr>()
            .ok()
            .and_then(|a| TcpStream::connect_timeout(&a, Duration::from_millis(250)).ok())
            .is_some();
        let _ = writeln!(out, "avf_worker_up{{worker=\"{addr}\"}} {}", u8::from(up));
    }
    out
}

// ---------------------------------------------------------------------------
// Scheduler and runners
// ---------------------------------------------------------------------------

fn spawn_scheduler(inner: Arc<Inner>) {
    std::thread::spawn(move || loop {
        let work = {
            let mut sched = inner.sched.lock().expect("sched lock");
            loop {
                if sched.running < inner.opts.max_running {
                    if let Some(work) = sched.queue.pop() {
                        sched.running += 1;
                        break work;
                    }
                }
                sched = inner.wake.wait(sched).expect("sched lock");
            }
        };
        match work {
            Work::Spec(id) => {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    run_campaign(&inner, id);
                    release_slot(&inner);
                });
            }
            Work::Grant(tx) => {
                // The relay thread this grant was for may already be
                // gone (driver hung up while queued): reclaim the slot.
                if tx.send(()).is_err() {
                    release_slot(&inner);
                }
            }
        }
    });
}

fn release_slot(inner: &Inner) {
    let mut sched = inner.sched.lock().expect("sched lock");
    sched.running = sched.running.saturating_sub(1);
    drop(sched);
    inner.wake.notify_all();
}

/// Pushes a reply frame to every waiter of campaign `id`, dropping
/// waiters whose connection is gone.
fn notify_waiters(inner: &Inner, id: u64, frame: &[u8]) {
    let mut registry = inner.registry.lock().expect("registry lock");
    if let Some(state) = registry.get_mut(&id) {
        state.waiters.retain(|w| w.send(frame.to_vec()).is_ok());
    }
}

/// Executes one durable spec campaign on the worker fleet.
fn run_campaign(inner: &Arc<Inner>, id: u64) {
    let spec = {
        let mut registry = inner.registry.lock().expect("registry lock");
        let Some(state) = registry.get_mut(&id) else {
            return;
        };
        state.phase = CampaignPhase::Running;
        Arc::clone(&state.spec)
    };
    notify_waiters(
        inner,
        id,
        &Reply::Status {
            id,
            phase: CampaignPhase::Running,
            trials_done: 0,
        }
        .to_wire(),
    );
    let fleet = match inner.opts.auth {
        Some(key) => RemoteBackend::with_auth(inner.opts.workers.clone(), key),
        None => RemoteBackend::new(inner.opts.workers.clone()),
    };
    let observed = ObservedBackend {
        inner: fleet,
        broker: Arc::clone(inner),
        id,
    };
    let result = Campaign::new(&spec.machine, &spec.program, spec.to_config()).run_on(&observed);
    let (record, reply) = match result {
        Ok(report) => {
            BrokerStats::bump(&inner.stats.completed, 1);
            BrokerStats::bump(
                &inner.stats.trials_redispatched,
                report.redispatched_trials(),
            );
            let report = Box::new(report);
            (
                crate::protocol::LogRecord::Report {
                    id,
                    report: report.clone(),
                },
                Reply::Report { id, report },
            )
        }
        Err(e) => {
            BrokerStats::bump(&inner.stats.failed, 1);
            eprintln!("broker: campaign {id} failed: {e}");
            (
                crate::protocol::LogRecord::Failed {
                    id,
                    error: e.to_string(),
                },
                Reply::Failed {
                    id,
                    error: e.to_string(),
                },
            )
        }
    };
    if let Err(e) = inner.store.lock().expect("store lock").append(&record) {
        eprintln!("broker: durable log append failed for campaign {id}: {e}");
    }
    {
        let mut registry = inner.registry.lock().expect("registry lock");
        if let Some(state) = registry.get_mut(&id) {
            match &record {
                crate::protocol::LogRecord::Report { report, .. } => {
                    state.phase = CampaignPhase::Done;
                    state.outcome = Some(Ok(Arc::new(*report.clone())));
                }
                crate::protocol::LogRecord::Failed { error, .. } => {
                    state.phase = CampaignPhase::Failed;
                    state.outcome = Some(Err(error.clone()));
                }
                _ => unreachable!("terminal records only"),
            }
        }
    }
    notify_waiters(inner, id, &reply.to_wire());
}

/// A [`CampaignBackend`] wrapper that reports progress: every submitted
/// batch bumps the campaign's durable trial counter and pushes a
/// Status frame to attached drivers.
struct ObservedBackend {
    inner: RemoteBackend,
    broker: Arc<Inner>,
    id: u64,
}

impl CampaignBackend for ObservedBackend {
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn open(&self, spec: JobSpec) -> Result<OpenedJob, BackendError> {
        let mut opened = self.inner.open(spec)?;
        opened.session = Box::new(ObservedSession {
            inner: opened.session,
            broker: Arc::clone(&self.broker),
            id: self.id,
        });
        Ok(opened)
    }
}

struct ObservedSession {
    inner: Box<dyn CampaignSession>,
    broker: Arc<Inner>,
    id: u64,
}

impl CampaignSession for ObservedSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let done = {
            let mut registry = self.broker.registry.lock().expect("registry lock");
            let state = registry.get_mut(&self.id);
            match state {
                Some(state) => {
                    state.trials_done += trials.len() as u64;
                    state.trials_done
                }
                None => trials.len() as u64,
            }
        };
        BrokerStats::bump(&self.broker.stats.trials_dispatched, trials.len() as u64);
        // Progress is advisory durability: losing the tail only means a
        // restarted broker reports a stale count until the re-run
        // overtakes it.
        let _ = self.broker.store.lock().expect("store lock").append(
            &crate::protocol::LogRecord::Progress {
                id: self.id,
                trials_done: done,
            },
        );
        notify_waiters(
            &self.broker,
            self.id,
            &Reply::Status {
                id: self.id,
                phase: CampaignPhase::Running,
                trials_done: done,
            }
            .to_wire(),
        );
        self.inner.submit(trials)
    }

    fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.inner.dispatch_log()
    }
}

// ---------------------------------------------------------------------------
// Driver connections
// ---------------------------------------------------------------------------

/// Sign-and-write must be one critical section: the MAC covers a
/// per-direction sequence number, so tag order has to match byte order
/// on the socket. One writer thread per connection guarantees it.
fn spawn_outbox_writer(
    stream: TcpStream,
    auth: Option<Arc<ConnectionAuth>>,
) -> mpsc::Sender<Vec<u8>> {
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    std::thread::spawn(move || {
        let mut w = BufWriter::new(stream);
        while let Ok(payload) = rx.recv() {
            let signer = auth.as_ref().map(|a| a.signer.as_ref());
            if write_frame_signed(&mut w, &payload, signer).is_err() || w.flush().is_err() {
                return; // connection gone; senders will see closed channel
            }
        }
    });
    tx
}

fn handle_driver(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let auth = inner
        .opts
        .auth
        .map(|key| Arc::new(ConnectionAuth::server(key)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let outbox = spawn_outbox_writer(write_half, auth.clone());
    let verifier = auth.as_ref().map(|a| a.verifier.as_ref());
    let mut reader = BufReader::new(&stream);
    let mut tenant: Option<String> = None;
    // Interactive relays by MUX tag: frames after the first are routed
    // to the relay thread's channel.
    let mut routes: HashMap<u64, mpsc::Sender<Vec<u8>>> = HashMap::new();

    loop {
        let payload = match read_frame_verified(&mut reader, verifier) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                if matches!(e, BackendError::Auth(_)) {
                    BrokerStats::bump(&inner.stats.auth_rejects, 1);
                }
                // Best-effort typed goodbye; the channel closing tears
                // down the writer and every relay.
                let _ = outbox.send(
                    Reply::Failed {
                        id: 0,
                        error: e.to_string(),
                    }
                    .to_wire(),
                );
                eprintln!("broker: driver connection failed: {e}");
                return;
            }
        };
        match frame_kind(&payload) {
            Some(kind::MUX) => {
                let Ok(mux) = Mux::from_wire(&payload) else {
                    let _ = outbox.send(
                        Reply::Failed {
                            id: 0,
                            error: "malformed MUX frame".to_owned(),
                        }
                        .to_wire(),
                    );
                    return;
                };
                if let Some(route) = routes.get(&mux.tag) {
                    // An empty payload is the driver's end-of-session
                    // marker: the relay exits on it, so drop the route
                    // now rather than keeping a dead Sender for the
                    // life of this persistent connection.
                    let ended = mux.inner.is_empty();
                    if route.send(mux.inner).is_err() || ended {
                        routes.remove(&mux.tag);
                    }
                    continue;
                }
                // A stale end-of-session marker for a tag whose route
                // is already gone must not open a new session.
                if mux.inner.is_empty() {
                    continue;
                }
                // First frame of a new interactive session.
                let Some(tenant) = tenant.clone() else {
                    let _ = outbox.send(mux_error(mux.tag, "hello required before MUX"));
                    continue;
                };
                let (tx, rx) = mpsc::channel::<Vec<u8>>();
                routes.insert(mux.tag, tx);
                let inner = Arc::clone(inner);
                let outbox = outbox.clone();
                std::thread::spawn(move || {
                    relay_interactive(&inner, &tenant, mux.tag, mux.inner, &rx, &outbox);
                });
            }
            _ => match Request::from_wire(&payload) {
                Ok(Request::Hello { tenant: t }) => {
                    tenant = Some(t);
                    let _ = outbox.send(
                        Reply::HelloAck {
                            workers: inner.opts.workers.len() as u64,
                        }
                        .to_wire(),
                    );
                }
                Ok(Request::Submit(spec)) => {
                    let Some(tenant) = tenant.as_deref() else {
                        let _ = outbox.send(
                            Reply::Failed {
                                id: 0,
                                error: "hello required before submit".to_owned(),
                            }
                            .to_wire(),
                        );
                        continue;
                    };
                    let reply = admit_spec(inner, tenant, *spec, &outbox);
                    let _ = outbox.send(reply.to_wire());
                }
                Ok(Request::Attach { id }) => {
                    let reply = attach(inner, id, &outbox);
                    for frame in reply {
                        let _ = outbox.send(frame);
                    }
                }
                Err(e) => {
                    let _ = outbox.send(
                        Reply::Failed {
                            id: 0,
                            error: format!("unrecognized frame: {e}"),
                        }
                        .to_wire(),
                    );
                    return;
                }
            },
        }
    }
}

/// Admission control for the durable spec path. On admit: log, queue,
/// register, wake the scheduler, and the submitting connection is
/// auto-attached.
fn admit_spec(
    inner: &Arc<Inner>,
    tenant: &str,
    spec: CampaignSpec,
    outbox: &mpsc::Sender<Vec<u8>>,
) -> Reply {
    let spec = Arc::new(spec);
    // Admission, id allocation, durable append, registry insert, and
    // enqueue are one critical section under the sched lock: two
    // concurrent submits can neither share an id nor jump the
    // admission check, and — because the enqueue comes last — a waking
    // scheduler thread can never pop an id that isn't already durably
    // logged and registered.
    let mut sched = inner.sched.lock().expect("sched lock");
    if let Err(reason) = sched.queue.check_admission(tenant) {
        let detail = match reason {
            crate::protocol::RejectReason::QuotaExceeded => format!(
                "tenant `{tenant}` already has {} campaign(s) pending (limit {})",
                sched.queue.tenant_depth(tenant),
                inner.opts.per_tenant_pending
            ),
            crate::protocol::RejectReason::QueueFull => format!(
                "broker queue is full ({} campaign(s) pending, limit {})",
                sched.queue.len(),
                inner.opts.max_pending
            ),
            crate::protocol::RejectReason::BadSpec => "unusable spec".to_owned(),
        };
        drop(sched);
        BrokerStats::bump(&inner.stats.rejected, 1);
        return Reply::Rejected { reason, detail };
    }
    let id = inner.next_id.load(std::sync::atomic::Ordering::Relaxed);
    // Durable before acknowledged: once the driver sees Accepted, a
    // broker restart must still know about the campaign. Nothing is
    // queued or registered yet, so a failed append refuses the
    // campaign instead of acknowledging it un-durably.
    if let Err(e) =
        inner
            .store
            .lock()
            .expect("store lock")
            .append(&crate::protocol::LogRecord::Accepted {
                id,
                tenant: tenant.to_owned(),
                spec: Box::new((*spec).clone()),
            })
    {
        drop(sched);
        eprintln!("broker: durable log append failed for campaign {id}: {e}");
        BrokerStats::bump(&inner.stats.rejected, 1);
        return Reply::Failed {
            id: 0,
            error: format!("broker could not durably record the campaign: {e}"),
        };
    }
    inner
        .next_id
        .store(id + 1, std::sync::atomic::Ordering::Relaxed);
    inner.registry.lock().expect("registry lock").insert(
        id,
        CampaignState {
            tenant: tenant.to_owned(),
            spec: Arc::clone(&spec),
            phase: CampaignPhase::Queued,
            trials_done: 0,
            outcome: None,
            waiters: vec![outbox.clone()],
        },
    );
    // Admission was checked above under this same lock, so the caps
    // cannot have been overshot in between.
    sched
        .queue
        .force_enqueue(tenant, spec.cost(), Work::Spec(id));
    drop(sched);
    BrokerStats::bump(&inner.stats.accepted, 1);
    inner.wake.notify_all();
    Reply::Accepted { id }
}

/// Attach: current Status immediately, then the terminal frame — now if
/// the campaign already finished, or later via the waiter list.
fn attach(inner: &Arc<Inner>, id: u64, outbox: &mpsc::Sender<Vec<u8>>) -> Vec<Vec<u8>> {
    let mut registry = inner.registry.lock().expect("registry lock");
    let Some(state) = registry.get_mut(&id) else {
        return vec![Reply::Failed {
            id,
            error: format!("unknown campaign id {id}"),
        }
        .to_wire()];
    };
    let mut frames = vec![Reply::Status {
        id,
        phase: state.phase,
        trials_done: state.trials_done,
    }
    .to_wire()];
    match &state.outcome {
        Some(Ok(report)) => frames.push(
            Reply::Report {
                id,
                report: Box::new((**report).clone()),
            }
            .to_wire(),
        ),
        Some(Err(error)) => frames.push(
            Reply::Failed {
                id,
                error: error.clone(),
            }
            .to_wire(),
        ),
        None => state.waiters.push(outbox.clone()),
    }
    frames
}

// ---------------------------------------------------------------------------
// Interactive relay
// ---------------------------------------------------------------------------

fn mux_error(tag: u64, msg: &str) -> Vec<u8> {
    Mux::wrap(tag, ServerMessage::Error(msg.to_owned()).to_wire()).to_wire()
}

/// Releases the scheduler slot when the relay exits by any path.
struct SlotGuard<'a>(&'a Inner);
impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        release_slot(self.0);
    }
}

/// Runs one interactive session: admission, slot wait, fleet open,
/// then batch relay until the driver closes the tag or the connection.
fn relay_interactive(
    inner: &Arc<Inner>,
    tenant: &str,
    tag: u64,
    first: Vec<u8>,
    rx: &mpsc::Receiver<Vec<u8>>,
    outbox: &mpsc::Sender<Vec<u8>>,
) {
    BrokerStats::bump(&inner.stats.mux_sessions, 1);
    // A fitness-evaluation session (wire v7) opens with an EVAL_BATCH
    // instead of a campaign setup; it shares this path's admission and
    // slot accounting but relays generations into an EvalFleet.
    if frame_kind(&first) == Some(kind::EVAL_BATCH) {
        return relay_eval(inner, tenant, tag, first, rx, outbox);
    }
    let setup = match ClientMessage::from_wire(&first) {
        Ok(ClientMessage::Setup(setup)) => *setup,
        Ok(_) | Err(_) => {
            let _ = outbox.send(mux_error(tag, "interactive session must open with a setup"));
            return;
        }
    };
    let SetupMode::Delegated {
        checkpoint_interval,
    } = setup.mode
    else {
        // Shipped mode would make the broker an N-worker store relay;
        // the brokered path is delegated-golden by design.
        let _ = outbox.send(mux_error(
            tag,
            "brokered sessions are delegated-golden only (golden mode `worker`)",
        ));
        return;
    };

    // Admission + a run slot: interactive sessions pay a full quantum
    // so the DRR never lets them crowd out queued spec campaigns.
    let (grant_tx, grant_rx) = mpsc::channel();
    {
        let mut sched = inner.sched.lock().expect("sched lock");
        if let Err(reason) = sched
            .queue
            .enqueue(tenant, inner.opts.quantum, Work::Grant(grant_tx))
        {
            drop(sched);
            BrokerStats::bump(&inner.stats.rejected, 1);
            let _ = outbox.send(mux_error(tag, &format!("admission rejected: {reason}")));
            return;
        }
    }
    inner.wake.notify_all();
    if grant_rx.recv().is_err() {
        return; // scheduler gone — broker shutting down
    }
    let _slot = SlotGuard(inner);

    let fleet = match inner.opts.auth {
        Some(key) => RemoteBackend::with_auth(inner.opts.workers.clone(), key),
        None => RemoteBackend::new(inner.opts.workers.clone()),
    };
    let opened = match fleet.open(JobSpec {
        machine: setup.machine,
        program: setup.program,
        instr_budget: setup.instr_budget,
        fault_model: setup.fault_model,
        golden: GoldenSpec::Delegated {
            checkpoint_interval,
        },
        prune: setup.prune,
    }) {
        Ok(opened) => opened,
        Err(e) => {
            let _ = outbox.send(mux_error(tag, &format!("fleet open failed: {e}")));
            return;
        }
    };
    let ready = JobReady {
        store_hash: 0, // no store crosses the broker plane
        golden: opened.golden,
        checkpoints: opened.checkpoints as u64,
        prune: opened.prune.as_deref().cloned(),
    };
    let mut session = opened.session;
    if outbox
        .send(Mux::wrap(tag, ServerMessage::Ready(ready).to_wire()).to_wire())
        .is_err()
    {
        return;
    }

    // Batch relay loop: each driver batch becomes one fleet submit,
    // with RemoteBackend's re-dispatch supervision underneath.
    let mut redis_seen = 0u64;
    while let Ok(frame) = rx.recv() {
        // The driver's end-of-session marker: release the slot so the
        // next campaign on this persistent connection can be granted.
        if frame.is_empty() {
            return;
        }
        let trials = match ClientMessage::from_wire(&frame) {
            Ok(ClientMessage::Batch(trials)) => trials,
            Ok(_) | Err(_) => {
                let _ = outbox.send(mux_error(tag, "expected a trial batch frame"));
                return;
            }
        };
        BrokerStats::bump(&inner.stats.trials_dispatched, trials.len() as u64);
        let stream = match session.submit(&trials) {
            Ok(stream) => stream,
            Err(e) => {
                let _ = outbox.send(mux_error(tag, &e.to_string()));
                return;
            }
        };
        let mut events = 0u64;
        for event in stream {
            match event {
                Ok(ev) => {
                    events += 1;
                    if outbox
                        .send(Mux::wrap(tag, ServerMessage::Event(ev).to_wire()).to_wire())
                        .is_err()
                    {
                        return;
                    }
                }
                Err(e) => {
                    let _ = outbox.send(mux_error(tag, &e.to_string()));
                    return;
                }
            }
        }
        // The dispatch log accumulates across batches; bump only the
        // delta re-dispatched since the last batch.
        let redispatched: u64 = session
            .dispatch_log()
            .iter()
            .filter(|d| d.redispatched)
            .map(|d| d.trials)
            .sum();
        if redispatched > redis_seen {
            BrokerStats::bump(&inner.stats.trials_redispatched, redispatched - redis_seen);
            redis_seen = redispatched;
        }
        if outbox
            .send(Mux::wrap(tag, ServerMessage::Done { events }.to_wire()).to_wire())
            .is_err()
        {
            return;
        }
    }
}

/// Runs one fitness-evaluation session: admission, slot wait, fleet
/// connect, then one [`EvalFleet`] round per `EVAL_BATCH` until the
/// driver closes the tag or the connection. Mirrors the interactive
/// campaign relay — same quantum, same slot guard — so chatty searches
/// cannot crowd out queued spec campaigns either.
fn relay_eval(
    inner: &Arc<Inner>,
    tenant: &str,
    tag: u64,
    first: Vec<u8>,
    rx: &mpsc::Receiver<Vec<u8>>,
    outbox: &mpsc::Sender<Vec<u8>>,
) {
    let (grant_tx, grant_rx) = mpsc::channel();
    {
        let mut sched = inner.sched.lock().expect("sched lock");
        if let Err(reason) = sched
            .queue
            .enqueue(tenant, inner.opts.quantum, Work::Grant(grant_tx))
        {
            drop(sched);
            BrokerStats::bump(&inner.stats.rejected, 1);
            let _ = outbox.send(mux_error(tag, &format!("admission rejected: {reason}")));
            return;
        }
    }
    inner.wake.notify_all();
    if grant_rx.recv().is_err() {
        return; // scheduler gone — broker shutting down
    }
    let _slot = SlotGuard(inner);

    let mut fleet = match EvalFleet::connect(&inner.opts.workers, inner.opts.auth) {
        Ok(fleet) => fleet,
        Err(e) => {
            let _ = outbox.send(mux_error(tag, &format!("fleet open failed: {e}")));
            return;
        }
    };
    let mut frame = first;
    let mut redis_seen = 0u64;
    loop {
        // The driver's end-of-session marker, as on the campaign plane.
        if frame.is_empty() {
            return;
        }
        let batch = match EvalBatch::from_wire(&frame) {
            Ok(batch) => batch,
            Err(e) => {
                let _ = outbox.send(mux_error(tag, &format!("bad eval batch: {e}")));
                return;
            }
        };
        BrokerStats::bump(
            &inner.stats.trials_dispatched,
            batch.individuals.len() as u64,
        );
        let genomes: Vec<Vec<f64>> = batch.individuals.iter().map(|(_, g)| g.clone()).collect();
        let scored = match fleet.run(&batch.context, &genomes) {
            Ok(scored) => scored,
            Err(e) => {
                let _ = outbox.send(mux_error(tag, &e.to_string()));
                return;
            }
        };
        let mut results: Vec<EvalScore> = batch
            .individuals
            .iter()
            .zip(&scored)
            .map(|((index, _), &(score, cached))| EvalScore {
                index: *index,
                score,
                cached,
            })
            .collect();
        results.sort_by_key(|s| s.index);
        for score in &results {
            if outbox
                .send(Mux::wrap(tag, score.to_wire()).to_wire())
                .is_err()
            {
                return;
            }
        }
        let redispatched = fleet.redispatched();
        if redispatched > redis_seen {
            BrokerStats::bump(&inner.stats.trials_redispatched, redispatched - redis_seen);
            redis_seen = redispatched;
        }
        if outbox
            .send(
                Mux::wrap(
                    tag,
                    ServerMessage::Done {
                        events: results.len() as u64,
                    }
                    .to_wire(),
                )
                .to_wire(),
            )
            .is_err()
        {
            return;
        }
        frame = match rx.recv() {
            Ok(next) => next,
            Err(_) => return,
        };
    }
}
