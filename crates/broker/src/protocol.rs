//! Broker message schema (wire v6).
//!
//! A broker session opens with `BROKER_HELLO` (the tenant name) and
//! `BROKER_HELLO_ACK` (the worker fleet size). After that the
//! connection is persistent and carries any mix of:
//!
//! * `BROKER_SUBMIT` — a full [`CampaignSpec`], answered by
//!   `BROKER_ACCEPTED` (the durable campaign id) or `BROKER_REJECTED`
//!   (a typed admission-control reason, never a silent drop);
//! * `BROKER_ATTACH` — re-subscribe to a campaign by id, from this or
//!   any later connection (the campaign survives its submitter);
//! * `MUX`-wrapped worker-protocol frames — an interactive campaign
//!   relayed through the broker's worker fleet (see
//!   [`crate::BrokeredBackend`]).
//!
//! Replies are campaign-id-tagged (`BROKER_STATUS`, `BROKER_REPORT`,
//! `BROKER_FAILED`), so one connection can follow many campaigns at
//! once. Every payload opens with the [`avf_isa::wire`] envelope; a
//! stale peer fails with a typed version error before any broker field
//! is read.

use avf_inject::{CampaignConfig, CampaignReport, GoldenMode};
use avf_isa::wire::{kind, WireError, WireReader, WireWriter};
use avf_isa::Program;
use avf_prune::PruneMode;
use avf_sim::{FaultModel, MachineConfig};

/// The frame kind of an enveloped payload, without consuming it —
/// byte 5, after the 4-byte magic and the version byte.
#[must_use]
pub fn frame_kind(payload: &[u8]) -> Option<u8> {
    payload.get(5).copied()
}

/// Everything the broker needs to run one campaign on behalf of a
/// tenant: the full machine and program (by value — the broker is
/// workload-agnostic) plus the campaign knobs of
/// [`avf_inject::CampaignConfig`].
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Machine configuration the campaign samples against.
    pub machine: MachineConfig,
    /// Program under injection.
    pub program: Program,
    /// Injection budget (or adaptive trial cap).
    pub injections: u64,
    /// Seed deriving the whole sampling plan.
    pub seed: u64,
    /// Committed-instruction budget per trial.
    pub instr_budget: u64,
    /// Adaptive mode: stop at this 95% CI half-width.
    pub ci_target: Option<f64>,
    /// Trials planned per adaptive batch.
    pub batch_size: u64,
    /// Golden-run checkpoint spacing (0 = auto).
    pub checkpoint_interval: u64,
    /// Queueing-structure fault model.
    pub fault_model: FaultModel,
    /// Pre-campaign site pruning mode.
    pub prune: PruneMode,
}

impl CampaignSpec {
    /// A spec from a campaign configuration (the golden pass is always
    /// delegated to the broker's workers; `threads` and `targets` are
    /// venue decisions the spec does not carry).
    #[must_use]
    pub fn from_config(
        machine: MachineConfig,
        program: Program,
        config: &CampaignConfig,
    ) -> CampaignSpec {
        CampaignSpec {
            machine,
            program,
            injections: config.injections,
            seed: config.seed,
            instr_budget: config.instr_budget,
            ci_target: config.ci_target,
            batch_size: config.batch_size,
            checkpoint_interval: config.checkpoint_interval,
            fault_model: config.fault_model,
            prune: config.prune,
        }
    }

    /// The campaign configuration the broker runs this spec under.
    #[must_use]
    pub fn to_config(&self) -> CampaignConfig {
        CampaignConfig {
            injections: self.injections,
            seed: self.seed,
            instr_budget: self.instr_budget,
            ci_target: self.ci_target,
            batch_size: self.batch_size.max(1),
            checkpoint_interval: self.checkpoint_interval,
            golden_mode: GoldenMode::Worker,
            fault_model: self.fault_model,
            prune: self.prune,
            ..CampaignConfig::default()
        }
    }

    /// Scheduling cost in injection units — what the deficit-round-robin
    /// scheduler charges a tenant for running this campaign.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.injections.max(1)
    }

    fn encode_body(&self, w: &mut WireWriter) {
        self.machine.encode(w);
        self.program.encode(w);
        w.u64(self.injections);
        w.u64(self.seed);
        w.u64(self.instr_budget);
        match self.ci_target {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                w.f64(v);
            }
        }
        w.u64(self.batch_size);
        w.u64(self.checkpoint_interval);
        w.u8(self.fault_model.wire_code());
        w.u8(prune_wire_code(self.prune));
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<CampaignSpec, WireError> {
        let machine = MachineConfig::decode(r)?;
        let program = Program::decode(r)?;
        let injections = r.u64()?;
        let seed = r.u64()?;
        let instr_budget = r.u64()?;
        let ci_target = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            t => return Err(WireError::BadTag(t)),
        };
        let batch_size = r.u64()?;
        let checkpoint_interval = r.u64()?;
        let model = r.u8()?;
        let fault_model = FaultModel::from_wire_code(model).ok_or(WireError::BadTag(model))?;
        let prune = prune_from_wire_code(r.u8()?)?;
        Ok(CampaignSpec {
            machine,
            program,
            injections,
            seed,
            instr_budget,
            ci_target,
            batch_size,
            checkpoint_interval,
            fault_model,
            prune,
        })
    }
}

fn prune_wire_code(mode: PruneMode) -> u8 {
    match mode {
        PruneMode::Off => 0,
        PruneMode::On => 1,
        PruneMode::Audit => 2,
    }
}

fn prune_from_wire_code(code: u8) -> Result<PruneMode, WireError> {
    match code {
        0 => Ok(PruneMode::Off),
        1 => Ok(PruneMode::On),
        2 => Ok(PruneMode::Audit),
        t => Err(WireError::BadTag(t)),
    }
}

/// Why the broker refused a submission. Admission control is typed:
/// an over-quota tenant learns exactly which limit it hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already has its maximum number of campaigns pending.
    QuotaExceeded,
    /// The broker's global queue is full.
    QueueFull,
    /// The spec itself is unusable (e.g. a non-delegated golden mode
    /// on the interactive path).
    BadSpec,
}

impl RejectReason {
    fn wire_code(self) -> u8 {
        match self {
            RejectReason::QuotaExceeded => 0,
            RejectReason::QueueFull => 1,
            RejectReason::BadSpec => 2,
        }
    }

    fn from_wire_code(code: u8) -> Result<RejectReason, WireError> {
        match code {
            0 => Ok(RejectReason::QuotaExceeded),
            1 => Ok(RejectReason::QueueFull),
            2 => Ok(RejectReason::BadSpec),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QuotaExceeded => write!(f, "tenant quota exceeded"),
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::BadSpec => write!(f, "bad spec"),
        }
    }
}

/// Lifecycle phase of a brokered campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CampaignPhase {
    /// Admitted, waiting for a run slot.
    Queued,
    /// Executing on the worker fleet.
    Running,
    /// Completed; the report is durably stored.
    Done,
    /// Failed; the error is durably stored.
    Failed,
}

impl CampaignPhase {
    fn wire_code(self) -> u8 {
        match self {
            CampaignPhase::Queued => 0,
            CampaignPhase::Running => 1,
            CampaignPhase::Done => 2,
            CampaignPhase::Failed => 3,
        }
    }

    fn from_wire_code(code: u8) -> Result<CampaignPhase, WireError> {
        match code {
            0 => Ok(CampaignPhase::Queued),
            1 => Ok(CampaignPhase::Running),
            2 => Ok(CampaignPhase::Done),
            3 => Ok(CampaignPhase::Failed),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl std::fmt::Display for CampaignPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignPhase::Queued => write!(f, "queued"),
            CampaignPhase::Running => write!(f, "running"),
            CampaignPhase::Done => write!(f, "done"),
            CampaignPhase::Failed => write!(f, "failed"),
        }
    }
}

/// One driver-to-broker request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Session opener: the tenant this connection bills to.
    Hello {
        /// Tenant name (the fair-scheduling unit).
        tenant: String,
    },
    /// Submit a campaign for queued, durable execution.
    Submit(Box<CampaignSpec>),
    /// Subscribe to a campaign's progress and final report by id.
    Attach {
        /// The campaign id from `BROKER_ACCEPTED`.
        id: u64,
    },
}

impl Request {
    /// Serializes the request to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Hello { tenant } => {
                w.envelope(kind::BROKER_HELLO);
                w.str(tenant);
            }
            Request::Submit(spec) => {
                w.envelope(kind::BROKER_SUBMIT);
                spec.encode_body(&mut w);
            }
            Request::Attach { id } => {
                w.envelope(kind::BROKER_ATTACH);
                w.u64(*id);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload written by [`Request::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or a
    /// non-request frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(bytes);
        let req = match r.envelope()? {
            kind::BROKER_HELLO => Request::Hello { tenant: r.str()? },
            kind::BROKER_SUBMIT => Request::Submit(Box::new(CampaignSpec::decode_body(&mut r)?)),
            kind::BROKER_ATTACH => Request::Attach { id: r.u64()? },
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::BROKER_SUBMIT,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

/// One broker-to-driver reply. Every variant that concerns a campaign
/// carries its id, so replies for different campaigns can interleave
/// on one connection.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Session accepted; the broker fronts this many workers.
    HelloAck {
        /// Worker fleet size (what a campaign report records).
        workers: u64,
    },
    /// Submission admitted under this durable campaign id.
    Accepted {
        /// The campaign id (monotone, stable across broker restarts).
        id: u64,
    },
    /// Submission refused with a typed reason.
    Rejected {
        /// Which admission limit was hit.
        reason: RejectReason,
        /// Operator-facing detail.
        detail: String,
    },
    /// A campaign's current lifecycle state.
    Status {
        /// The campaign.
        id: u64,
        /// Lifecycle phase.
        phase: CampaignPhase,
        /// Trials dispatched so far.
        trials_done: u64,
    },
    /// A campaign completed; here is its full report.
    Report {
        /// The campaign.
        id: u64,
        /// The completed report, bit-identical to a direct same-seed
        /// run.
        report: Box<CampaignReport>,
    },
    /// A campaign (or the session itself, `id` 0) failed.
    Failed {
        /// The campaign, or 0 for a session-level failure.
        id: u64,
        /// The error text.
        error: String,
    },
}

impl Reply {
    /// Serializes the reply to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Reply::HelloAck { workers } => {
                w.envelope(kind::BROKER_HELLO_ACK);
                w.u64(*workers);
            }
            Reply::Accepted { id } => {
                w.envelope(kind::BROKER_ACCEPTED);
                w.u64(*id);
            }
            Reply::Rejected { reason, detail } => {
                w.envelope(kind::BROKER_REJECTED);
                w.u8(reason.wire_code());
                w.str(detail);
            }
            Reply::Status {
                id,
                phase,
                trials_done,
            } => {
                w.envelope(kind::BROKER_STATUS);
                w.u64(*id);
                w.u8(phase.wire_code());
                w.u64(*trials_done);
            }
            Reply::Report { id, report } => {
                w.envelope(kind::BROKER_REPORT);
                w.u64(*id);
                report.encode(&mut w);
            }
            Reply::Failed { id, error } => {
                w.envelope(kind::BROKER_FAILED);
                w.u64(*id);
                w.str(error);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload written by [`Reply::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or a
    /// non-reply frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<Reply, WireError> {
        let mut r = WireReader::new(bytes);
        let reply = match r.envelope()? {
            kind::BROKER_HELLO_ACK => Reply::HelloAck { workers: r.u64()? },
            kind::BROKER_ACCEPTED => Reply::Accepted { id: r.u64()? },
            kind::BROKER_REJECTED => Reply::Rejected {
                reason: RejectReason::from_wire_code(r.u8()?)?,
                detail: r.str()?,
            },
            kind::BROKER_STATUS => Reply::Status {
                id: r.u64()?,
                phase: CampaignPhase::from_wire_code(r.u8()?)?,
                trials_done: r.u64()?,
            },
            kind::BROKER_REPORT => Reply::Report {
                id: r.u64()?,
                report: Box::new(CampaignReport::decode(&mut r)?),
            },
            kind::BROKER_FAILED => Reply::Failed {
                id: r.u64()?,
                error: r.str()?,
            },
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::BROKER_STATUS,
                })
            }
        };
        r.finish()?;
        Ok(reply)
    }
}

/// One record of the broker's durable append-only campaign log.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// A spec was admitted under `id` for `tenant`.
    Accepted {
        /// Durable campaign id.
        id: u64,
        /// Submitting tenant.
        tenant: String,
        /// The full spec — a restarted broker re-runs from exactly
        /// this, and determinism makes the re-run report identical.
        spec: Box<CampaignSpec>,
    },
    /// A running campaign dispatched trials (progress checkpoint).
    Progress {
        /// Durable campaign id.
        id: u64,
        /// Cumulative trials dispatched.
        trials_done: u64,
    },
    /// A campaign completed with this report (terminal).
    Report {
        /// Durable campaign id.
        id: u64,
        /// The final report.
        report: Box<CampaignReport>,
    },
    /// A campaign failed with this error (terminal).
    Failed {
        /// Durable campaign id.
        id: u64,
        /// The error text.
        error: String,
    },
}

impl LogRecord {
    /// Serializes the record to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            LogRecord::Accepted { id, tenant, spec } => {
                w.envelope(kind::LOG_ACCEPTED);
                w.u64(*id);
                w.str(tenant);
                spec.encode_body(&mut w);
            }
            LogRecord::Progress { id, trials_done } => {
                w.envelope(kind::LOG_PROGRESS);
                w.u64(*id);
                w.u64(*trials_done);
            }
            LogRecord::Report { id, report } => {
                w.envelope(kind::BROKER_REPORT);
                w.u64(*id);
                report.encode(&mut w);
            }
            LogRecord::Failed { id, error } => {
                w.envelope(kind::BROKER_FAILED);
                w.u64(*id);
                w.str(error);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload written by [`LogRecord::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or a
    /// non-record frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<LogRecord, WireError> {
        let mut r = WireReader::new(bytes);
        let record = match r.envelope()? {
            kind::LOG_ACCEPTED => LogRecord::Accepted {
                id: r.u64()?,
                tenant: r.str()?,
                spec: Box::new(CampaignSpec::decode_body(&mut r)?),
            },
            kind::LOG_PROGRESS => LogRecord::Progress {
                id: r.u64()?,
                trials_done: r.u64()?,
            },
            kind::BROKER_REPORT => LogRecord::Report {
                id: r.u64()?,
                report: Box::new(CampaignReport::decode(&mut r)?),
            },
            kind::BROKER_FAILED => LogRecord::Failed {
                id: r.u64()?,
                error: r.str()?,
            },
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::LOG_ACCEPTED,
                })
            }
        };
        r.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn spec() -> CampaignSpec {
        CampaignSpec {
            machine: MachineConfig::baseline(),
            program: avf_workloads::testkit::idle_loop(),
            injections: 400,
            seed: 11,
            instr_budget: 6_000,
            ci_target: Some(0.14),
            batch_size: 64,
            checkpoint_interval: 0,
            fault_model: FaultModel::default(),
            prune: PruneMode::Off,
        }
    }

    #[test]
    fn spec_round_trips_through_submit() {
        let frame = Request::Submit(Box::new(spec())).to_wire();
        let Request::Submit(back) = Request::from_wire(&frame).unwrap() else {
            panic!("wrong request kind");
        };
        assert_eq!(back.injections, 400);
        assert_eq!(back.seed, 11);
        assert_eq!(back.instr_budget, 6_000);
        assert_eq!(back.ci_target, Some(0.14));
        assert_eq!(back.batch_size, 64);
        assert_eq!(back.fault_model, FaultModel::default());
        assert_eq!(back.prune, PruneMode::Off);
        assert_eq!(back.program.name(), spec().program.name());
        // The round-tripped spec configures the identical campaign.
        let config = back.to_config();
        assert_eq!(config.injections, 400);
        assert_eq!(config.ci_target, Some(0.14));
    }

    #[test]
    fn requests_and_replies_round_trip() {
        let hello = Request::Hello {
            tenant: "team-a".to_owned(),
        };
        match Request::from_wire(&hello.to_wire()).unwrap() {
            Request::Hello { tenant } => assert_eq!(tenant, "team-a"),
            other => panic!("{other:?}"),
        }
        match Request::from_wire(&Request::Attach { id: 9 }.to_wire()).unwrap() {
            Request::Attach { id } => assert_eq!(id, 9),
            other => panic!("{other:?}"),
        }
        match Reply::from_wire(&Reply::HelloAck { workers: 3 }.to_wire()).unwrap() {
            Reply::HelloAck { workers } => assert_eq!(workers, 3),
            other => panic!("{other:?}"),
        }
        match Reply::from_wire(
            &Reply::Rejected {
                reason: RejectReason::QuotaExceeded,
                detail: "16 pending".to_owned(),
            }
            .to_wire(),
        )
        .unwrap()
        {
            Reply::Rejected { reason, detail } => {
                assert_eq!(reason, RejectReason::QuotaExceeded);
                assert!(detail.contains("16"));
            }
            other => panic!("{other:?}"),
        }
        match Reply::from_wire(
            &Reply::Status {
                id: 4,
                phase: CampaignPhase::Running,
                trials_done: 128,
            }
            .to_wire(),
        )
        .unwrap()
        {
            Reply::Status {
                id,
                phase,
                trials_done,
            } => {
                assert_eq!((id, phase, trials_done), (4, CampaignPhase::Running, 128));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn log_records_round_trip() {
        let rec = LogRecord::Accepted {
            id: 7,
            tenant: "t".to_owned(),
            spec: Box::new(spec()),
        };
        match LogRecord::from_wire(&rec.to_wire()).unwrap() {
            LogRecord::Accepted { id, tenant, spec } => {
                assert_eq!(id, 7);
                assert_eq!(tenant, "t");
                assert_eq!(spec.injections, 400);
            }
            other => panic!("{other:?}"),
        }
        match LogRecord::from_wire(
            &LogRecord::Progress {
                id: 7,
                trials_done: 192,
            }
            .to_wire(),
        )
        .unwrap()
        {
            LogRecord::Progress { id, trials_done } => assert_eq!((id, trials_done), (7, 192)),
            other => panic!("{other:?}"),
        }
        match LogRecord::from_wire(
            &LogRecord::Failed {
                id: 8,
                error: "workers unreachable".to_owned(),
            }
            .to_wire(),
        )
        .unwrap()
        {
            LogRecord::Failed { id, error } => {
                assert_eq!(id, 8);
                assert!(error.contains("unreachable"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_kind_peeks_without_consuming() {
        let frame = Request::Attach { id: 1 }.to_wire();
        assert_eq!(frame_kind(&frame), Some(kind::BROKER_ATTACH));
        assert_eq!(frame_kind(&[]), None);
    }
}
