//! [`BrokeredBackend`]: run a campaign through the broker's worker
//! fleet over one authenticated connection.
//!
//! The backend speaks the ordinary worker protocol — setup, batches,
//! events, done — wrapped in `MUX` frames on a persistent broker
//! connection, so [`avf_inject::Campaign::run_on`] needs no changes:
//! the broker is just another venue. The broker relays each batch into
//! its own fleet session, which means re-dispatch supervision,
//! StoreCache reuse, and golden-run cross-checking all come from the
//! existing [`avf_service::RemoteBackend`] machinery on the far side.
//!
//! Brokered campaigns are delegated-golden only (`GoldenMode::Worker`):
//! shipping a checkpoint store through the broker would buy nothing
//! over direct worker connections and would double its transfer.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use avf_ga::{EvalError, FitnessEvaluator};
use avf_inject::{
    encode_trial_batch, BackendError, CampaignBackend, CampaignSession, DispatchRecord, GoldenSpec,
    JobSpec, OpenedJob, StoreSource, Trial, TrialStream, WorkerProvision,
};
use avf_service::auth::{read_frame_verified, write_frame_signed, AuthKey, ConnectionAuth};
use avf_service::protocol::{JobSetup, Mux, ServerMessage, SetupMode};
use avf_service::{DistinctCounter, EvalBatch, EvalContext, EvalReply};

use crate::protocol::{Reply, Request};

/// Shared state of one brokered connection: a locked write half (so
/// MAC sequence order matches byte order) and a locked read half (one
/// reader at a time — the protocol is strictly request/response per
/// campaign, so batch drains never overlap).
struct Conn {
    addr: String,
    stream: TcpStream,
    reader: Mutex<BufReader<TcpStream>>,
    auth: Option<Arc<ConnectionAuth>>,
}

impl Conn {
    fn send_payload(&self, payload: &[u8]) -> Result<(), BackendError> {
        let mut w = BufWriter::new(&self.stream);
        write_frame_signed(
            &mut w,
            payload,
            self.auth.as_ref().map(|a| a.signer.as_ref()),
        )?;
        w.flush().map_err(BackendError::from)
    }

    fn recv_payload(&self, reader: &mut BufReader<TcpStream>) -> Result<Vec<u8>, BackendError> {
        read_frame_verified(reader, self.auth.as_ref().map(|a| a.verifier.as_ref()))?.ok_or_else(
            || BackendError::Disconnected {
                worker: self.addr.clone(),
                detail: "broker closed the connection".to_owned(),
            },
        )
    }

    /// Receives the next MUX-wrapped worker-protocol message for `tag`.
    fn recv_mux(
        &self,
        reader: &mut BufReader<TcpStream>,
        tag: u64,
    ) -> Result<ServerMessage, BackendError> {
        let payload = self.recv_payload(reader)?;
        // A session-level Failed frame (bad hello, auth trouble)
        // surfaces as a typed remote error, not a codec mismatch.
        if let Ok(Reply::Failed { error, .. }) = Reply::from_wire(&payload) {
            return Err(BackendError::Remote(error));
        }
        let mux = Mux::from_wire(&payload)?;
        if mux.tag != tag {
            return Err(BackendError::Protocol(format!(
                "broker answered on MUX tag {} while tag {tag} was active",
                mux.tag
            )));
        }
        ServerMessage::from_wire(&mux.inner).map_err(BackendError::from)
    }
}

/// A campaign backend that executes trials through a broker.
pub struct BrokeredBackend {
    conn: Arc<Conn>,
    workers: usize,
    next_tag: AtomicU64,
}

impl BrokeredBackend {
    /// Connects to the broker at `addr` and opens the session as
    /// `tenant` (the fair-scheduling unit this campaign bills to).
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a key mismatch, or a broker fronting
    /// zero workers.
    pub fn connect(
        addr: &str,
        tenant: &str,
        key: Option<AuthKey>,
    ) -> Result<BrokeredBackend, BackendError> {
        let (conn, workers) = open_conn(addr, tenant, key)?;
        Ok(BrokeredBackend {
            conn: Arc::new(conn),
            workers,
            next_tag: AtomicU64::new(1),
        })
    }
}

/// Connects, says hello as `tenant`, and returns the live connection
/// plus the broker's advertised worker count.
fn open_conn(
    addr: &str,
    tenant: &str,
    key: Option<AuthKey>,
) -> Result<(Conn, usize), BackendError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| BackendError::Io(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| BackendError::Io(format!("clone stream: {e}")))?,
    );
    let conn = Conn {
        addr: addr.to_owned(),
        stream,
        reader: Mutex::new(reader),
        auth: key.map(|k| Arc::new(ConnectionAuth::client(k))),
    };
    conn.send_payload(
        &Request::Hello {
            tenant: tenant.to_owned(),
        }
        .to_wire(),
    )?;
    let workers = {
        let mut reader = conn.reader.lock().expect("reader lock");
        let payload = conn.recv_payload(&mut reader)?;
        match Reply::from_wire(&payload)? {
            Reply::HelloAck { workers } => workers as usize,
            Reply::Failed { error, .. } => return Err(BackendError::Remote(error)),
            other => {
                return Err(BackendError::Protocol(format!(
                    "broker answered hello with {other:?}"
                )))
            }
        }
    };
    if workers == 0 {
        return Err(BackendError::Protocol(
            "broker fronts no workers".to_owned(),
        ));
    }
    Ok((conn, workers))
}

impl CampaignBackend for BrokeredBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn open(&self, spec: JobSpec) -> Result<OpenedJob, BackendError> {
        let GoldenSpec::Delegated {
            checkpoint_interval,
        } = spec.golden
        else {
            return Err(BackendError::Protocol(
                "brokered campaigns are delegated-golden only (golden mode `worker`)".to_owned(),
            ));
        };
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let setup = JobSetup {
            machine: spec.machine,
            program: spec.program,
            instr_budget: spec.instr_budget,
            fault_model: spec.fault_model,
            prune: spec.prune,
            mode: SetupMode::Delegated {
                checkpoint_interval,
            },
        };
        self.conn
            .send_payload(&Mux::wrap(tag, setup.to_wire()).to_wire())?;
        let ready = {
            let mut reader = self.conn.reader.lock().expect("reader lock");
            match self.conn.recv_mux(&mut reader, tag)? {
                ServerMessage::Ready(ready) => ready,
                ServerMessage::Error(msg) => return Err(BackendError::Remote(msg)),
                other => {
                    return Err(BackendError::Protocol(format!(
                        "broker answered setup with {other:?} instead of JOB_READY"
                    )))
                }
            }
        };
        // One provision entry per fleet worker: the broker's fleet ran
        // (or cache-hit) the golden pass; the driver shipped nothing.
        let provisioning = (0..self.workers)
            .map(|i| WorkerProvision {
                worker: format!("broker({}) worker {i}", self.conn.addr),
                source: StoreSource::GoldenRun,
            })
            .collect();
        Ok(OpenedJob {
            session: Box::new(BrokeredSession {
                conn: Arc::clone(&self.conn),
                tag,
                log: Arc::new(Mutex::new(Vec::new())),
                batch: 0,
            }),
            golden: ready.golden,
            checkpoints: usize::try_from(ready.checkpoints).unwrap_or(usize::MAX),
            provisioning,
            prune: ready.prune.map(Arc::new),
        })
    }
}

struct BrokeredSession {
    conn: Arc<Conn>,
    tag: u64,
    log: Arc<Mutex<Vec<DispatchRecord>>>,
    batch: u64,
}

impl Drop for BrokeredSession {
    fn drop(&mut self) {
        // End-of-session marker: an empty MUX payload tells the broker
        // the tag is done, releasing its scheduler slot for the next
        // campaign on this (persistent) connection. Best-effort — if
        // the connection is gone the broker notices that instead.
        let _ = self
            .conn
            .send_payload(&Mux::wrap(self.tag, Vec::new()).to_wire());
    }
}

impl CampaignSession for BrokeredSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let batch = self.batch;
        self.batch += 1;
        self.conn
            .send_payload(&Mux::wrap(self.tag, encode_trial_batch(trials)).to_wire())?;
        self.log
            .lock()
            .expect("dispatch log lock")
            .push(DispatchRecord {
                batch,
                worker: format!("broker({})", self.conn.addr),
                trials: trials.len() as u64,
                redispatched: false,
            });
        let (tx, rx) = mpsc::channel();
        let conn = Arc::clone(&self.conn);
        let tag = self.tag;
        let expected = trials.len() as u64;
        let drainer = std::thread::spawn(move || {
            // Hold the read half for the whole batch: the broker sends
            // nothing else on this connection until DONE (the campaign
            // plane is strictly serial per session).
            let mut reader = conn.reader.lock().expect("reader lock");
            let mut seen = 0u64;
            loop {
                match conn.recv_mux(&mut reader, tag) {
                    Ok(ServerMessage::Event(ev)) => {
                        seen += 1;
                        if tx.send(Ok(ev)).is_err() {
                            return; // consumer gone
                        }
                    }
                    Ok(ServerMessage::Done { events }) => {
                        if events != seen || seen != expected {
                            let _ = tx.send(Err(BackendError::Protocol(format!(
                                "broker reported {events} events, streamed {seen}, \
                                 expected {expected}"
                            ))));
                        }
                        return;
                    }
                    Ok(ServerMessage::Error(msg)) => {
                        let _ = tx.send(Err(BackendError::Remote(msg)));
                        return;
                    }
                    Ok(other) => {
                        let _ = tx.send(Err(BackendError::Protocol(format!(
                            "broker sent {other:?} mid-batch"
                        ))));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        Ok(TrialStream::new(rx, vec![drainer]))
    }

    fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.log.lock().expect("dispatch log lock").clone()
    }
}

/// A fitness evaluator that scores GA generations through the broker
/// (wire v7): the evaluation analogue of [`BrokeredBackend`].
///
/// One authenticated connection, one MUX tag for the whole search.
/// Each generation becomes one `EVAL_BATCH` relayed by the broker into
/// its own [`avf_service::EvalFleet`] against the worker fleet — so
/// genome-cache affinity and death re-dispatch come from the same
/// machinery the direct `--workers` path uses, behind the broker's
/// admission control and fair scheduling.
pub struct BrokeredEvaluator {
    conn: Conn,
    tag: u64,
    context: EvalContext,
    generation: u64,
    distinct: DistinctCounter,
    cache_hits: u64,
}

impl BrokeredEvaluator {
    /// Connects to the broker at `addr` as `tenant` and binds the
    /// session to an evaluation context.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a key mismatch, or a broker fronting
    /// zero workers.
    pub fn connect(
        addr: &str,
        tenant: &str,
        key: Option<AuthKey>,
        context: EvalContext,
    ) -> Result<BrokeredEvaluator, BackendError> {
        let (conn, _workers) = open_conn(addr, tenant, key)?;
        Ok(BrokeredEvaluator {
            conn,
            tag: 1,
            context,
            generation: 0,
            distinct: DistinctCounter::default(),
            cache_hits: 0,
        })
    }

    /// Worker-reported cache hits across the search (observability; not
    /// part of the deterministic evaluation count).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    fn exchange(&self, generation: &[Vec<f64>]) -> Result<Vec<(f64, bool)>, BackendError> {
        let batch = EvalBatch {
            context: self.context.clone(),
            generation: self.generation,
            individuals: generation
                .iter()
                .enumerate()
                .map(|(i, genes)| (i as u64, genes.clone()))
                .collect(),
        };
        self.conn
            .send_payload(&Mux::wrap(self.tag, batch.to_wire()).to_wire())?;
        let mut scores: Vec<Option<(f64, bool)>> = vec![None; generation.len()];
        let mut seen = 0u64;
        let mut reader = self.conn.reader.lock().expect("reader lock");
        loop {
            let payload = self.conn.recv_payload(&mut reader)?;
            if let Ok(Reply::Failed { error, .. }) = Reply::from_wire(&payload) {
                return Err(BackendError::Remote(error));
            }
            let mux = Mux::from_wire(&payload)?;
            if mux.tag != self.tag {
                return Err(BackendError::Protocol(format!(
                    "broker answered on MUX tag {} while tag {} was active",
                    mux.tag, self.tag
                )));
            }
            match EvalReply::from_wire(&mux.inner)? {
                EvalReply::Score(score) => {
                    let slot = scores.get_mut(score.index as usize).ok_or_else(|| {
                        BackendError::Protocol(format!(
                            "broker scored individual {} outside the generation",
                            score.index
                        ))
                    })?;
                    if slot.replace((score.score, score.cached)).is_some() {
                        return Err(BackendError::Protocol(format!(
                            "broker scored individual {} twice",
                            score.index
                        )));
                    }
                    seen += 1;
                }
                EvalReply::Done { results } => {
                    if results != seen || scores.iter().any(Option::is_none) {
                        return Err(BackendError::Protocol(format!(
                            "broker reported {results} results, streamed {seen}, \
                             expected {}",
                            scores.len()
                        )));
                    }
                    return Ok(scores.into_iter().map(|s| s.expect("checked")).collect());
                }
                EvalReply::Error(msg) => return Err(BackendError::Remote(msg)),
            }
        }
    }
}

impl Drop for BrokeredEvaluator {
    fn drop(&mut self) {
        // End-of-session marker, as for campaigns: an empty MUX payload
        // releases the broker's scheduler slot.
        let _ = self
            .conn
            .send_payload(&Mux::wrap(self.tag, Vec::new()).to_wire());
    }
}

impl FitnessEvaluator for BrokeredEvaluator {
    fn evaluate(&mut self, generation: &[Vec<f64>]) -> Result<Vec<f64>, EvalError> {
        let scored = self
            .exchange(generation)
            .map_err(|e| EvalError(e.to_string()))?;
        self.generation += 1;
        self.distinct.record(generation);
        self.cache_hits += scored.iter().filter(|(_, cached)| *cached).count() as u64;
        Ok(scored.into_iter().map(|(score, _)| score).collect())
    }

    fn evaluations(&self) -> u64 {
        self.distinct.count()
    }
}
