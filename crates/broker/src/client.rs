//! Synchronous driver-side client for the broker's spec path.
//!
//! [`BrokerClient`] speaks the submit/attach plane: it opens the
//! session with a tenant hello, submits [`CampaignSpec`]s for durable
//! queued execution, and waits for (or re-attaches to) their reports.
//! The connection is persistent; Status pushes for every campaign this
//! client submitted or attached to interleave on it and are surfaced
//! through the progress callback of [`BrokerClient::wait_with`].

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use avf_inject::{BackendError, CampaignReport};
use avf_service::auth::{read_frame_verified, write_frame_signed, AuthKey, ConnectionAuth};

use crate::protocol::{CampaignPhase, CampaignSpec, RejectReason, Reply, Request};

/// Why a submission (or wait) did not yield a report.
#[derive(Debug)]
pub enum SubmitError {
    /// The broker refused admission, with a typed reason.
    Rejected {
        /// Which admission limit was hit.
        reason: RejectReason,
        /// Operator-facing detail from the broker.
        detail: String,
    },
    /// The campaign ran and failed, or the transport/protocol broke.
    Backend(BackendError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { reason, detail } => {
                write!(f, "submission rejected ({reason}): {detail}")
            }
            SubmitError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<BackendError> for SubmitError {
    fn from(e: BackendError) -> SubmitError {
        SubmitError::Backend(e)
    }
}

/// A persistent submit/attach connection to one broker.
pub struct BrokerClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    auth: Option<Arc<ConnectionAuth>>,
    workers: u64,
}

impl BrokerClient {
    /// Connects, authenticates, and opens the session as `tenant`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a key mismatch, or a non-hello-ack
    /// first reply.
    pub fn connect(
        addr: &str,
        tenant: &str,
        key: Option<AuthKey>,
    ) -> Result<BrokerClient, BackendError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| BackendError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| BackendError::Io(format!("clone stream: {e}")))?,
        );
        let mut client = BrokerClient {
            stream,
            reader,
            auth: key.map(|k| Arc::new(ConnectionAuth::client(k))),
            workers: 0,
        };
        client.send(&Request::Hello {
            tenant: tenant.to_owned(),
        })?;
        match client.recv()? {
            Reply::HelloAck { workers } => client.workers = workers,
            Reply::Failed { error, .. } => return Err(BackendError::Remote(error)),
            other => {
                return Err(BackendError::Protocol(format!(
                    "broker answered hello with {other:?}"
                )))
            }
        }
        Ok(client)
    }

    /// Worker fleet size the broker fronts.
    #[must_use]
    pub fn workers(&self) -> u64 {
        self.workers
    }

    fn send(&mut self, request: &Request) -> Result<(), BackendError> {
        let mut w = BufWriter::new(&self.stream);
        write_frame_signed(
            &mut w,
            &request.to_wire(),
            self.auth.as_ref().map(|a| a.signer.as_ref()),
        )?;
        w.flush().map_err(BackendError::from)
    }

    fn recv(&mut self) -> Result<Reply, BackendError> {
        let payload = read_frame_verified(
            &mut self.reader,
            self.auth.as_ref().map(|a| a.verifier.as_ref()),
        )?
        .ok_or_else(|| BackendError::Disconnected {
            worker: "broker".to_owned(),
            detail: "broker closed the connection".to_owned(),
        })?;
        Reply::from_wire(&payload).map_err(BackendError::from)
    }

    /// Submits a spec for durable queued execution, returning its
    /// campaign id. The connection is auto-attached: a later
    /// [`BrokerClient::wait`] on this client streams the campaign's
    /// progress and report.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] on typed admission refusal,
    /// [`SubmitError::Backend`] on transport/protocol failure.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<u64, SubmitError> {
        self.send(&Request::Submit(Box::new(spec.clone())))?;
        loop {
            match self.recv()? {
                Reply::Accepted { id } => return Ok(id),
                Reply::Rejected { reason, detail } => {
                    return Err(SubmitError::Rejected { reason, detail })
                }
                // Status/terminal pushes of earlier campaigns on this
                // connection may interleave; they are not the answer.
                Reply::Status { .. } | Reply::Report { .. } => {}
                Reply::Failed { id: 0, error } => {
                    return Err(SubmitError::Backend(BackendError::Remote(error)))
                }
                Reply::Failed { .. } => {}
                other => {
                    return Err(SubmitError::Backend(BackendError::Protocol(format!(
                        "broker answered submit with {other:?}"
                    ))))
                }
            }
        }
    }

    /// Attaches to campaign `id` (submitted by any connection, before
    /// or after a broker restart) and subscribes to its progress.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unknown id.
    pub fn attach(&mut self, id: u64) -> Result<(), BackendError> {
        self.send(&Request::Attach { id })
    }

    /// Blocks until campaign `id` terminates, returning its report.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backend`] when the campaign failed or the
    /// connection broke.
    pub fn wait(&mut self, id: u64) -> Result<CampaignReport, SubmitError> {
        self.wait_with(id, |_, _| {})
    }

    /// [`BrokerClient::wait`] with a progress callback invoked on every
    /// Status push for `id` (phase, trials dispatched so far).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backend`] when the campaign failed or the
    /// connection broke.
    pub fn wait_with(
        &mut self,
        id: u64,
        mut progress: impl FnMut(CampaignPhase, u64),
    ) -> Result<CampaignReport, SubmitError> {
        loop {
            match self.recv()? {
                Reply::Status {
                    id: sid,
                    phase,
                    trials_done,
                } if sid == id => progress(phase, trials_done),
                Reply::Report { id: rid, report } if rid == id => return Ok(*report),
                Reply::Failed { id: fid, error } if fid == id || fid == 0 => {
                    return Err(SubmitError::Backend(BackendError::Remote(error)))
                }
                // Frames about other campaigns on this shared
                // connection: not ours, keep draining.
                _ => {}
            }
        }
    }
}
