//! Durable append-only campaign log.
//!
//! Every accepted spec, progress checkpoint, and terminal outcome is
//! appended as a length-prefixed wire frame (the same framing the
//! network uses, so one codec serves both). On open, the log is
//! replayed into per-campaign state; a truncated final record — the
//! signature of a crash mid-append — is tolerated and dropped, since
//! every record is redundant against re-execution: campaigns are
//! deterministic, so a lost progress checkpoint or report only means
//! re-running the spec, never a wrong answer.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use avf_inject::CampaignReport;
use avf_service::frame::{read_frame, write_frame};

use crate::protocol::{CampaignSpec, LogRecord};

/// Replayed state of one logged campaign.
#[derive(Debug, Clone)]
pub struct StoredCampaign {
    /// Durable campaign id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// The accepted spec (sufficient to re-run identically).
    pub spec: Arc<CampaignSpec>,
    /// Last logged progress checkpoint.
    pub trials_done: u64,
    /// Terminal outcome, if the campaign finished before the log
    /// closed. `None` means a restarted broker must re-run the spec.
    pub outcome: Option<Result<Arc<CampaignReport>, String>>,
}

/// The append handle over the broker's campaign log.
#[derive(Debug)]
pub struct CampaignStore {
    writer: BufWriter<File>,
}

impl CampaignStore {
    /// Opens (creating if absent) the log at `path`, replaying existing
    /// records. Returns the store plus the campaigns found, in
    /// acceptance order.
    ///
    /// # Errors
    ///
    /// Fails only on filesystem errors; malformed or truncated tail
    /// records are dropped, not fatal.
    pub fn open(path: &Path) -> io::Result<(CampaignStore, Vec<StoredCampaign>)> {
        let mut campaigns: BTreeMap<u64, StoredCampaign> = BTreeMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut good_bytes: u64 = 0;
        if path.exists() {
            let file_len = std::fs::metadata(path)?.len();
            let mut reader = BufReader::new(File::open(path)?);
            loop {
                let payload = match read_frame(&mut reader) {
                    Ok(Some(p)) => p,
                    // Clean EOF: the log ends on a record boundary.
                    Ok(None) => break,
                    // Torn tail from a crash mid-append; everything up
                    // to here replayed fine, so stop and move on.
                    Err(_) => break,
                };
                let Ok(record) = LogRecord::from_wire(&payload) else {
                    break;
                };
                good_bytes += 4 + payload.len() as u64;
                match record {
                    LogRecord::Accepted { id, tenant, spec } => {
                        order.push(id);
                        campaigns.insert(
                            id,
                            StoredCampaign {
                                id,
                                tenant,
                                spec: Arc::new(*spec),
                                trials_done: 0,
                                outcome: None,
                            },
                        );
                    }
                    LogRecord::Progress { id, trials_done } => {
                        if let Some(c) = campaigns.get_mut(&id) {
                            c.trials_done = c.trials_done.max(trials_done);
                        }
                    }
                    LogRecord::Report { id, report } => {
                        if let Some(c) = campaigns.get_mut(&id) {
                            c.outcome = Some(Ok(Arc::new(*report)));
                        }
                    }
                    LogRecord::Failed { id, error } => {
                        if let Some(c) = campaigns.get_mut(&id) {
                            c.outcome = Some(Err(error));
                        }
                    }
                }
            }
            // Chop the torn tail off before appending, so every record
            // written from here on is reachable by the next replay.
            if good_bytes < file_len {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(good_bytes)?;
            }
        }
        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        let replayed = order
            .into_iter()
            .filter_map(|id| campaigns.get(&id).cloned())
            .collect();
        Ok((CampaignStore { writer }, replayed))
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn append(&mut self, record: &LogRecord) -> io::Result<()> {
        write_frame(&mut self.writer, &record.to_wire())
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_prune::PruneMode;
    use avf_sim::{FaultModel, MachineConfig};

    fn spec() -> CampaignSpec {
        CampaignSpec {
            machine: MachineConfig::baseline(),
            program: avf_workloads::testkit::idle_loop(),
            injections: 96,
            seed: 3,
            instr_budget: 4_000,
            ci_target: None,
            batch_size: 32,
            checkpoint_interval: 0,
            fault_model: FaultModel::default(),
            prune: PruneMode::Off,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("avf-broker-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("campaigns.log")
    }

    fn run_report(spec: &CampaignSpec) -> CampaignReport {
        let config = spec.to_config();
        let config = avf_inject::CampaignConfig {
            golden_mode: avf_inject::GoldenMode::Driver,
            ..config
        };
        avf_inject::Campaign::new(&spec.machine, &spec.program, config).run()
    }

    #[test]
    fn log_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let (mut store, replayed) = CampaignStore::open(&path).unwrap();
        assert!(replayed.is_empty());
        store
            .append(&LogRecord::Accepted {
                id: 1,
                tenant: "t1".to_owned(),
                spec: Box::new(spec()),
            })
            .unwrap();
        store
            .append(&LogRecord::Progress {
                id: 1,
                trials_done: 32,
            })
            .unwrap();
        let report = run_report(&spec());
        store
            .append(&LogRecord::Report {
                id: 1,
                report: Box::new(report.clone()),
            })
            .unwrap();
        store
            .append(&LogRecord::Accepted {
                id: 2,
                tenant: "t2".to_owned(),
                spec: Box::new(spec()),
            })
            .unwrap();
        drop(store);

        let (_store, replayed) = CampaignStore::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id, 1);
        assert_eq!(replayed[0].tenant, "t1");
        assert_eq!(replayed[0].trials_done, 32);
        let stored = replayed[0]
            .outcome
            .as_ref()
            .expect("terminal")
            .as_ref()
            .expect("report");
        assert_eq!(format!("{stored}"), format!("{report}"));
        // Campaign 2 never finished: the restarted broker must re-run it.
        assert_eq!(replayed[1].id, 2);
        assert!(replayed[1].outcome.is_none());
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let (mut store, _) = CampaignStore::open(&path).unwrap();
        store
            .append(&LogRecord::Accepted {
                id: 1,
                tenant: "t".to_owned(),
                spec: Box::new(spec()),
            })
            .unwrap();
        store
            .append(&LogRecord::Progress {
                id: 1,
                trials_done: 64,
            })
            .unwrap();
        drop(store);
        // Simulate a crash mid-append: chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (mut store, replayed) = CampaignStore::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        // The torn Progress record was dropped.
        assert_eq!(replayed[0].trials_done, 0);
        // The torn bytes were chopped off, so new appends land on a
        // clean record boundary and replay fine next time.
        store
            .append(&LogRecord::Failed {
                id: 1,
                error: "gave up".to_owned(),
            })
            .unwrap();
        drop(store);
        let (_store, replayed) = CampaignStore::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(
            replayed[0].outcome.as_ref().unwrap().as_ref().unwrap_err(),
            "gave up"
        );
    }
}
