//! End-to-end broker tests against in-process workers.
//!
//! The load-bearing property throughout: a campaign routed through the
//! broker — by either plane — produces a report *statistically
//! identical* to the same-seed direct run, because trial outcomes are
//! pure functions of the spec. Only venue metadata (worker count,
//! dispatch trajectory, wall clock) may differ.

use std::path::PathBuf;

use avf_broker::{
    Broker, BrokerClient, BrokerOptions, BrokeredBackend, CampaignSpec, CampaignStore, LogRecord,
    RejectReason, SubmitError,
};
use avf_inject::{Campaign, CampaignConfig, CampaignReport, GoldenMode, LocalBackend};
use avf_service::{spawn_local, AuthKey, ServeOptions};
use avf_sim::MachineConfig;

fn workers(n: usize, key: Option<AuthKey>) -> Vec<String> {
    (0..n)
        .map(|_| {
            spawn_local(ServeOptions {
                threads: 1,
                auth: key,
                ..ServeOptions::default()
            })
            .expect("spawn worker")
            .to_string()
        })
        .collect()
}

fn tmp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avf-broker-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("campaigns.log")
}

fn config(seed: u64, injections: u64) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed,
        threads: 1,
        instr_budget: 3_000,
        batch_size: 64,
        golden_mode: GoldenMode::Worker,
        ..CampaignConfig::default()
    }
}

fn spec(seed: u64, injections: u64) -> CampaignSpec {
    CampaignSpec::from_config(
        MachineConfig::baseline(),
        avf_workloads::testkit::idle_loop(),
        &config(seed, injections),
    )
}

/// A direct same-seed run on the local backend — the reference every
/// brokered report must match.
fn direct_report(seed: u64, injections: u64) -> CampaignReport {
    let machine = MachineConfig::baseline();
    let program = avf_workloads::testkit::idle_loop();
    Campaign::new(&machine, &program, config(seed, injections))
        .run_on(&LocalBackend::new(1))
        .expect("direct run")
}

/// The venue-independent part of a rendered report: everything except
/// the worker count, the re-dispatch note, and the throughput figure.
fn fingerprint(report: &CampaignReport) -> String {
    report
        .to_string()
        .lines()
        .filter(|l| !l.contains("re-dispatched"))
        .map(|l| {
            let l = if l.contains("inj/s") {
                l.rsplit_once(" (").map_or(l, |(head, _)| head)
            } else {
                l
            };
            l.split(", ")
                .filter(|tok| !tok.ends_with("worker(s)"))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_tenants_submit_concurrently_and_reports_match_direct_runs() {
    let opts = BrokerOptions {
        workers: workers(2, None),
        store_path: tmp_store("two-tenants"),
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();

    let jobs = [("team-a", 42, 200), ("team-b", 7, 150)];
    let handles: Vec<_> = jobs
        .map(|(tenant, seed, injections)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = BrokerClient::connect(&addr, tenant, None).expect("connect");
                assert_eq!(client.workers(), 2);
                let id = client.submit(&spec(seed, injections)).expect("submit");
                client.wait(id).expect("report")
            })
        })
        .into_iter()
        .collect();
    for (handle, (_, seed, injections)) in handles.into_iter().zip(jobs) {
        let brokered = handle.join().expect("tenant thread");
        assert_eq!(
            fingerprint(&brokered),
            fingerprint(&direct_report(seed, injections)),
            "brokered report diverged from the direct same-seed run"
        );
    }
    let metrics = broker.render_metrics();
    assert!(metrics.contains("avf_broker_accepted_total 2"), "{metrics}");
    assert!(
        metrics.contains("avf_broker_completed_total 2"),
        "{metrics}"
    );
}

#[test]
fn interactive_brokered_backend_matches_direct_run() {
    let opts = BrokerOptions {
        workers: workers(2, None),
        store_path: tmp_store("interactive"),
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();

    let machine = MachineConfig::baseline();
    let program = avf_workloads::testkit::idle_loop();
    let backend = BrokeredBackend::connect(&addr, "team-ix", None).expect("connect");
    let brokered = Campaign::new(&machine, &program, config(13, 180))
        .run_on(&backend)
        .expect("brokered run");
    assert_eq!(brokered.workers, 2, "report must record the fleet size");
    assert_eq!(fingerprint(&brokered), fingerprint(&direct_report(13, 180)));
    assert!(
        broker
            .render_metrics()
            .contains("avf_broker_mux_sessions_total 1"),
        "interactive session must be counted"
    );
}

/// Regression: a finished interactive session must release its
/// scheduler slot. With one slot and three back-to-back campaigns on
/// one persistent connection, a leaked slot deadlocks campaign two.
#[test]
fn sequential_interactive_campaigns_release_their_slots() {
    let opts = BrokerOptions {
        workers: workers(1, None),
        store_path: tmp_store("sequential"),
        max_running: 1,
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();

    let machine = MachineConfig::baseline();
    let program = avf_workloads::testkit::idle_loop();
    let backend = BrokeredBackend::connect(&addr, "serial", None).expect("connect");
    for (seed, injections) in [(2, 120), (3, 96), (4, 80)] {
        let report = Campaign::new(&machine, &program, config(seed, injections))
            .run_on(&backend)
            .expect("sequential brokered run");
        assert_eq!(
            fingerprint(&report),
            fingerprint(&direct_report(seed, injections))
        );
    }
}

#[test]
fn restarted_broker_requeues_unfinished_campaigns_and_attach_gets_the_report() {
    // Simulate a broker that accepted a campaign and crashed before
    // running it: the durable log holds Accepted with no terminal
    // record.
    let store_path = tmp_store("restart");
    {
        let (mut store, _) = CampaignStore::open(&store_path).unwrap();
        store
            .append(&LogRecord::Accepted {
                id: 5,
                tenant: "team-r".to_owned(),
                spec: Box::new(spec(21, 160)),
            })
            .unwrap();
    }
    let opts = BrokerOptions {
        workers: workers(2, None),
        store_path: store_path.clone(),
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();

    // Attach from a fresh connection — the original submitter is long
    // gone. The re-run must produce the identical report.
    let mut client = BrokerClient::connect(&addr, "team-r", None).expect("connect");
    client.attach(5).expect("attach");
    let report = client.wait(5).expect("report after restart");
    assert_eq!(fingerprint(&report), fingerprint(&direct_report(21, 160)));

    // The terminal record is durable now: a second restart serves the
    // stored report without re-running (same fingerprint either way,
    // but the id space must continue past the replayed campaign).
    let opts = BrokerOptions {
        workers: workers(1, None),
        store_path,
        ..BrokerOptions::default()
    };
    let broker2 = Broker::start(opts).unwrap();
    let addr2 = broker2.spawn_local().unwrap().to_string();
    let mut client2 = BrokerClient::connect(&addr2, "team-r", None).expect("connect");
    client2.attach(5).expect("attach");
    let stored = client2.wait(5).expect("stored report");
    assert_eq!(fingerprint(&stored), fingerprint(&report));
    let id = client2.submit(&spec(3, 96)).expect("submit after restart");
    assert!(id > 5, "id space must continue past replayed campaigns");
}

#[test]
fn admission_rejections_are_typed() {
    let opts = BrokerOptions {
        workers: workers(1, None),
        store_path: tmp_store("admission"),
        max_running: 1,
        per_tenant_pending: 1,
        max_pending: 2,
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();
    let mut client = BrokerClient::connect(&addr, "greedy", None).expect("connect");

    // Saturate: one campaign runs (or queues), then fill the tenant
    // quota. Submitting past it must reject typed, leaving earlier
    // campaigns unharmed.
    let first = client.submit(&spec(1, 200)).expect("first submit");
    let mut ids = vec![first];
    let mut quota_hit = false;
    for seed in 2..8 {
        match client.submit(&spec(seed, 200)) {
            Ok(id) => ids.push(id),
            Err(SubmitError::Rejected { reason, detail }) => {
                assert!(
                    matches!(
                        reason,
                        RejectReason::QuotaExceeded | RejectReason::QueueFull
                    ),
                    "unexpected reason {reason:?}"
                );
                assert!(!detail.is_empty());
                quota_hit = true;
                break;
            }
            Err(e) => panic!("expected a typed rejection, got {e}"),
        }
    }
    assert!(quota_hit, "admission limits never engaged");
    // Every admitted campaign still completes.
    for id in ids {
        client.wait(id).expect("admitted campaign must finish");
    }
    assert!(
        broker
            .render_metrics()
            .contains("avf_broker_rejected_total"),
        "rejections must be counted"
    );
}

#[test]
fn wrong_key_driver_is_rejected_typed_and_right_key_works() {
    let key = AuthKey::from_hex("00112233445566778899aabbccddeeff").unwrap();
    let wrong = AuthKey::from_hex("ffeeddccbbaa99887766554433221100").unwrap();
    let opts = BrokerOptions {
        workers: workers(1, Some(key)),
        auth: Some(key),
        store_path: tmp_store("auth"),
        ..BrokerOptions::default()
    };
    let broker = Broker::start(opts).unwrap();
    let addr = broker.spawn_local().unwrap().to_string();

    // Wrong key: the broker must refuse the session with a typed
    // error — never a hang, never a panic.
    let err = BrokerClient::connect(&addr, "mallory", Some(wrong))
        .err()
        .expect("wrong key must not authenticate");
    let msg = err.to_string();
    assert!(!msg.is_empty());
    assert!(
        broker
            .render_metrics()
            .contains("avf_broker_auth_rejects_total 1"),
        "auth reject must be counted"
    );

    // Right key: full campaign over the authenticated path, still
    // bit-identical to the plain direct run (auth wraps frames, it
    // does not touch trial semantics).
    let mut client = BrokerClient::connect(&addr, "alice", Some(key)).expect("connect");
    let id = client.submit(&spec(5, 120)).expect("submit");
    let report = client.wait(id).expect("report");
    assert_eq!(fingerprint(&report), fingerprint(&direct_report(5, 120)));
}
