//! Distributed GA fitness evaluation (wire v7).
//!
//! The campaign protocol carries injection *trials*; this module teaches
//! it to carry fitness *jobs*. One connection carries one evaluation
//! session:
//!
//! ```text
//! client → server   EVAL_BATCH    (machine, fitness, budget, one generation of genomes)
//! server → client   EVAL_RESULT*  (one per individual, index-ordered)
//! server → client   BATCH_DONE    (result count for the generation, a sanity check)
//! client → server   EVAL_BATCH    ... (repeat, one frame per generation)
//! client closes the connection    (clean end of search)
//! ```
//!
//! The batch ships **knobs, not programs**: each individual is a genome,
//! and the worker materializes the candidate itself (`Knobs::from_genome`
//! → `generate` → `simulate` → `Fitness::score`). That keeps a generation
//! frame a few kilobytes regardless of candidate size, and it lets the
//! worker memoize by genome: elite individuals re-scored across
//! generations are [`EvalCache`] hits, not simulations.
//!
//! Driver-side, [`EvalFleet`] fans a generation out across workers with
//! genome-keyed affinity (so a re-scored elite lands on the worker whose
//! cache holds it) and inherits the campaign supervisor's re-dispatch
//! semantics: individuals unacknowledged when a worker dies are re-sent
//! to survivors, and the search result is bit-identical to a fault-free
//! run because every score is a deterministic function of
//! (context, genome). [`RemoteEvaluator`] adapts the fleet to the GA's
//! [`FitnessEvaluator`] trait and counts *distinct* genomes evaluated —
//! the same number [`avf_ga::LocalEvaluator`] reports — so
//! `GaResult::evaluations` agrees across local, remote, and brokered
//! venues regardless of worker deaths or cache evictions.

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use avf_ace::{FaultRates, Fitness, FitnessScope, Structure};
use avf_codegen::{generate, Knobs, TargetParams};
use avf_ga::{genome_bits, EvalError, FitnessEvaluator};
use avf_inject::BackendError;
use avf_isa::wire::{content_hash64, kind, WireError, WireReader, WireWriter};
use avf_sim::{simulate, MachineConfig};

use crate::auth::{read_frame_verified, write_frame_signed, AuthKey, AuthVerifier, ConnectionAuth};
use crate::frame::FrameBatcher;
use crate::protocol::{remote_error, ServerMessage, HASH_DOMAIN_EVAL};
use crate::server::ServeOptions;

/// Derives code-generator target parameters from a machine configuration.
///
/// This is the canonical mapping between the simulated microarchitecture
/// and the generator's sizing knobs; the driver and every evaluation
/// worker must agree on it, so it lives here with the wire codec.
#[must_use]
pub fn target_params(machine: &MachineConfig) -> TargetParams {
    TargetParams {
        rob_entries: machine.rob_entries as u32,
        line_bytes: machine.dl1.line_bytes,
        page_bytes: machine.page_bytes,
        dtlb_entries: machine.dtlb_entries as u32,
        dl1_bytes: machine.dl1.size_bytes,
        l2_bytes: machine.l2.size_bytes,
    }
}

/// The fixed part of an evaluation session: what every individual is
/// scored against.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Target microarchitecture.
    pub machine: MachineConfig,
    /// Fitness function (fault rates + scope).
    pub fitness: Fitness,
    /// Committed-instruction budget per candidate evaluation.
    pub instr_budget: u64,
}

fn rates_code(rates: &FaultRates) -> u8 {
    match rates.name() {
        "Baseline" => 0,
        "RHC" => 1,
        "EDR" => 2,
        _ => 3,
    }
}

fn encode_fitness(w: &mut WireWriter, fitness: &Fitness) {
    w.u8(rates_code(fitness.rates()));
    for s in Structure::ALL {
        w.f64(fitness.rates().rate(s));
    }
    w.u8(match fitness.scope() {
        FitnessScope::Overall => 0,
        FitnessScope::BitWeighted => 1,
        FitnessScope::Core => 2,
        FitnessScope::Caches => 3,
    });
}

fn decode_fitness(r: &mut WireReader<'_>) -> Result<Fitness, WireError> {
    // The name code picks a base table for cosmetic reporting; the rates
    // themselves always travel as raw bits, so protected-design searches
    // score identically on every worker.
    let mut rates = match r.u8()? {
        0 => FaultRates::baseline(),
        1 => FaultRates::rhc(),
        2 => FaultRates::edr(),
        3 => FaultRates::custom("remote"),
        t => return Err(WireError::BadTag(t)),
    };
    for s in Structure::ALL {
        let rate = r.f64()?;
        if !(rate >= 0.0 && rate.is_finite()) {
            return Err(WireError::Invalid(
                "fault rates must be finite and non-negative",
            ));
        }
        rates.set(s, rate);
    }
    let scope = match r.u8()? {
        0 => FitnessScope::Overall,
        1 => FitnessScope::BitWeighted,
        2 => FitnessScope::Core,
        3 => FitnessScope::Caches,
        t => return Err(WireError::BadTag(t)),
    };
    Ok(Fitness::with_scope(rates, scope))
}

impl EvalContext {
    fn encode(&self, w: &mut WireWriter) {
        self.machine.encode(w);
        encode_fitness(w, &self.fitness);
        w.u64(self.instr_budget);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<EvalContext, WireError> {
        let machine = MachineConfig::decode(r)?;
        let fitness = decode_fitness(r)?;
        let instr_budget = r.u64()?;
        if instr_budget == 0 {
            return Err(WireError::Invalid("evaluation budget must be positive"));
        }
        Ok(EvalContext {
            machine,
            fitness,
            instr_budget,
        })
    }

    /// Content fingerprint of this context — the cache-key half that
    /// guards a worker's memoized scores against a driver searching a
    /// different machine, fitness, or budget.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        content_hash64(HASH_DOMAIN_EVAL, &w.into_bytes())
    }
}

/// Key a genome routes and logs under: the content hash of its exact
/// gene bits. Both sides derive it, so CI can grep a worker's log for
/// the hit/miss history of a specific elite genome.
#[must_use]
pub fn genome_key(genes: &[f64]) -> u64 {
    let mut w = WireWriter::new();
    for bits in genome_bits(genes) {
        w.u64(bits);
    }
    content_hash64(HASH_DOMAIN_EVAL, &w.into_bytes())
}

/// One generation of fitness work: the `EVAL_BATCH` frame.
#[derive(Debug, Clone)]
pub struct EvalBatch {
    /// What to score against.
    pub context: EvalContext,
    /// Generation number (logging/observability only).
    pub generation: u64,
    /// `(individual index, genome)` pairs. Indices are driver-assigned
    /// and echoed in each `EVAL_RESULT`, so a generation sharded across
    /// workers reassembles unambiguously.
    pub individuals: Vec<(u64, Vec<f64>)>,
}

impl EvalBatch {
    /// Serializes the batch to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::EVAL_BATCH);
        self.context.encode(&mut w);
        w.u64(self.generation);
        w.usize(self.individuals.len());
        for (index, genes) in &self.individuals {
            w.u64(*index);
            w.usize(genes.len());
            for g in genes {
                w.f64(*g);
            }
        }
        w.into_bytes()
    }

    /// Decodes an `EVAL_BATCH` payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// invalid field.
    pub fn from_wire(bytes: &[u8]) -> Result<EvalBatch, WireError> {
        let mut r = WireReader::new(bytes);
        r.expect_envelope(kind::EVAL_BATCH)?;
        let context = EvalContext::decode(&mut r)?;
        let generation = r.u64()?;
        let count = r.seq_len(16)?;
        let mut individuals = Vec::with_capacity(count);
        for _ in 0..count {
            let index = r.u64()?;
            let genes_len = r.seq_len(8)?;
            if genes_len == 0 {
                return Err(WireError::Invalid("an individual needs at least one gene"));
            }
            let mut genes = Vec::with_capacity(genes_len);
            for _ in 0..genes_len {
                genes.push(r.f64()?);
            }
            individuals.push((index, genes));
        }
        r.finish()?;
        Ok(EvalBatch {
            context,
            generation,
            individuals,
        })
    }
}

/// One individual's score: the `EVAL_RESULT` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScore {
    /// The driver-assigned individual index this score answers.
    pub index: u64,
    /// Fitness score, bit-exact as computed.
    pub score: f64,
    /// Whether the worker answered from its genome cache.
    pub cached: bool,
}

impl EvalScore {
    /// Serializes the score to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::EVAL_RESULT);
        w.u64(self.index);
        w.f64(self.score);
        w.bool(self.cached);
        w.into_bytes()
    }
}

/// A worker's reply frame within an evaluation session.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalReply {
    /// One individual's score.
    Score(EvalScore),
    /// End of the generation, with the number of results streamed.
    Done {
        /// How many `EVAL_RESULT` frames preceded this marker.
        results: u64,
    },
    /// Fatal worker-side error; the connection closes after this.
    Error(String),
}

impl EvalReply {
    /// Decodes any server→client evaluation frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// unexpected frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<EvalReply, WireError> {
        match bytes.get(5).copied() {
            Some(kind::EVAL_RESULT) => {
                let mut r = WireReader::new(bytes);
                r.expect_envelope(kind::EVAL_RESULT)?;
                let index = r.u64()?;
                let score = r.f64()?;
                let cached = r.bool()?;
                r.finish()?;
                Ok(EvalReply::Score(EvalScore {
                    index,
                    score,
                    cached,
                }))
            }
            _ => match ServerMessage::from_wire(bytes)? {
                ServerMessage::Done { events } => Ok(EvalReply::Done { results: events }),
                ServerMessage::Error(msg) => Ok(EvalReply::Error(msg)),
                _ => Err(WireError::WrongKind {
                    found: bytes.get(5).copied().unwrap_or(0),
                    expected: kind::EVAL_RESULT,
                }),
            },
        }
    }
}

/// Scores one genome against a context: materialize the candidate from
/// its knobs, simulate it, and apply the fitness. Deterministic — every
/// venue that scores the same (context, genome) pair produces the same
/// bits, which is what makes re-dispatch after a worker death invisible
/// in the search result.
#[must_use]
pub fn evaluate_genome(ctx: &EvalContext, genes: &[f64]) -> f64 {
    let params = target_params(&ctx.machine);
    let knobs = Knobs::from_genome(genes, &params);
    let candidate = generate(&knobs, &params);
    let result = simulate(&ctx.machine, &candidate.program, ctx.instr_budget);
    ctx.fitness.score(&result.report)
}

/// Default capacity of a worker's genome score cache.
pub const DEFAULT_EVAL_CACHE_ENTRIES: usize = 4096;

#[derive(Debug, Default)]
struct EvalCacheInner {
    map: HashMap<(u64, Vec<u64>), (f64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a simulation.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Current resident entries.
    pub entries: usize,
}

/// A bounded, thread-safe LRU of `(context fingerprint, genome bits) →
/// score` — the evaluation analogue of the campaign checkpoint
/// [`crate::StoreCache`]. Elite genomes re-scored across generations
/// (and across searches sharing a worker) hit here instead of paying a
/// simulation.
#[derive(Debug, Default)]
pub struct EvalCache {
    inner: Mutex<EvalCacheInner>,
    max_entries: usize,
}

impl EvalCache {
    /// A cache bounded to `max_entries` scores (0 disables caching).
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> EvalCache {
        EvalCache {
            inner: Mutex::new(EvalCacheInner::default()),
            max_entries,
        }
    }

    /// A shareable cache at the default capacity.
    #[must_use]
    pub fn shared() -> Arc<EvalCache> {
        Arc::new(EvalCache::with_capacity(DEFAULT_EVAL_CACHE_ENTRIES))
    }

    /// Looks a score up, bumping its recency on a hit.
    pub fn lookup(&self, ctx: u64, bits: &[u64]) -> Option<f64> {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        let hit = inner.map.get_mut(&(ctx, bits.to_vec())).map(|slot| {
            slot.1 = stamp;
            slot.0
        });
        match hit {
            Some(score) => {
                inner.hits += 1;
                Some(score)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed score, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&self, ctx: u64, bits: Vec<u64>, score: f64) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if inner.map.len() >= self.max_entries && !inner.map.contains_key(&(ctx, bits.clone())) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert((ctx, bits), (score, stamp));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EvalCacheStats {
        let inner = self.inner.lock().expect("eval cache poisoned");
        EvalCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

fn score_parallel(
    ctx: &EvalContext,
    genomes: &[(u64, Vec<f64>, Vec<u64>)],
    threads: usize,
) -> Vec<f64> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let threads = threads.clamp(1, genomes.len().max(1));
    let mut scores = vec![0.0; genomes.len()];
    if threads <= 1 {
        for (slot, (_, genes, _)) in scores.iter_mut().zip(genomes) {
            *slot = evaluate_genome(ctx, genes);
        }
        return scores;
    }
    let chunk = genomes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in genomes.chunks(chunk).zip(scores.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, (_, genes, _)) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = evaluate_genome(ctx, genes);
                }
            });
        }
    });
    scores
}

/// Drives one evaluation session over one connection (worker side).
/// `first` is the already-read opening `EVAL_BATCH` payload.
pub(crate) fn handle_eval_session(
    stream: &TcpStream,
    reader: &mut BufReader<&TcpStream>,
    writer: &mut FrameBatcher<&TcpStream>,
    first: Vec<u8>,
    opts: &ServeOptions,
    verifier: Option<&AuthVerifier>,
) -> Result<(), BackendError> {
    let mut payload = first;
    let mut served = 0u64;
    loop {
        let batch = EvalBatch::from_wire(&payload)?;
        let fingerprint = batch.context.fingerprint();
        let mut results: Vec<EvalScore> = Vec::with_capacity(batch.individuals.len());
        let mut misses: Vec<(u64, Vec<f64>, Vec<u64>)> = Vec::new();
        for (index, genes) in &batch.individuals {
            let bits = genome_bits(genes);
            let key = genome_key(genes);
            if let Some(score) = opts.eval_cache.lookup(fingerprint, &bits) {
                eprintln!(
                    "serve: eval gen {} genome {key:016x} fitness HIT (cache)",
                    batch.generation
                );
                results.push(EvalScore {
                    index: *index,
                    score,
                    cached: true,
                });
            } else {
                eprintln!(
                    "serve: eval gen {} genome {key:016x} fitness MISS (simulating)",
                    batch.generation
                );
                misses.push((*index, genes.clone(), bits));
            }
        }
        let scores = score_parallel(&batch.context, &misses, opts.threads);
        for ((index, _, bits), score) in misses.into_iter().zip(scores) {
            opts.eval_cache.insert(fingerprint, bits, score);
            results.push(EvalScore {
                index,
                score,
                cached: false,
            });
        }
        results.sort_by_key(|s| s.index);

        if opts.die_mid_batch == Some(served) {
            // Injected fault: stream half the generation, then crash. No
            // error frame, no DONE — the driver must observe this as a
            // dead connection and re-dispatch the unacknowledged half.
            for score in &results[..results.len() / 2] {
                writer.push(&score.to_wire())?;
            }
            writer.flush()?;
            eprintln!("serve: injected fault — aborting connection mid-generation {served}");
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
        for score in &results {
            writer.push(&score.to_wire())?;
        }
        writer.push(
            &ServerMessage::Done {
                events: results.len() as u64,
            }
            .to_wire(),
        )?;
        writer.flush()?;
        opts.stats.batches_served.fetch_add(1, Ordering::Relaxed);
        opts.stats
            .events_streamed
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        served += 1;

        match read_frame_verified(reader, verifier)? {
            Some(next) => payload = next,
            None => return Ok(()), // clean end of search
        }
    }
}

/// Counts *distinct* genomes submitted for evaluation — the number a
/// memoizing local evaluator would actually simulate. Driver-side, so
/// the count is invariant under worker deaths, re-dispatch duplicates,
/// and worker-cache evictions.
#[derive(Debug, Default)]
pub struct DistinctCounter {
    seen: HashSet<Vec<u64>>,
    count: u64,
}

impl DistinctCounter {
    /// Records one generation.
    pub fn record(&mut self, generation: &[Vec<f64>]) {
        for genes in generation {
            if self.seen.insert(genome_bits(genes)) {
                self.count += 1;
            }
        }
    }

    /// Distinct genomes recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

struct FleetWorker {
    addr: String,
    /// `None` once the connection died; the slot stays so genome→worker
    /// affinity of the survivors is undisturbed.
    stream: Option<TcpStream>,
    auth: Option<Arc<ConnectionAuth>>,
}

enum EvalShardFate {
    /// All scores streamed and the DONE count checked out.
    Clean(Vec<EvalScore>),
    /// The connection died mid-generation; `scored` arrived first.
    Dead {
        scored: Vec<EvalScore>,
        error: BackendError,
    },
    /// Protocol violation or worker-reported error: fail the search.
    Fatal(BackendError),
}

fn drain_eval_shard(
    stream: TcpStream,
    addr: String,
    expected: Vec<u64>,
    auth: Option<Arc<ConnectionAuth>>,
) -> EvalShardFate {
    let mut outstanding: HashSet<u64> = expected.into_iter().collect();
    let mut reader = BufReader::new(&stream);
    let verifier = auth.as_ref().map(|a| a.verifier.as_ref());
    let mut scored: Vec<EvalScore> = Vec::with_capacity(outstanding.len());
    loop {
        let payload = match read_frame_verified(&mut reader, verifier) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return EvalShardFate::Dead {
                    scored,
                    error: BackendError::Disconnected {
                        worker: addr,
                        detail: "connection closed mid-generation".to_owned(),
                    },
                }
            }
            Err(BackendError::Io(detail)) => {
                return EvalShardFate::Dead {
                    scored,
                    error: BackendError::Disconnected {
                        worker: addr,
                        detail,
                    },
                }
            }
            Err(e) => return EvalShardFate::Fatal(e),
        };
        match EvalReply::from_wire(&payload) {
            Ok(EvalReply::Score(score)) => {
                if !outstanding.remove(&score.index) {
                    return EvalShardFate::Fatal(BackendError::Protocol(format!(
                        "worker {addr} scored individual {} it was not assigned (or twice)",
                        score.index
                    )));
                }
                scored.push(score);
            }
            Ok(EvalReply::Done { results }) => {
                if !outstanding.is_empty() {
                    return EvalShardFate::Fatal(BackendError::Protocol(format!(
                        "worker {addr} finished a generation with {} individuals unscored",
                        outstanding.len()
                    )));
                }
                if results != scored.len() as u64 {
                    return EvalShardFate::Fatal(BackendError::Protocol(format!(
                        "worker {addr} announced {results} results but streamed {}",
                        scored.len()
                    )));
                }
                return EvalShardFate::Clean(scored);
            }
            Ok(EvalReply::Error(msg)) => return EvalShardFate::Fatal(remote_error(msg)),
            Err(e) => return EvalShardFate::Fatal(BackendError::Wire(e)),
        }
    }
}

/// A fleet of persistent evaluation-worker connections with the campaign
/// supervisor's fault tolerance: shards are re-dispatched to survivors
/// when a worker dies, and only an all-dead fleet (or a protocol
/// violation) fails the search.
pub struct EvalFleet {
    workers: Vec<FleetWorker>,
    generation: u64,
    last_error: Option<BackendError>,
    redispatched: u64,
}

impl EvalFleet {
    /// Connects to every worker up front; any refused connection fails
    /// the whole fleet (starting a search against a half-broken fleet is
    /// a configuration error, not a runtime fault).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if `addrs` is empty or any connection
    /// fails.
    pub fn connect(addrs: &[String], key: Option<AuthKey>) -> Result<EvalFleet, BackendError> {
        if addrs.is_empty() {
            return Err(BackendError::Protocol(
                "an evaluation fleet needs at least one worker address".to_owned(),
            ));
        }
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| BackendError::Io(format!("connect {addr}: {e}")))?;
            let _ = stream.set_nodelay(true);
            workers.push(FleetWorker {
                addr: addr.clone(),
                stream: Some(stream),
                auth: key.map(|k| Arc::new(ConnectionAuth::client(k))),
            });
        }
        Ok(EvalFleet {
            workers,
            generation: 0,
            last_error: None,
            redispatched: 0,
        })
    }

    /// Individuals re-dispatched to survivors after worker deaths, for
    /// observability (never part of the evaluation count).
    #[must_use]
    pub fn redispatched(&self) -> u64 {
        self.redispatched
    }

    /// Number of worker slots (live or dead) — the modulus of the
    /// genome→worker affinity mapping, fixed for the fleet's lifetime.
    #[must_use]
    pub fn fleet_size(&self) -> usize {
        self.workers.len()
    }

    fn live_slots(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.stream.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    fn kill(&mut self, slot: usize, error: BackendError) {
        eprintln!("search: worker {} died: {error}", self.workers[slot].addr);
        self.workers[slot].stream = None;
        self.last_error = Some(error);
    }

    fn all_dead(&mut self) -> BackendError {
        self.last_error
            .take()
            .unwrap_or_else(|| BackendError::Disconnected {
                worker: "all".to_owned(),
                detail: "every evaluation worker died".to_owned(),
            })
    }

    /// Scores one generation across the fleet, returning
    /// `(score, cached)` per individual in input order.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when every worker has died or a worker
    /// violates the protocol.
    pub fn run(
        &mut self,
        context: &EvalContext,
        generation: &[Vec<f64>],
    ) -> Result<Vec<(f64, bool)>, BackendError> {
        let fleet = self.workers.len();
        let mut slots: Vec<Option<(f64, bool)>> = vec![None; generation.len()];
        let mut pending: Vec<usize> = (0..generation.len()).collect();
        let mut round = 0u32;
        while !pending.is_empty() {
            let live = self.live_slots();
            if live.is_empty() {
                return Err(self.all_dead());
            }
            if round > 0 {
                eprintln!(
                    "search: re-dispatching {} unacknowledged individuals to {} survivors",
                    pending.len(),
                    live.len()
                );
                self.redispatched += pending.len() as u64;
            }
            // Shard by genome affinity: an elite re-scored next
            // generation routes to the worker whose cache holds it. The
            // fallback for a dead preferred slot is deterministic in the
            // death pattern, but scores are venue-independent, so the
            // search result never depends on who computed what.
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); fleet];
            for &i in &pending {
                let key = genome_key(&generation[i]);
                let preferred = (key % fleet as u64) as usize;
                let worker = if self.workers[preferred].stream.is_some() {
                    preferred
                } else {
                    live[(key % live.len() as u64) as usize]
                };
                shards[worker].push(i);
            }
            let mut drains = Vec::new();
            for (slot, shard) in shards.iter().enumerate() {
                if shard.is_empty() {
                    continue;
                }
                let batch = EvalBatch {
                    context: context.clone(),
                    generation: self.generation,
                    individuals: shard
                        .iter()
                        .map(|&i| (i as u64, generation[i].clone()))
                        .collect(),
                };
                let payload = batch.to_wire();
                let worker = &self.workers[slot];
                let signer = worker.auth.as_ref().map(|a| a.signer.as_ref());
                let write = {
                    let mut stream = worker.stream.as_ref().expect("sharded to a live worker");
                    write_frame_signed(&mut stream, &payload, signer)
                };
                let cloned = write.and_then(|()| {
                    self.workers[slot]
                        .stream
                        .as_ref()
                        .expect("sharded to a live worker")
                        .try_clone()
                        .map_err(|e| BackendError::Io(e.to_string()))
                });
                match cloned {
                    Ok(stream) => {
                        let addr = self.workers[slot].addr.clone();
                        let auth = self.workers[slot].auth.clone();
                        let expected: Vec<u64> = shard.iter().map(|&i| i as u64).collect();
                        drains.push((
                            slot,
                            std::thread::spawn(move || {
                                drain_eval_shard(stream, addr, expected, auth)
                            }),
                        ));
                    }
                    Err(e) => self.kill(slot, e), // shard stays pending; next round
                }
            }
            for (slot, handle) in drains {
                match handle.join().expect("eval drain thread panicked") {
                    EvalShardFate::Clean(scored) => {
                        for s in scored {
                            slots[s.index as usize] = Some((s.score, s.cached));
                        }
                    }
                    EvalShardFate::Dead { scored, error } => {
                        // Partial scores are acknowledged work — keep
                        // them; only the unacknowledged tail re-runs.
                        for s in scored {
                            slots[s.index as usize] = Some((s.score, s.cached));
                        }
                        self.kill(slot, error);
                    }
                    EvalShardFate::Fatal(e) => return Err(e),
                }
            }
            pending.retain(|&i| slots[i].is_none());
            round += 1;
        }
        self.generation += 1;
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every individual scored"))
            .collect())
    }
}

/// Adapts an [`EvalFleet`] to the GA's [`FitnessEvaluator`] trait.
pub struct RemoteEvaluator {
    fleet: EvalFleet,
    context: EvalContext,
    distinct: DistinctCounter,
    cache_hits: u64,
}

impl RemoteEvaluator {
    /// Connects a fleet and binds it to an evaluation context.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the fleet fails to connect.
    pub fn connect(
        addrs: &[String],
        key: Option<AuthKey>,
        context: EvalContext,
    ) -> Result<RemoteEvaluator, BackendError> {
        Ok(RemoteEvaluator {
            fleet: EvalFleet::connect(addrs, key)?,
            context,
            distinct: DistinctCounter::default(),
            cache_hits: 0,
        })
    }

    /// Worker-reported cache hits across the search (observability; not
    /// part of the deterministic evaluation count).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Individuals re-dispatched after worker deaths (observability;
    /// never part of the evaluation count).
    #[must_use]
    pub fn redispatched(&self) -> u64 {
        self.fleet.redispatched()
    }
}

impl FitnessEvaluator for RemoteEvaluator {
    fn evaluate(&mut self, generation: &[Vec<f64>]) -> Result<Vec<f64>, EvalError> {
        let scored = self
            .fleet
            .run(&self.context, generation)
            .map_err(|e| EvalError(e.to_string()))?;
        self.distinct.record(generation);
        self.cache_hits += scored.iter().filter(|(_, cached)| *cached).count() as u64;
        Ok(scored.into_iter().map(|(score, _)| score).collect())
    }

    fn evaluations(&self) -> u64 {
        self.distinct.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_isa::wire::WIRE_VERSION;

    fn context() -> EvalContext {
        EvalContext {
            machine: MachineConfig::baseline(),
            fitness: Fitness::overall(FaultRates::rhc()),
            instr_budget: 20_000,
        }
    }

    fn batch() -> EvalBatch {
        EvalBatch {
            context: context(),
            generation: 7,
            individuals: vec![(0, vec![0.1, 0.2, 0.3]), (3, vec![0.9, -0.0, 1.0])],
        }
    }

    #[test]
    fn eval_batch_round_trips() {
        let b = batch();
        let decoded = EvalBatch::from_wire(&b.to_wire()).expect("round trip");
        assert_eq!(decoded.generation, 7);
        assert_eq!(decoded.individuals.len(), 2);
        assert_eq!(decoded.individuals[1].0, 3);
        assert_eq!(
            genome_bits(&decoded.individuals[1].1),
            genome_bits(&b.individuals[1].1),
            "genes travel bit-exactly, including -0.0"
        );
        assert_eq!(decoded.context.fingerprint(), b.context.fingerprint());
        assert_eq!(decoded.context.fitness.rates(), b.context.fitness.rates());
        assert_eq!(decoded.context.fitness.scope(), b.context.fitness.scope());
    }

    #[test]
    fn eval_score_round_trips_through_reply() {
        let s = EvalScore {
            index: 42,
            score: 0.123_456_789,
            cached: true,
        };
        match EvalReply::from_wire(&s.to_wire()).expect("round trip") {
            EvalReply::Score(got) => assert_eq!(got, s),
            other => panic!("expected a score, got {other:?}"),
        }
        let done = ServerMessage::Done { events: 9 }.to_wire();
        assert_eq!(
            EvalReply::from_wire(&done).expect("done decodes"),
            EvalReply::Done { results: 9 }
        );
    }

    #[test]
    fn truncated_and_garbage_eval_payloads_fail_typed() {
        let bytes = batch().to_wire();
        for cut in [1, 6, 20, bytes.len() - 1] {
            assert!(
                matches!(
                    EvalBatch::from_wire(&bytes[..cut]),
                    Err(WireError::Truncated | WireError::BadMagic(_))
                ),
                "cut at {cut} must fail typed"
            );
        }
        let mut garbage = bytes.clone();
        garbage[0] ^= 0xFF;
        assert!(matches!(
            EvalBatch::from_wire(&garbage),
            Err(WireError::BadMagic(_))
        ));
        let wrong_kind = EvalScore {
            index: 0,
            score: 0.0,
            cached: false,
        }
        .to_wire();
        assert!(matches!(
            EvalBatch::from_wire(&wrong_kind),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn v6_eval_frames_fail_with_version_skew() {
        // A pre-eval v6 build cannot speak EVAL_BATCH at all; what it
        // would actually send is a v6 envelope, and this v7 build must
        // name both versions in the error instead of misdecoding.
        let mut stale = batch().to_wire();
        stale[4] = 6;
        assert!(matches!(
            EvalBatch::from_wire(&stale),
            Err(WireError::UnsupportedVersion {
                found: 6,
                expected: WIRE_VERSION,
            })
        ));
        let mut stale_reply = EvalScore {
            index: 1,
            score: 1.0,
            cached: false,
        }
        .to_wire();
        stale_reply[4] = 6;
        assert_eq!(
            EvalReply::from_wire(&stale_reply),
            Err(WireError::UnsupportedVersion {
                found: 6,
                expected: WIRE_VERSION,
            })
        );
    }

    #[test]
    fn context_fingerprint_tracks_every_field() {
        let base = context().fingerprint();
        let mut other = context();
        other.instr_budget += 1;
        assert_ne!(base, other.fingerprint(), "budget is part of the key");
        let mut other = context();
        other.fitness = Fitness::overall(FaultRates::baseline());
        assert_ne!(base, other.fingerprint(), "rates are part of the key");
        let mut other = context();
        other.fitness = Fitness::with_scope(FaultRates::rhc(), FitnessScope::Core);
        assert_ne!(base, other.fingerprint(), "scope is part of the key");
        let mut other = context();
        other.machine = MachineConfig::config_a();
        assert_ne!(base, other.fingerprint(), "machine is part of the key");
        assert_eq!(base, context().fingerprint(), "fingerprint is stable");
    }

    #[test]
    fn eval_cache_hits_and_evicts() {
        let cache = EvalCache::with_capacity(2);
        let bits_a = genome_bits(&[0.1]);
        let bits_b = genome_bits(&[0.2]);
        let bits_c = genome_bits(&[0.3]);
        assert_eq!(cache.lookup(1, &bits_a), None);
        cache.insert(1, bits_a.clone(), 10.0);
        assert_eq!(cache.lookup(1, &bits_a), Some(10.0));
        assert_eq!(cache.lookup(2, &bits_a), None, "context keys are distinct");
        cache.insert(1, bits_b.clone(), 20.0);
        // Touch A so B is the LRU victim when C arrives.
        assert_eq!(cache.lookup(1, &bits_a), Some(10.0));
        cache.insert(1, bits_c.clone(), 30.0);
        assert_eq!(cache.lookup(1, &bits_b), None, "LRU entry evicted");
        assert_eq!(cache.lookup(1, &bits_c), Some(30.0));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn distinct_counter_matches_local_semantics() {
        let mut counter = DistinctCounter::default();
        counter.record(&[vec![0.5, 0.5], vec![0.5, 0.5], vec![0.1, 0.9]]);
        assert_eq!(counter.count(), 2, "in-generation duplicates count once");
        counter.record(&[vec![0.5, 0.5], vec![0.0]]);
        assert_eq!(counter.count(), 3, "cross-generation repeats count once");
        counter.record(&[vec![-0.0]]);
        assert_eq!(counter.count(), 4, "-0.0 and 0.0 are distinct genomes");
    }

    #[test]
    fn decode_rejects_invalid_fields() {
        let mut b = batch();
        b.individuals[0].1.clear();
        assert!(matches!(
            EvalBatch::from_wire(&b.to_wire()),
            Err(WireError::Invalid(_))
        ));
        let mut b = batch();
        b.context.instr_budget = 0;
        assert!(matches!(
            EvalBatch::from_wire(&b.to_wire()),
            Err(WireError::Invalid(_))
        ));
        let mut nan_rates = batch().to_wire();
        // Corrupt the first fault rate (right after machine + name code)
        // into a negative value; the decoder must reject it rather than
        // panic inside `FaultRates::set`.
        let mut probe = WireWriter::new();
        batch().context.machine.encode(&mut probe);
        let rate_at = 6 + probe.len() + 1;
        nan_rates[rate_at..rate_at + 8].copy_from_slice(&f64::to_le_bytes(-1.0));
        assert!(matches!(
            EvalBatch::from_wire(&nan_rates),
            Err(WireError::Invalid(_))
        ));
    }
}
