//! The long-running campaign job server.
//!
//! `avf-stressmark serve --listen <addr>` runs [`serve`]: an accept
//! loop that gives every connection its own handler thread. A handler
//! is a thin wire adapter over [`LocalBackend`] — it resolves the
//! job's checkpoint store through the shared [`StoreCache`] (cache
//! hit, shipped bytes, or its own golden run), opens a local session,
//! then turns every trial-batch frame into a `submit` and streams the
//! resulting trial events back as length-prefixed frames *as they
//! complete* (coalesced through a [`FrameBatcher`] so a fast stream
//! does not pay one syscall per 16-byte event). The server is
//! venue-symmetric with in-process execution by construction: both
//! sides of the socket run the exact same [`CampaignBackend`] code
//! path.
//!
//! [`ServeOptions::die_mid_batch`] is deliberate fault injection for
//! the resilience tests and the CI resilience job: the handler streams
//! half of the designated batch's events, then drops the connection
//! with no error frame — exactly what a worker crash looks like from
//! the driver's side.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use avf_inject::{
    cycle_budget_of, BackendError, CampaignBackend, GoldenSpec, JobSpec, LocalBackend,
};
use avf_prune::PruneMap;
use avf_sim::{golden_run_checkpointed, golden_run_with_evidence, PRUNE_WINDOW};

use crate::auth::{read_frame_verified, write_frame_signed, AuthKey, AuthVerifier, ConnectionAuth};
use crate::cache::{CacheEntry, StoreCache};
use crate::eval::{handle_eval_session, EvalCache};
use crate::frame::FrameBatcher;
use crate::metrics::ServeStats;
use crate::protocol::{geometry_fingerprint, ClientMessage, JobReady, ServerMessage, SetupMode};

/// Server tuning.
#[derive(Clone)]
pub struct ServeOptions {
    /// Worker threads per connection (0 = all available cores).
    pub threads: usize,
    /// Fault injection for resilience testing: abort the connection
    /// midway through streaming batch `n` (0-based, counted per
    /// connection) — half the batch's events go out, then the socket
    /// dies with no error frame.
    pub die_mid_batch: Option<u64>,
    /// The checkpoint-store cache shared by every connection. A fresh
    /// default-bounded cache per `ServeOptions` unless the caller
    /// wants to observe or share one.
    pub cache: Arc<StoreCache>,
    /// Shared frame-authentication key (`--auth-key-file`). `None`
    /// accepts plain frames; `Some` requires every frame on every
    /// connection to carry a valid tag and tags every reply.
    pub auth: Option<AuthKey>,
    /// Session counters the metrics endpoint renders.
    pub stats: Arc<ServeStats>,
    /// The genome→fitness score cache shared by every evaluation
    /// session (wire v7), the fitness analogue of `cache`: elite
    /// genomes re-scored across generations hit here instead of
    /// re-simulating.
    pub eval_cache: Arc<EvalCache>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 0,
            die_mid_batch: None,
            cache: StoreCache::shared(),
            auth: None,
            stats: ServeStats::shared(),
            eval_cache: EvalCache::shared(),
        }
    }
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("threads", &self.threads)
            .field("die_mid_batch", &self.die_mid_batch)
            .field("cache", &self.cache.stats())
            .field("auth", &self.auth.is_some())
            .field("eval_cache", &self.eval_cache.stats())
            .finish()
    }
}

/// Runs the accept loop forever, spawning one handler thread per
/// connection. Never returns except on listener failure.
///
/// # Errors
///
/// Returns the I/O error that broke the accept loop.
pub fn serve(listener: TcpListener, opts: &ServeOptions) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let stream = conn?;
        let opts = opts.clone();
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string());
            // One auth pair per connection: fresh per-direction
            // sequence spaces are what make replay detection sound.
            let auth = opts.auth.map(|key| Arc::new(ConnectionAuth::server(key)));
            match handle_connection(&stream, &opts, auth.as_ref()) {
                Ok(()) => {
                    opts.stats.sessions_ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    opts.stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
                    if matches!(e, BackendError::Auth(_)) {
                        opts.stats.auth_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                    // Best-effort error frame; the connection may already be
                    // gone, and either way the session is over. Signed when
                    // the server is keyed — an authenticated driver must
                    // never trust an unsigned error frame.
                    let mut w = BufWriter::new(&stream);
                    let _ = write_frame_signed(
                        &mut w,
                        &ServerMessage::Error(e.to_string()).to_wire(),
                        auth.as_ref().map(|a| a.signer.as_ref()),
                    );
                    let _ = w.flush();
                    eprintln!("serve: session with {peer} failed: {e}");
                }
            }
        });
    }
    Ok(())
}

/// Binds an ephemeral local port and runs [`serve`] on a background
/// thread, returning the bound address — the in-process harness the
/// loopback tests and CI smoke use.
///
/// # Errors
///
/// Returns the I/O error if the port cannot be bound.
pub fn spawn_local(opts: ServeOptions) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    std::thread::spawn(move || {
        if let Err(e) = serve(listener, &opts) {
            eprintln!("serve: accept loop failed: {e}");
        }
    });
    Ok(addr)
}

/// Resolves the job's checkpoint store and golden run through the
/// cache, answering the handshake on `writer`. On a shipped-mode miss
/// this reads the `STORE_DATA` frame from `reader` and verifies its
/// content hash against the one announced in setup.
fn resolve_store(
    setup: ClientMessage,
    reader: &mut BufReader<&TcpStream>,
    writer: &mut FrameBatcher<&TcpStream>,
    cache: &StoreCache,
    verifier: Option<&AuthVerifier>,
) -> Result<(crate::protocol::JobSetup, CacheEntry, u64), BackendError> {
    let ClientMessage::Setup(setup) = setup else {
        return Err(BackendError::Protocol(
            "session must open with a job setup frame".to_owned(),
        ));
    };
    let setup = *setup;
    let key = setup.cache_key();
    let geometry = geometry_fingerprint(&setup.machine, &setup.program);
    // A pruning delegated job needs the golden pass's ACE evidence on
    // top of the store (shipped-mode pruning is driver-side only).
    let wants_evidence = setup.prune && matches!(setup.mode, SetupMode::Delegated { .. });
    if let Some(mut entry) = cache.get(key, geometry) {
        eprintln!("serve: job {key:016x} checkpoint store HAVE (cache hit)");
        writer.push(&ServerMessage::StoreHave { hash: key }.to_wire())?;
        writer.flush()?;
        if wants_evidence && entry.evidence.is_none() {
            // The cached store came from an uninstrumented pass: re-run
            // instrumented to capture evidence, cross-check it resolved
            // the identical reference, and refresh the entry so the
            // next pruning session hits outright.
            let SetupMode::Delegated {
                checkpoint_interval,
            } = setup.mode
            else {
                unreachable!("wants_evidence implies delegated mode");
            };
            eprintln!("serve: job {key:016x} regenerating prune evidence (instrumented pass)");
            let (golden, _, evidence) = golden_run_with_evidence(
                &setup.machine,
                &setup.program,
                setup.instr_budget,
                checkpoint_interval,
                PRUNE_WINDOW,
            );
            if golden != entry.golden {
                return Err(BackendError::Protocol(format!(
                    "instrumented golden pass diverged from the cached reference: \
                     digest {:016x} vs {:016x}",
                    golden.digest, entry.golden.digest
                )));
            }
            entry.evidence = Some(Arc::new(evidence));
            cache.insert(key, entry.clone());
        }
        return Ok((setup, entry, key));
    }
    writer.push(&ServerMessage::StoreNeed { hash: key }.to_wire())?;
    writer.flush()?;
    let (store, golden, evidence) = match setup.mode {
        SetupMode::Shipped {
            store_hash, golden, ..
        } => {
            eprintln!("serve: job {key:016x} checkpoint store NEED (awaiting shipment)");
            let Some(payload) = read_frame_verified(reader, verifier)? else {
                return Err(BackendError::Disconnected {
                    worker: "client".to_owned(),
                    detail: "connection closed before the checkpoint store arrived".to_owned(),
                });
            };
            let ClientMessage::Store { store, hash } = ClientMessage::from_wire(&payload)? else {
                return Err(BackendError::Protocol(
                    "expected a STORE_DATA frame after STORE_NEED".to_owned(),
                ));
            };
            if hash != store_hash {
                return Err(BackendError::Protocol(format!(
                    "shipped store hashes to {hash:016x}, setup announced {store_hash:016x}"
                )));
            }
            (store, golden, None)
        }
        SetupMode::Delegated {
            checkpoint_interval,
        } => {
            eprintln!("serve: job {key:016x} checkpoint store NEED (running golden pass)");
            if setup.prune {
                let (golden, store, evidence) = golden_run_with_evidence(
                    &setup.machine,
                    &setup.program,
                    setup.instr_budget,
                    checkpoint_interval,
                    PRUNE_WINDOW,
                );
                (Arc::new(store), golden, Some(Arc::new(evidence)))
            } else {
                let (golden, store) = golden_run_checkpointed(
                    &setup.machine,
                    &setup.program,
                    setup.instr_budget,
                    checkpoint_interval,
                );
                (Arc::new(store), golden, None)
            }
        }
    };
    // Decode once at insertion: every later campaign on this worker —
    // this connection included — restores straight from the decoded
    // snapshots, so a cache hit no longer pays `decode_all`. Doubles as
    // the geometry verification of a shipped store.
    let decoded = Arc::new(store.decode_all(&setup.machine, &setup.program)?);
    let entry = CacheEntry {
        store,
        decoded,
        golden,
        geometry,
        evidence,
    };
    cache.insert(key, entry.clone());
    Ok((setup, entry, key))
}

/// Drives one campaign session over one connection.
fn handle_connection(
    stream: &TcpStream,
    opts: &ServeOptions,
    auth: Option<&Arc<ConnectionAuth>>,
) -> Result<(), BackendError> {
    let mut reader = BufReader::new(stream);
    let verifier = auth.map(|a| a.verifier.as_ref());
    let mut writer = FrameBatcher::new(stream).with_signer(auth.map(|a| Arc::clone(&a.signer)));

    // The session must open with a job setup frame — or, since wire
    // v7, an EVAL_BATCH frame opening a fitness-evaluation session.
    let Some(payload) = read_frame_verified(&mut reader, verifier)? else {
        return Ok(()); // connected and left; nothing to do
    };
    if payload.get(5) == Some(&avf_isa::wire::kind::EVAL_BATCH) {
        return handle_eval_session(stream, &mut reader, &mut writer, payload, opts, verifier);
    }
    let first = ClientMessage::from_wire(&payload)?;
    let (setup, entry, key) =
        resolve_store(first, &mut reader, &mut writer, &opts.cache, verifier)?;

    let cycle_budget = match setup.mode {
        SetupMode::Shipped { cycle_budget, .. } => cycle_budget,
        SetupMode::Delegated { .. } => cycle_budget_of(entry.golden.cycles),
    };
    // Keep the job's geometry for batch validation: the simulator
    // *asserts* entry/bit bounds, so an out-of-geometry trial smuggled
    // over the wire must be rejected here with an error frame, not
    // allowed to panic a worker thread.
    let machine = setup.machine.clone();
    let sizes = machine.structure_sizes();
    // A pruning delegated job ships the classifier's map back with
    // JOB_READY: the driver never simulated the golden pass, so the
    // worker's evidence is the only source. The map derives from the
    // session's fault model; the cached evidence is model-independent.
    let prune = match (&setup.mode, entry.evidence.as_deref()) {
        (SetupMode::Delegated { .. }, Some(evidence)) if setup.prune => Some(PruneMap::build(
            &machine,
            &setup.program,
            setup.fault_model,
            evidence,
        )),
        _ => None,
    };
    let backend = LocalBackend::new(opts.threads);
    let golden = entry.golden;
    let opened = backend.open(JobSpec {
        machine: setup.machine,
        program: setup.program,
        instr_budget: setup.instr_budget,
        fault_model: setup.fault_model,
        golden: GoldenSpec::Shipped {
            store: entry.store,
            decoded: Some(entry.decoded),
            golden,
            cycle_budget,
        },
        prune: false, // the store (and map) are already resolved here
    })?;
    writer.push(
        &ServerMessage::Ready(JobReady {
            store_hash: key,
            golden,
            checkpoints: opened.checkpoints as u64,
            prune,
        })
        .to_wire(),
    )?;
    writer.flush()?;
    let mut session = opened.session;

    // Then any number of trial batches until the client hangs up.
    let mut served = 0u64;
    while let Some(payload) = read_frame_verified(&mut reader, verifier)? {
        let ClientMessage::Batch(trials) = ClientMessage::from_wire(&payload)? else {
            return Err(BackendError::Protocol(
                "expected a trial batch frame".to_owned(),
            ));
        };
        if let Some(t) = trials
            .iter()
            .find(|t| t.entry >= t.target.entries(&machine) || t.bit >= t.target.entry_bits(&sizes))
        {
            return Err(BackendError::Protocol(format!(
                "trial {} ({} entry {} bit {}) lies outside the job's machine geometry",
                t.index, t.target, t.entry, t.bit
            )));
        }
        if opts.die_mid_batch == Some(served) {
            // Injected fault: stream half the batch, then crash. No
            // error frame, no DONE — the driver must observe this as a
            // dead connection and re-dispatch the unacknowledged half.
            let half = (trials.len() / 2) as u64;
            for (streamed, event) in session.submit(&trials)?.enumerate() {
                if streamed as u64 >= half {
                    break;
                }
                writer.push(&ServerMessage::Event(event?).to_wire())?;
            }
            writer.flush()?;
            eprintln!("serve: injected fault — aborting connection mid-batch {served}");
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
        let mut events = 0u64;
        for event in session.submit(&trials)? {
            let event = event?;
            writer.push(&ServerMessage::Event(event).to_wire())?;
            events += 1;
        }
        writer.push(&ServerMessage::Done { events }.to_wire())?;
        // The DONE marker is a protocol barrier: everything queued for
        // the batch must reach the driver before it plans the next one.
        writer.flush()?;
        opts.stats.batches_served.fetch_add(1, Ordering::Relaxed);
        opts.stats
            .events_streamed
            .fetch_add(events, Ordering::Relaxed);
        served += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use crate::protocol::JobSetup;
    use avf_sim::MachineConfig;

    #[test]
    fn empty_connection_is_a_clean_session() {
        let addr = spawn_local(ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        // Connect and immediately hang up: the handler must treat this
        // as a zero-job session, not an error.
        drop(TcpStream::connect(addr).unwrap());
        // A second connection still works (the accept loop survived).
        drop(TcpStream::connect(addr).unwrap());
    }

    /// Opens a delegated-mode session on `addr` and drains the
    /// handshake up to (and including) JOB_READY.
    fn open_session(addr: std::net::SocketAddr, instr_budget: u64) -> TcpStream {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let stream = TcpStream::connect(addr).unwrap();
        {
            let mut w = BufWriter::new(&stream);
            let setup = JobSetup {
                machine,
                program,
                instr_budget,
                fault_model: avf_inject::FaultModel::default(),
                prune: false,
                mode: SetupMode::Delegated {
                    checkpoint_interval: 256,
                },
            };
            write_frame(&mut w, &setup.to_wire()).unwrap();
            w.flush().unwrap();
            let mut r = BufReader::new(&stream);
            let reply = read_frame(&mut r).unwrap().expect("handshake reply");
            assert!(matches!(
                ServerMessage::from_wire(&reply).unwrap(),
                ServerMessage::StoreHave { .. } | ServerMessage::StoreNeed { .. }
            ));
            let ready = read_frame(&mut r).unwrap().expect("ready frame");
            match ServerMessage::from_wire(&ready).unwrap() {
                ServerMessage::Ready(ready) => assert!(ready.checkpoints > 0),
                other => panic!("expected JOB_READY, got {other:?}"),
            }
        }
        stream
    }

    #[test]
    fn out_of_geometry_trials_get_an_error_frame_not_a_panic() {
        use avf_inject::{encode_trial_batch, Trial};
        use avf_sim::InjectionTarget;

        let machine = MachineConfig::baseline();
        let addr = spawn_local(ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        let stream = open_session(addr, 2_000);
        let mut w = BufWriter::new(&stream);
        // One trial far past the ROB's physical entries: the simulator
        // would assert; the server must reject it at the protocol layer.
        let bad = Trial {
            index: 0,
            target: InjectionTarget::Rob,
            cycle: 1,
            entry: machine.rob_entries as u64 + 5,
            bit: 0,
        };
        write_frame(&mut w, &encode_trial_batch(&[bad])).unwrap();
        w.flush().unwrap();

        let mut r = BufReader::new(&stream);
        let reply = read_frame(&mut r).unwrap().expect("error frame");
        match ServerMessage::from_wire(&reply).unwrap() {
            ServerMessage::Error(msg) => assert!(msg.contains("geometry"), "{msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn garbage_setup_gets_an_error_frame() {
        let addr = spawn_local(ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(&stream);
        write_frame(&mut w, b"this is not a job spec").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(&stream);
        let reply = read_frame(&mut r).unwrap().expect("error frame");
        match ServerMessage::from_wire(&reply).unwrap() {
            ServerMessage::Error(msg) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn second_identical_session_hits_the_store_cache() {
        let opts = ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        };
        let cache = Arc::clone(&opts.cache);
        let addr = spawn_local(opts).unwrap();
        drop(open_session(addr, 2_000));
        assert_eq!(cache.stats().hits, 0);
        drop(open_session(addr, 2_000));
        // The handler thread of the second connection completed its
        // lookup before sending JOB_READY, which open_session waited on.
        assert_eq!(cache.stats().hits, 1, "identical job must hit");
        // A different budget is a different job key.
        drop(open_session(addr, 2_500));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 2);
    }
}
