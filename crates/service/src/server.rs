//! The long-running campaign job server.
//!
//! `avf-stressmark serve --listen <addr>` runs [`serve`]: an accept
//! loop that gives every connection its own handler thread. A handler
//! is a thin wire adapter over [`LocalBackend`] — it decodes the
//! [`JobSpec`], opens a local session (paying checkpoint decode once
//! per connection), then turns every trial-batch frame into a `submit`
//! and streams the resulting trial events back as length-prefixed
//! frames *as they complete*, so the driver's adaptive loop sees
//! per-trial progress regardless of where execution happens. The
//! server is venue-symmetric with in-process execution by
//! construction: both sides of the socket run the exact same
//! [`CampaignBackend`] code path.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

use avf_inject::{decode_trial_batch, BackendError, CampaignBackend, JobSpec, LocalBackend};

use crate::frame::{read_frame, write_frame};
use crate::protocol::ServerMessage;

/// Server tuning.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker threads per connection (0 = all available cores).
    pub threads: usize,
}

/// Runs the accept loop forever, spawning one handler thread per
/// connection. Never returns except on listener failure.
///
/// # Errors
///
/// Returns the I/O error that broke the accept loop.
pub fn serve(listener: TcpListener, opts: &ServeOptions) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let stream = conn?;
        let opts = opts.clone();
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string());
            if let Err(e) = handle_connection(&stream, &opts) {
                // Best-effort error frame; the connection may already be
                // gone, and either way the session is over.
                let mut w = BufWriter::new(&stream);
                let _ = write_frame(&mut w, &ServerMessage::Error(e.to_string()).to_wire());
                let _ = w.flush();
                eprintln!("serve: session with {peer} failed: {e}");
            }
        });
    }
    Ok(())
}

/// Binds an ephemeral local port and runs [`serve`] on a background
/// thread, returning the bound address — the in-process harness the
/// loopback tests and CI smoke use.
///
/// # Errors
///
/// Returns the I/O error if the port cannot be bound.
pub fn spawn_local(opts: ServeOptions) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    std::thread::spawn(move || {
        if let Err(e) = serve(listener, &opts) {
            eprintln!("serve: accept loop failed: {e}");
        }
    });
    Ok(addr)
}

/// Drives one campaign session over one connection.
fn handle_connection(stream: &TcpStream, opts: &ServeOptions) -> Result<(), BackendError> {
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);

    // The session must open with a job setup frame.
    let Some(setup) = read_frame(&mut reader)? else {
        return Ok(()); // connected and left; nothing to do
    };
    let spec = JobSpec::from_wire(&setup)?;
    // Keep the job's geometry for batch validation: the simulator
    // *asserts* entry/bit bounds, so an out-of-geometry trial smuggled
    // over the wire must be rejected here with an error frame, not
    // allowed to panic a worker thread.
    let machine = spec.machine.clone();
    let sizes = machine.structure_sizes();
    let backend = LocalBackend::new(opts.threads);
    let mut session = backend.open(spec)?;

    // Then any number of trial batches until the client hangs up.
    while let Some(payload) = read_frame(&mut reader)? {
        let trials = decode_trial_batch(&payload)?;
        if let Some(t) = trials
            .iter()
            .find(|t| t.entry >= t.target.entries(&machine) || t.bit >= t.target.entry_bits(&sizes))
        {
            return Err(BackendError::Protocol(format!(
                "trial {} ({} entry {} bit {}) lies outside the job's machine geometry",
                t.index, t.target, t.entry, t.bit
            )));
        }
        let mut events = 0u64;
        for event in session.submit(&trials)? {
            let event = event?;
            write_frame(&mut writer, &ServerMessage::Event(event).to_wire())?;
            // Flush per event: the client's adaptive driver is entitled
            // to see outcomes as they complete, not at batch boundaries.
            writer.flush().map_err(BackendError::from)?;
            events += 1;
        }
        write_frame(&mut writer, &ServerMessage::Done { events }.to_wire())?;
        writer.flush().map_err(BackendError::from)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_connection_is_a_clean_session() {
        let addr = spawn_local(ServeOptions { threads: 1 }).unwrap();
        // Connect and immediately hang up: the handler must treat this
        // as a zero-job session, not an error.
        drop(TcpStream::connect(addr).unwrap());
        // A second connection still works (the accept loop survived).
        drop(TcpStream::connect(addr).unwrap());
    }

    #[test]
    fn out_of_geometry_trials_get_an_error_frame_not_a_panic() {
        use avf_inject::{encode_trial_batch, Trial};
        use avf_sim::{golden_run_checkpointed, InjectionTarget, MachineConfig};

        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let (golden, store) = golden_run_checkpointed(&machine, &program, 2_000, 256);
        let spec = JobSpec {
            machine: machine.clone(),
            program,
            store,
            instr_budget: 2_000,
            cycle_budget: golden.cycles * 4 + 50_000,
            golden_digest: golden.digest,
        };

        let addr = spawn_local(ServeOptions { threads: 1 }).unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(&stream);
        write_frame(&mut w, &spec.to_wire()).unwrap();
        // One trial far past the ROB's physical entries: the simulator
        // would assert; the server must reject it at the protocol layer.
        let bad = Trial {
            index: 0,
            target: InjectionTarget::Rob,
            cycle: 1,
            entry: machine.rob_entries as u64 + 5,
            bit: 0,
        };
        write_frame(&mut w, &encode_trial_batch(&[bad])).unwrap();
        w.flush().unwrap();

        let mut r = BufReader::new(&stream);
        let reply = read_frame(&mut r).unwrap().expect("error frame");
        match ServerMessage::from_wire(&reply).unwrap() {
            ServerMessage::Error(msg) => assert!(msg.contains("geometry"), "{msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn garbage_setup_gets_an_error_frame() {
        let addr = spawn_local(ServeOptions { threads: 1 }).unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(&stream);
        write_frame(&mut w, b"this is not a job spec").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(&stream);
        let reply = read_frame(&mut r).unwrap().expect("error frame");
        match ServerMessage::from_wire(&reply).unwrap() {
            ServerMessage::Error(msg) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
}
