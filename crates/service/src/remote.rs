//! [`RemoteBackend`]: the TCP client side of the campaign service.
//!
//! One backend fans a campaign out over one or more `serve` workers.
//! `open` ships the identical [`JobSpec`] bytes to every worker (each
//! pays checkpoint decode once per campaign, exactly like the local
//! backend); `submit` strides the batch's cycle-sorted trials across
//! the workers and merges their event streams into one
//! [`TrialStream`]. Because outcome counts commute and samples are
//! seed-derived, the driver's report is bit-identical to a local run —
//! the loopback test in `tests/loopback.rs` holds that line.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc;

use avf_inject::{
    encode_trial_batch, shard_trials, BackendError, CampaignBackend, CampaignSession, JobSpec,
    Trial, TrialStream,
};

use crate::frame::{read_frame, write_frame};
use crate::protocol::ServerMessage;

/// A campaign backend executing trials on remote `serve` workers.
pub struct RemoteBackend {
    addrs: Vec<String>,
}

impl RemoteBackend {
    /// A backend over one or more worker addresses (`host:port`).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty — a remote backend with no workers
    /// cannot execute anything.
    #[must_use]
    pub fn new(addrs: Vec<String>) -> RemoteBackend {
        assert!(
            !addrs.is_empty(),
            "remote backend needs at least one worker"
        );
        RemoteBackend { addrs }
    }

    /// The configured worker addresses.
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }
}

impl CampaignBackend for RemoteBackend {
    fn workers(&self) -> usize {
        self.addrs.len()
    }

    fn open(&self, spec: JobSpec) -> Result<Box<dyn CampaignSession>, BackendError> {
        let setup = spec.to_wire();
        let mut conns = Vec::with_capacity(self.addrs.len());
        for addr in &self.addrs {
            let stream = TcpStream::connect(addr.as_str())
                .map_err(|e| BackendError::Io(format!("connect {addr}: {e}")))?;
            // Event frames are tiny; don't let Nagle batch them up.
            let _ = stream.set_nodelay(true);
            let mut w = BufWriter::new(&stream);
            write_frame(&mut w, &setup)?;
            w.flush().map_err(BackendError::from)?;
            drop(w);
            conns.push(stream);
        }
        Ok(Box::new(RemoteSession { conns }))
    }
}

struct RemoteSession {
    conns: Vec<TcpStream>,
}

impl CampaignSession for RemoteSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let shards = shard_trials(trials, self.conns.len());
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(self.conns.len());
        for (conn, shard) in self.conns.iter().zip(shards) {
            // Every worker gets a batch frame — an empty one still
            // elicits a DONE, keeping the per-connection state machine
            // in lockstep with the driver's batch loop.
            let mut w = BufWriter::new(conn);
            write_frame(&mut w, &encode_trial_batch(&shard))?;
            w.flush().map_err(BackendError::from)?;

            // Read this batch's replies on a dedicated thread so slow
            // and fast workers interleave into one stream. The clone is
            // safe to drop at DONE: the server sends nothing further
            // until our next batch frame, so no reply bytes can be
            // stranded in the BufReader.
            let reader = conn
                .try_clone()
                .map_err(|e| BackendError::Io(format!("clone stream: {e}")))?;
            let tx = tx.clone();
            let expected = shard.len() as u64;
            handles.push(std::thread::spawn(move || {
                drain_batch(reader, expected, &tx);
            }));
        }
        drop(tx);
        Ok(TrialStream::new(rx, handles))
    }
}

/// Forwards one worker's event stream for one batch into `tx`,
/// terminating at the DONE marker (or surfacing whatever went wrong).
fn drain_batch(
    stream: TcpStream,
    expected: u64,
    tx: &mpsc::Sender<Result<avf_inject::TrialEvent, BackendError>>,
) {
    let mut reader = BufReader::new(stream);
    let mut seen = 0u64;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => {
                let _ = tx.send(Err(BackendError::Io(
                    "worker closed the connection mid-batch".to_owned(),
                )));
                return;
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        };
        match ServerMessage::from_wire(&payload) {
            Ok(ServerMessage::Event(ev)) => {
                seen += 1;
                if tx.send(Ok(ev)).is_err() {
                    return; // stream dropped; stop reading
                }
            }
            Ok(ServerMessage::Done { events }) => {
                if events != seen || seen != expected {
                    let _ = tx.send(Err(BackendError::Protocol(format!(
                        "worker reported {events} events, streamed {seen}, expected {expected}"
                    ))));
                }
                return;
            }
            Ok(ServerMessage::Error(msg)) => {
                let _ = tx.send(Err(crate::protocol::remote_error(msg)));
                return;
            }
            Err(e) => {
                let _ = tx.send(Err(e.into()));
                return;
            }
        }
    }
}
