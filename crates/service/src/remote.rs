//! [`RemoteBackend`]: the TCP client side of the campaign service.
//!
//! One backend fans a campaign out over one or more `serve` workers.
//! `open` runs the setup handshake against every worker *in parallel*:
//! the setup frame names the checkpoint store by content hash, each
//! worker answers `HAVE` (cached) or `NEED` (ship the bytes, or — in
//! delegated mode — run the golden pass itself), and every worker
//! closes with `JOB_READY`. The driver then cross-checks that all
//! workers resolved the *identical* golden run; divergence is a hard
//! protocol error, because a worker disagreeing about the fault-free
//! reference would silently corrupt every classification it returns.
//!
//! `submit` strides the batch's cycle-sorted trials across live
//! workers and merges their event streams into one [`TrialStream`].
//! A worker whose connection dies mid-batch does **not** kill the
//! campaign: the supervisor collects the trials that worker never
//! acknowledged and re-dispatches them to the survivors. Because every
//! trial's outcome is a pure function of the trial itself (sampled
//! from `(seed, batch, index)`), the merged result — and therefore the
//! final `CampaignReport` — is bit-identical to the fault-free run;
//! only the dispatch trajectory records that the failure happened.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use avf_inject::{
    encode_trial_batch, shard_trials, BackendError, CampaignBackend, CampaignSession,
    DispatchRecord, GoldenSpec, JobSpec, OpenedJob, StoreSource, Trial, TrialEvent, TrialStream,
    WorkerProvision,
};

use crate::auth::{read_frame_verified, write_frame_signed, AuthKey, ConnectionAuth};
use crate::protocol::{
    encode_store_data, store_frame_hash, JobReady, JobSetup, ServerMessage, SetupMode,
};

/// A campaign backend executing trials on remote `serve` workers.
pub struct RemoteBackend {
    addrs: Vec<String>,
    auth: Option<AuthKey>,
}

impl RemoteBackend {
    /// A backend over one or more worker addresses (`host:port`).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty — a remote backend with no workers
    /// cannot execute anything.
    #[must_use]
    pub fn new(addrs: Vec<String>) -> RemoteBackend {
        assert!(
            !addrs.is_empty(),
            "remote backend needs at least one worker"
        );
        RemoteBackend { addrs, auth: None }
    }

    /// [`RemoteBackend::new`] with frame authentication: every frame
    /// to and from every worker carries a keyed tag under `key`, and
    /// every received frame must verify (the workers must be running
    /// with the same `--auth-key-file`).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    #[must_use]
    pub fn with_auth(addrs: Vec<String>, key: AuthKey) -> RemoteBackend {
        let mut backend = RemoteBackend::new(addrs);
        backend.auth = Some(key);
        backend
    }

    /// The configured worker addresses.
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }
}

/// Every worker must report the same setup result; any divergence is a
/// correctness emergency, not a tolerable degradation.
fn cross_check_ready(readys: &[(String, JobReady)]) -> Result<(), BackendError> {
    let (first_addr, reference) = &readys[0];
    for (addr, ready) in &readys[1..] {
        if ready != reference {
            return Err(BackendError::Protocol(format!(
                "golden-run divergence between workers: {first_addr} reports \
                 digest {:016x} / {} cycles / store {:016x}, {addr} reports \
                 digest {:016x} / {} cycles / store {:016x}",
                reference.golden.digest,
                reference.golden.cycles,
                reference.store_hash,
                ready.golden.digest,
                ready.golden.cycles,
                ready.store_hash,
            )));
        }
    }
    Ok(())
}

/// Reads one handshake frame, mapping a clean close to a typed error —
/// a worker that hangs up during setup is a failed open, not EOF.
fn handshake_frame(
    reader: &mut BufReader<&TcpStream>,
    addr: &str,
    auth: Option<&ConnectionAuth>,
) -> Result<Vec<u8>, BackendError> {
    read_frame_verified(reader, auth.map(|a| a.verifier.as_ref()))?.ok_or_else(|| {
        BackendError::Disconnected {
            worker: addr.to_owned(),
            detail: "connection closed during the setup handshake".to_owned(),
        }
    })
}

/// One worker's completed setup handshake: its live connection plus
/// what it reported.
struct OpenedWorker {
    stream: TcpStream,
    auth: Option<Arc<ConnectionAuth>>,
    ready: JobReady,
    source: StoreSource,
}

/// Runs the full setup handshake against one worker.
fn open_worker(
    addr: &str,
    setup_frame: &[u8],
    store_frame: Option<&[u8]>,
    key: Option<AuthKey>,
) -> Result<OpenedWorker, BackendError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| BackendError::Io(format!("connect {addr}: {e}")))?;
    // Event frames are tiny; don't let Nagle batch them up.
    let _ = stream.set_nodelay(true);
    let auth = key.map(|k| Arc::new(ConnectionAuth::client(k)));
    let signer = auth.as_ref().map(|a| a.signer.as_ref());
    let mut w = BufWriter::new(&stream);
    write_frame_signed(&mut w, setup_frame, signer)?;
    w.flush().map_err(BackendError::from)?;

    let mut r = BufReader::new(&stream);
    let reply = handshake_frame(&mut r, addr, auth.as_deref())?;
    let source = match ServerMessage::from_wire(&reply)? {
        ServerMessage::StoreHave { .. } => StoreSource::Cached,
        ServerMessage::StoreNeed { .. } => match store_frame {
            Some(frame) => {
                write_frame_signed(&mut w, frame, signer)?;
                w.flush().map_err(BackendError::from)?;
                StoreSource::Shipped
            }
            // Delegated mode: the worker is running the golden pass.
            None => StoreSource::GoldenRun,
        },
        ServerMessage::Error(msg) => return Err(crate::protocol::remote_error(msg)),
        other => {
            return Err(BackendError::Protocol(format!(
                "worker {addr} answered setup with {other:?} instead of HAVE/NEED"
            )))
        }
    };
    let reply = handshake_frame(&mut r, addr, auth.as_deref())?;
    let ready = match ServerMessage::from_wire(&reply)? {
        ServerMessage::Ready(ready) => ready,
        ServerMessage::Error(msg) => return Err(crate::protocol::remote_error(msg)),
        other => {
            return Err(BackendError::Protocol(format!(
                "worker {addr} answered setup with {other:?} instead of JOB_READY"
            )))
        }
    };
    // The server sends nothing after JOB_READY until our next batch
    // frame, so dropping the BufReader here cannot strand reply bytes.
    drop(r);
    drop(w);
    Ok(OpenedWorker {
        stream,
        auth,
        ready,
        source,
    })
}

impl CampaignBackend for RemoteBackend {
    fn workers(&self) -> usize {
        self.addrs.len()
    }

    fn open(&self, spec: JobSpec) -> Result<OpenedJob, BackendError> {
        // Serialize the setup (and, in shipped mode, the store) once;
        // every worker receives the identical bytes.
        let (mode, store_frame, expected) = match &spec.golden {
            GoldenSpec::Shipped {
                store,
                golden,
                cycle_budget,
                ..
            } => {
                let frame = encode_store_data(store);
                let hash = store_frame_hash(&frame);
                let expected = JobReady {
                    store_hash: hash,
                    golden: *golden,
                    checkpoints: store.len() as u64,
                    // Shipped mode: the driver built any prune map
                    // alongside the store; workers have nothing to add.
                    prune: None,
                };
                (
                    SetupMode::Shipped {
                        store_hash: hash,
                        golden: *golden,
                        cycle_budget: *cycle_budget,
                    },
                    Some(Arc::new(frame)),
                    Some(expected),
                )
            }
            GoldenSpec::Delegated {
                checkpoint_interval,
            } => (
                SetupMode::Delegated {
                    checkpoint_interval: *checkpoint_interval,
                },
                None,
                None,
            ),
        };
        let setup_frame = Arc::new(
            JobSetup {
                machine: spec.machine,
                program: spec.program,
                instr_budget: spec.instr_budget,
                fault_model: spec.fault_model,
                prune: spec.prune,
                mode,
            }
            .to_wire(),
        );

        // N workers handshake — and, in delegated mode, execute their
        // golden passes — in parallel.
        let handles: Vec<_> = self
            .addrs
            .iter()
            .map(|addr| {
                let addr = addr.clone();
                let setup_frame = Arc::clone(&setup_frame);
                let store_frame = store_frame.clone();
                let key = self.auth;
                std::thread::spawn(move || {
                    open_worker(
                        &addr,
                        &setup_frame,
                        store_frame.as_deref().map(Vec::as_slice),
                        key,
                    )
                })
            })
            .collect();
        let mut workers = Vec::with_capacity(self.addrs.len());
        let mut readys = Vec::with_capacity(self.addrs.len());
        let mut provisioning = Vec::with_capacity(self.addrs.len());
        for (handle, addr) in handles.into_iter().zip(&self.addrs) {
            let opened = handle.join().expect("handshake thread panicked")?;
            workers.push(RemoteWorker {
                addr: addr.clone(),
                stream: Some(opened.stream),
                auth: opened.auth,
            });
            readys.push((addr.clone(), opened.ready));
            provisioning.push(WorkerProvision {
                worker: addr.clone(),
                source: opened.source,
            });
        }
        cross_check_ready(&readys)?;
        // Cross-check passed: every worker reported this identical
        // ready, prune map included — adopting worker 0's is adopting
        // all of them.
        let ready = readys[0].1.clone();
        if let Some(expected) = expected {
            if ready != expected {
                return Err(BackendError::Protocol(format!(
                    "workers acknowledged store {:016x} / digest {:016x}, driver shipped \
                     store {:016x} / digest {:016x}",
                    ready.store_hash,
                    ready.golden.digest,
                    expected.store_hash,
                    expected.golden.digest,
                )));
            }
        }
        Ok(OpenedJob {
            session: Box::new(RemoteSession {
                workers: Arc::new(Mutex::new(workers)),
                log: Arc::new(Mutex::new(Vec::new())),
                batch: 0,
            }),
            golden: ready.golden,
            checkpoints: usize::try_from(ready.checkpoints).unwrap_or(usize::MAX),
            provisioning,
            prune: ready.prune.map(Arc::new),
        })
    }
}

struct RemoteWorker {
    addr: String,
    /// `None` once the connection died; the slot stays so worker
    /// indices remain stable across batches.
    stream: Option<TcpStream>,
    /// This connection's frame-auth state (sequence counters live for
    /// the connection's whole life, shared between the dispatching
    /// writer and the draining reader thread). `None` on a plain
    /// backend.
    auth: Option<Arc<ConnectionAuth>>,
}

struct RemoteSession {
    workers: Arc<Mutex<Vec<RemoteWorker>>>,
    log: Arc<Mutex<Vec<DispatchRecord>>>,
    batch: u64,
}

impl CampaignSession for RemoteSession {
    fn submit(&mut self, trials: &[Trial]) -> Result<TrialStream, BackendError> {
        let batch = self.batch;
        self.batch += 1;
        let (tx, rx) = mpsc::channel();
        let workers = Arc::clone(&self.workers);
        let log = Arc::clone(&self.log);
        let trials = trials.to_vec();
        // The supervisor owns the whole batch: it dispatches shards,
        // re-queues the unacknowledged trials of dead workers, and
        // terminates the stream when every trial is accounted for. The
        // driver just drains events.
        let supervisor = std::thread::spawn(move || {
            supervise_batch(&workers, &log, batch, trials, &tx);
        });
        Ok(TrialStream::new(rx, vec![supervisor]))
    }

    fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.log.lock().expect("dispatch log lock").clone()
    }
}

/// What one shard's reader observed.
enum ShardFate {
    /// Every trial acknowledged, DONE checked out.
    Clean,
    /// The driver dropped the stream; stop everything quietly.
    ConsumerGone,
    /// The connection died; `leftover` never got an event and must be
    /// re-dispatched.
    Dead {
        leftover: Vec<Trial>,
        error: BackendError,
    },
    /// A non-retryable failure (worker-reported error, protocol or
    /// codec violation).
    Fatal(BackendError),
}

/// Dispatch/re-dispatch loop for one batch.
fn supervise_batch(
    workers: &Mutex<Vec<RemoteWorker>>,
    log: &Mutex<Vec<DispatchRecord>>,
    batch: u64,
    mut pending: Vec<Trial>,
    tx: &mpsc::Sender<Result<TrialEvent, BackendError>>,
) {
    let mut redispatched = false;
    let mut last_disconnect: Option<BackendError> = None;
    while !pending.is_empty() {
        // Round: write one shard per live worker, remembering shards
        // whose write already failed (those re-queue immediately).
        let mut round = Vec::new();
        let mut deferred: Vec<Trial> = Vec::new();
        {
            let mut ws = workers.lock().expect("workers lock");
            let live: Vec<usize> = ws
                .iter()
                .enumerate()
                .filter(|(_, w)| w.stream.is_some())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                let err = last_disconnect
                    .take()
                    .unwrap_or_else(|| BackendError::Disconnected {
                        worker: "all".to_owned(),
                        detail: "no live worker remains to dispatch trials to".to_owned(),
                    });
                let _ = tx.send(Err(err));
                return;
            }
            for (k, shard) in shard_trials(&pending, live.len()).into_iter().enumerate() {
                if shard.is_empty() {
                    continue;
                }
                let worker = &mut ws[live[k]];
                let frame = encode_trial_batch(&shard);
                let dispatched = {
                    let stream = worker.stream.as_ref().expect("live worker");
                    let mut w = BufWriter::new(stream);
                    write_frame_signed(
                        &mut w,
                        &frame,
                        worker.auth.as_ref().map(|a| a.signer.as_ref()),
                    )
                    .and_then(|()| w.flush().map_err(BackendError::from))
                    .and_then(|()| {
                        stream
                            .try_clone()
                            .map_err(|e| BackendError::Io(format!("clone stream: {e}")))
                    })
                };
                match dispatched {
                    Ok(reader) => {
                        log.lock().expect("dispatch log lock").push(DispatchRecord {
                            batch,
                            worker: worker.addr.clone(),
                            trials: shard.len() as u64,
                            redispatched,
                        });
                        round.push((
                            live[k],
                            worker.addr.clone(),
                            shard,
                            reader,
                            worker.auth.clone(),
                        ));
                    }
                    Err(e) => {
                        last_disconnect = Some(BackendError::Disconnected {
                            worker: worker.addr.clone(),
                            detail: e.to_string(),
                        });
                        worker.stream = None;
                        deferred.extend(shard);
                    }
                }
            }
        }

        // Drain every dispatched shard concurrently; join the round
        // before deciding on re-dispatch so survivors are never written
        // to while their reader is mid-stream.
        let handles: Vec<_> = round
            .into_iter()
            .map(|(wi, addr, shard, reader, auth)| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    (wi, drain_shard(reader, &addr, shard, auth.as_deref(), &tx))
                })
            })
            .collect();
        let mut fatal: Option<BackendError> = None;
        let mut consumer_gone = false;
        for handle in handles {
            let (wi, fate) = match handle.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            match fate {
                ShardFate::Clean => {}
                ShardFate::ConsumerGone => consumer_gone = true,
                ShardFate::Dead { leftover, error } => {
                    workers.lock().expect("workers lock")[wi].stream = None;
                    last_disconnect = Some(error);
                    deferred.extend(leftover);
                }
                ShardFate::Fatal(e) => fatal = fatal.or(Some(e)),
            }
        }
        if consumer_gone {
            return;
        }
        if let Some(e) = fatal {
            let _ = tx.send(Err(e));
            return;
        }
        pending = deferred;
        redispatched = true;
    }
}

/// Forwards one worker's event stream for one shard into `tx`,
/// tracking which trials the worker acknowledged so a dead connection
/// can hand the remainder back for re-dispatch.
fn drain_shard(
    stream: TcpStream,
    addr: &str,
    shard: Vec<Trial>,
    auth: Option<&ConnectionAuth>,
    tx: &mpsc::Sender<Result<TrialEvent, BackendError>>,
) -> ShardFate {
    let mut outstanding: HashMap<u64, usize> = shard
        .iter()
        .enumerate()
        .map(|(p, t)| (t.index, p))
        .collect();
    let disconnected = |outstanding: &HashMap<u64, usize>, detail: String| {
        // Re-queue in shard (cycle-sorted) order: determinism does not
        // need it, but it keeps re-dispatched shards as cheap to
        // execute as the originals.
        let mut positions: Vec<usize> = outstanding.values().copied().collect();
        positions.sort_unstable();
        ShardFate::Dead {
            leftover: positions.into_iter().map(|p| shard[p]).collect(),
            error: BackendError::Disconnected {
                worker: addr.to_owned(),
                detail,
            },
        }
    };
    let mut reader = BufReader::new(stream);
    let expected = shard.len() as u64;
    let mut seen = 0u64;
    loop {
        let payload = match read_frame_verified(&mut reader, auth.map(|a| a.verifier.as_ref())) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return disconnected(
                    &outstanding,
                    "worker closed the connection mid-batch".to_owned(),
                )
            }
            // Transport failures — including a stream truncated inside
            // a frame — are connection death: typed, retryable.
            Err(BackendError::Io(detail)) => return disconnected(&outstanding, detail),
            Err(e) => return ShardFate::Fatal(e),
        };
        match ServerMessage::from_wire(&payload) {
            Ok(ServerMessage::Event(ev)) => {
                if outstanding.remove(&ev.index).is_none() {
                    return ShardFate::Fatal(BackendError::Protocol(format!(
                        "worker {addr} sent an event for trial {} it was never assigned \
                         (or sent it twice)",
                        ev.index
                    )));
                }
                seen += 1;
                if tx.send(Ok(ev)).is_err() {
                    return ShardFate::ConsumerGone;
                }
            }
            Ok(ServerMessage::Done { events }) => {
                if events != seen || seen != expected {
                    return ShardFate::Fatal(BackendError::Protocol(format!(
                        "worker {addr} reported {events} events, streamed {seen}, \
                         expected {expected}"
                    )));
                }
                return ShardFate::Clean;
            }
            Ok(ServerMessage::Error(msg)) => {
                return ShardFate::Fatal(crate::protocol::remote_error(msg))
            }
            Ok(other) => {
                return ShardFate::Fatal(BackendError::Protocol(format!(
                    "worker {addr} sent {other:?} mid-batch"
                )))
            }
            Err(e) => return ShardFate::Fatal(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_sim::GoldenRun;

    fn ready(digest: u64) -> JobReady {
        JobReady {
            store_hash: 0xA1,
            golden: GoldenRun {
                cycles: 1000,
                committed: 900,
                digest,
            },
            checkpoints: 4,
            prune: None,
        }
    }

    #[test]
    fn cross_check_accepts_agreement_and_rejects_divergence() {
        let agree = vec![
            ("a:1".to_owned(), ready(7)),
            ("b:2".to_owned(), ready(7)),
            ("c:3".to_owned(), ready(7)),
        ];
        assert!(cross_check_ready(&agree).is_ok());

        let diverge = vec![("a:1".to_owned(), ready(7)), ("b:2".to_owned(), ready(8))];
        let err = cross_check_ready(&diverge).unwrap_err();
        assert!(
            matches!(&err, BackendError::Protocol(msg) if msg.contains("divergence")),
            "{err}"
        );
    }
}
