//! Bounded worker-side checkpoint-store cache.
//!
//! Re-shipping a multi-megabyte [`CheckpointStore`] to every worker on
//! every campaign is the single biggest waste on a real network: the
//! store is a pure function of `(machine, program, instruction budget,
//! checkpoint interval)`, and a validation sweep re-runs the same four
//! programs per invocation. The service therefore keys every job by a
//! 64-bit content hash ([`avf_isa::wire::content_hash64`]) and a worker
//! answers the `JOB_SETUP` handshake with `HAVE` (skip the bytes / the
//! golden re-run entirely) or `NEED`.
//!
//! The cache is bounded both by entry count and by total serialized
//! bytes, evicting least-recently-used entries first, so a long-lived
//! `serve` process cannot grow without limit no matter how many
//! distinct campaigns pass through it. One cache is shared by every
//! connection of a server (`Arc` + mutex — entries hold `Arc`s, so a
//! hit never copies blob bytes under the lock).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use avf_sim::{CheckpointStore, DecodedCheckpoints, GoldenRun, PruneEvidence};

/// Default entry bound of a server's cache.
pub const DEFAULT_CACHE_ENTRIES: usize = 16;

/// Default byte bound of a server's cache (serialized store bytes).
pub const DEFAULT_CACHE_BYTES: usize = 512 << 20;

/// One cached job setup: the checkpoint store, the golden run it was
/// captured from, and the *decoded* snapshots — so a cache hit pays
/// neither the golden pass nor the per-campaign `decode_all`.
#[derive(Clone)]
pub struct CacheEntry {
    /// Serialized fault-free checkpoints.
    pub store: Arc<CheckpointStore>,
    /// The same checkpoints decoded once at insertion; every later
    /// session on this worker restores from these by deep clone.
    pub decoded: Arc<DecodedCheckpoints>,
    /// The golden run the store belongs to.
    pub golden: GoldenRun,
    /// Fingerprint of the machine/program pair the snapshots were
    /// decoded against ([`crate::protocol::geometry_fingerprint`]).
    /// Decoded snapshots index machine-shaped structures directly, so
    /// serving them to a job with different geometry would trade a
    /// typed decode error for an out-of-bounds panic — a lookup whose
    /// fingerprint disagrees is answered as a miss instead.
    pub geometry: u64,
    /// Per-cycle ACE evidence captured during the golden pass, when the
    /// pass ran instrumented (a pruning delegated job). Evidence is
    /// fault-model independent — the model only gates which *strata*
    /// the classifier derives from it — so one capture serves trap and
    /// replay campaigns alike, matching the model-free cache key.
    /// `None` when the golden pass ran uninstrumented; a later pruning
    /// session regenerates it and refreshes the entry.
    pub evidence: Option<Arc<PruneEvidence>>,
}

impl CacheEntry {
    /// Bytes this entry is charged against the cache's byte bound: the
    /// serialized store plus an equal estimate for the decoded
    /// snapshots it pins (a decoded checkpoint materializes the same
    /// state the blob serializes, so the serialized size is the right
    /// order of magnitude — the bound must track what the worker
    /// actually holds resident, not just the wire bytes).
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.store.total_bytes() * 2
    }
}

/// Cache observability counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to respect the bounds.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Bytes currently charged against the bound
    /// ([`CacheEntry::footprint`]: serialized store plus the
    /// decoded-snapshot estimate).
    pub bytes: usize,
}

struct Inner {
    /// `hash -> (entry, recency stamp)`.
    map: HashMap<u64, (CacheEntry, u64)>,
    /// Monotonic use counter backing the LRU order.
    clock: u64,
    bytes: usize,
    max_entries: usize,
    max_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU of checkpoint stores keyed by content hash, shared by
/// every connection of one server.
pub struct StoreCache {
    inner: Mutex<Inner>,
}

impl StoreCache {
    /// A cache bounded by `max_entries` entries and `max_bytes` total
    /// serialized store bytes (both clamped to at least one entry's
    /// worth so a cache can never refuse everything).
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> StoreCache {
        StoreCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
                max_entries: max_entries.max(1),
                max_bytes,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// A default-bounded cache behind the `Arc` the server clones per
    /// connection.
    #[must_use]
    pub fn shared() -> Arc<StoreCache> {
        Arc::new(StoreCache::new(DEFAULT_CACHE_ENTRIES, DEFAULT_CACHE_BYTES))
    }

    /// Looks `hash` up, refreshing its recency. Counts a hit or miss.
    /// An entry whose geometry fingerprint disagrees with `geometry`
    /// (a key collision across machine/program pairs) is a miss: its
    /// decoded snapshots must not be served to this job.
    #[must_use]
    pub fn get(&self, hash: u64, geometry: u64) -> Option<CacheEntry> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&hash) {
            Some((entry, stamp)) if entry.geometry == geometry => {
                *stamp = clock;
                let entry = entry.clone();
                inner.hits += 1;
                Some(entry)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `hash`, evicting least-recently-used
    /// entries until both bounds hold. An entry larger than the byte
    /// bound is still admitted alone — the handshake already paid for
    /// it, so refusing would only force an immediate re-ship.
    pub fn insert(&self, hash: u64, entry: CacheEntry) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        let size = entry.footprint();
        if let Some((old, _)) = inner.map.remove(&hash) {
            inner.bytes -= old.footprint();
        }
        inner.map.insert(hash, (entry, clock));
        inner.bytes += size;
        while inner.map.len() > inner.max_entries
            || (inner.bytes > inner.max_bytes && inner.map.len() > 1)
        {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&h, _)| h)
                .expect("non-empty map");
            if lru == hash && inner.map.len() == 1 {
                break;
            }
            let (evicted, _) = inner.map.remove(&lru).expect("lru key present");
            inner.bytes -= evicted.footprint();
            inner.evictions += 1;
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::geometry_fingerprint;
    use avf_sim::{golden_run_checkpointed, MachineConfig};

    const GEO: u64 = 0xFEED;

    fn entry(seed: u64) -> CacheEntry {
        // Distinct stores via distinct checkpoint intervals.
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let (golden, store) = golden_run_checkpointed(&machine, &program, 400, 50 + seed);
        let decoded = store.decode_all(&machine, &program).expect("own store");
        CacheEntry {
            store: Arc::new(store),
            decoded: Arc::new(decoded),
            golden,
            geometry: GEO,
            evidence: None,
        }
    }

    #[test]
    fn hits_refresh_recency_and_bounds_evict_lru() {
        let cache = StoreCache::new(2, usize::MAX);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        assert!(cache.get(1, GEO).is_some(), "warm entry");
        // Inserting a third must evict the least recently used: 2.
        cache.insert(3, entry(3));
        assert!(cache.get(2, GEO).is_none(), "LRU evicted");
        assert!(cache.get(1, GEO).is_some() && cache.get(3, GEO).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn byte_bound_evicts_but_never_refuses_the_newest() {
        let e = entry(0);
        let size = e.store.total_bytes();
        assert!(size > 0);
        // Bound below one store: the newest entry is still admitted.
        let cache = StoreCache::new(8, size / 2);
        cache.insert(1, e.clone());
        assert!(cache.get(1, GEO).is_some(), "oversize entry admitted alone");
        // A second insert evicts the first to respect the bound.
        cache.insert(2, e);
        assert!(cache.get(1, GEO).is_none());
        assert!(cache.get(2, GEO).is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn reinserting_the_same_hash_does_not_double_count_bytes() {
        let cache = StoreCache::new(4, usize::MAX);
        let e = entry(0);
        let footprint = e.footprint();
        assert!(
            footprint > e.store.total_bytes(),
            "the decoded snapshots must be charged too"
        );
        cache.insert(7, e.clone());
        cache.insert(7, e);
        assert_eq!(cache.stats().bytes, footprint);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn hit_hands_back_the_decoded_snapshots_without_copying() {
        let cache = StoreCache::new(4, usize::MAX);
        let e = entry(0);
        cache.insert(9, e.clone());
        let hit = cache.get(9, GEO).expect("hit");
        assert!(
            Arc::ptr_eq(&hit.decoded, &e.decoded),
            "a hit shares the decoded snapshots, it does not re-decode"
        );
    }

    #[test]
    fn geometry_mismatch_is_a_miss_not_a_wrong_answer() {
        let cache = StoreCache::new(4, usize::MAX);
        cache.insert(5, entry(0));
        // Same cache key, different machine/program fingerprint: the
        // decoded snapshots must not be served.
        assert!(cache.get(5, GEO ^ 1).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.get(5, GEO).is_some(), "entry itself is intact");
    }

    #[test]
    fn fingerprint_tracks_machine_and_program() {
        let base = MachineConfig::baseline();
        let a = MachineConfig::config_a();
        let p1 = avf_workloads::testkit::idle_loop();
        let p2 = avf_workloads::testkit::register_chain();
        assert_eq!(
            geometry_fingerprint(&base, &p1),
            geometry_fingerprint(&base, &p1)
        );
        assert_ne!(
            geometry_fingerprint(&base, &p1),
            geometry_fingerprint(&a, &p1)
        );
        assert_ne!(
            geometry_fingerprint(&base, &p1),
            geometry_fingerprint(&base, &p2)
        );
    }
}
