//! # avf-service
//!
//! The wire-native campaign service: everything needed to run
//! fault-injection campaigns *somewhere else*.
//!
//! The campaign driver in `avf-inject` speaks the [`CampaignBackend`]
//! protocol — open a job, submit trial batches, drain a stream of
//! per-trial outcomes. This crate carries that protocol across a
//! socket:
//!
//! * [`frame`] — length-prefixed framing with an allocation-bounding
//!   size limit, plus a count/time-window [`frame::FrameBatcher`] so
//!   the event hot path does not pay one syscall per 16-byte frame;
//! * [`protocol`] — the session schema (job setup → store handshake →
//!   batches → streamed events), every payload wrapped in the
//!   `avf_isa::wire` magic + version envelope so stale or foreign
//!   peers fail typed;
//! * [`cache`] — the bounded worker-side LRU of checkpoint stores
//!   keyed by content hash, behind the `HAVE`/`NEED` handshake that
//!   keeps identical stores from ever being re-shipped;
//! * [`serve`] / [`spawn_local`] — the long-running job server
//!   (`avf-stressmark serve`), a thin wire adapter over the same
//!   `LocalBackend` the in-process path uses — including worker-side
//!   golden runs, so N workers warm a campaign up in parallel while
//!   the driver simulates nothing;
//! * [`RemoteBackend`] — the client, fanning each batch's cycle-sorted
//!   shards across one or more workers, merging their event streams,
//!   and **re-dispatching** the unacknowledged trials of any worker
//!   whose connection dies mid-batch onto the survivors;
//! * [`auth`] — keyed-hash (SipHash-2-4) frame authentication under a
//!   shared `--auth-key-file` key: per-connection, per-direction
//!   sequence-numbered tags reject tampered, replayed, reflected, and
//!   unauthenticated frames with a typed error, closing the
//!   trusted-peers gap recorded since PR 3;
//! * [`metrics`] — a plaintext `GET /metrics` + `GET /healthz`
//!   endpoint (workers expose their [`StoreCache`] and session
//!   counters; the broker in `avf-broker` exposes queue depths and
//!   worker liveness), scrapable with `curl`/`nc`.
//!
//! Determinism is the design invariant: with a fixed seed, a campaign
//! over `RemoteBackend` produces a [`CampaignReport`] identical to the
//! local run — same outcome counts, intervals, batch trajectory, and
//! stop reason — because samples are derived purely from `(seed,
//! batch, index)` and aggregation commutes. That also makes worker
//! failure recoverable without bias: a re-executed trial yields the
//! identical outcome wherever it runs, so a campaign that lost a
//! worker mid-batch still reports bit-identically to the fault-free
//! run. The loopback and resilience test suites assert exactly that,
//! and everything here is plain `std::net` (no async runtime), keeping
//! the fully-offline vendored build intact.
//!
//! [`CampaignBackend`]: avf_inject::CampaignBackend
//! [`CampaignReport`]: avf_inject::CampaignReport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod cache;
pub mod eval;
pub mod frame;
pub mod metrics;
pub mod protocol;
mod remote;
mod server;

pub use auth::{AuthKey, ConnectionAuth};
pub use cache::{CacheStats, StoreCache};
pub use eval::{
    evaluate_genome, genome_key, target_params, DistinctCounter, EvalBatch, EvalCache,
    EvalCacheStats, EvalContext, EvalFleet, EvalReply, EvalScore, RemoteEvaluator,
};
pub use metrics::{spawn_metrics, ServeStats};
pub use remote::RemoteBackend;
pub use server::{serve, spawn_local, ServeOptions};
