//! # avf-service
//!
//! The wire-native campaign service: everything needed to run
//! fault-injection campaigns *somewhere else*.
//!
//! The campaign driver in `avf-inject` speaks the [`CampaignBackend`]
//! protocol — open a job, submit trial batches, drain a stream of
//! per-trial outcomes. This crate carries that protocol across a
//! socket:
//!
//! * [`frame`] — length-prefixed framing with an allocation-bounding
//!   size limit;
//! * [`protocol`] — the session schema (job setup → batches → streamed
//!   events), every payload wrapped in the `avf_isa::wire` magic +
//!   version envelope so stale or foreign peers fail typed;
//! * [`serve`] / [`spawn_local`] — the long-running job server
//!   (`avf-stressmark serve`), a thin wire adapter over the same
//!   `LocalBackend` the in-process path uses;
//! * [`RemoteBackend`] — the client, fanning each batch's cycle-sorted
//!   shards across one or more workers and merging their event streams.
//!
//! Determinism is the design invariant: with a fixed seed, a campaign
//! over `RemoteBackend` produces a [`CampaignReport`] identical to the
//! local run — same outcome counts, intervals, batch trajectory, and
//! stop reason — because samples are derived purely from `(seed,
//! batch, index)` and aggregation commutes. The loopback test suite
//! asserts exactly that, and everything here is plain `std::net` (no
//! async runtime), keeping the fully-offline vendored build intact.
//!
//! [`CampaignBackend`]: avf_inject::CampaignBackend
//! [`CampaignReport`]: avf_inject::CampaignReport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod protocol;
mod remote;
mod server;

pub use remote::RemoteBackend;
pub use server::{serve, spawn_local, ServeOptions};
