//! Keyed-hash frame authentication.
//!
//! The service's recorded security gap (open since PR 3): any peer
//! that can reach a worker's port can submit jobs or forge trial
//! events. The container is fully offline — no TLS stack, no crypto
//! crates — so transport security is a shared-key MAC that fits the
//! hand-rolled wire stack: every frame on an authenticated connection
//! carries a SipHash-2-4 tag over `direction || sequence || payload`
//! under a 128-bit key both ends load from `--auth-key-file`.
//!
//! Three properties the tag construction buys:
//!
//! * **Tamper rejection** — the tag covers every payload byte; a
//!   flipped bit fails verification with a typed
//!   [`BackendError::Auth`], never a silent default.
//! * **Replay rejection** — each direction of a connection numbers its
//!   frames from 0 and the verifier's counter advances in lock-step,
//!   so a byte-identical re-send (or a reordering) verifies against
//!   the *wrong* sequence number and is rejected.
//! * **Reflection rejection** — the direction byte differs between
//!   client→server and server→client, so an attacker echoing a peer's
//!   own frames back at it fails the tag check.
//!
//! **Framing is deadlock-free by construction.** An authenticated
//! frame's length header covers `payload + 8-byte tag` — the tag is
//! the *last eight bytes inside* the announced length, not extra bytes
//! after it. A plain peer talking to a keyed peer (in either
//! direction) therefore always reads a complete frame and fails
//! *identifiably*: the keyed reader sees a tag mismatch
//! ([`BackendError::Auth`]), the plain reader sees eight trailing
//! bytes after its payload decode ([`WireError::Invalid`]) — neither
//! side ever blocks waiting for bytes the other will not send.
//!
//! SipHash-2-4 is the right primitive for this setting: it is a
//! *keyed* PRF designed for exactly this short-MAC role (unlike the
//! wire codec's FNV content hash, which is unkeyed and forgeable), it
//! is implementable in ~60 lines with no dependencies, and its 64-bit
//! tags are far beyond online forgery reach for a fleet-internal
//! control channel.
//!
//! [`WireError::Invalid`]: avf_isa::wire::WireError::Invalid

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use avf_inject::BackendError;

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};

/// Bytes of an authentication tag (a SipHash-2-4 output).
pub const AUTH_TAG_BYTES: usize = 8;

/// Frame direction: driver/broker-client → worker/broker.
pub const DIR_CLIENT_TO_SERVER: u8 = 0;
/// Frame direction: worker/broker → driver/broker-client.
pub const DIR_SERVER_TO_CLIENT: u8 = 1;

// ---------------------------------------------------------------- SipHash-2-4

/// Incremental SipHash-2-4 state (Aumasson & Bernstein), so tags over
/// `prefix || payload` never materialize the concatenation.
struct SipState {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl SipState {
    fn new(key: &[u8; 16]) -> SipState {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8"));
        SipState {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        self.round();
        self.round();
        self.v0 ^= m;
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == 8 {
                let m = u64::from_le_bytes(self.buf);
                self.compress(m);
                self.buf_len = 0;
            }
        }
        while bytes.len() >= 8 {
            let m = u64::from_le_bytes(bytes[..8].try_into().expect("8"));
            self.compress(m);
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            self.buf[..bytes.len()].copy_from_slice(bytes);
            self.buf_len = bytes.len();
        }
    }

    fn finish(mut self) -> u64 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = self.total as u8;
        let m = u64::from_le_bytes(last);
        self.compress(m);
        self.v2 ^= 0xFF;
        self.round();
        self.round();
        self.round();
        self.round();
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

/// SipHash-2-4 of `data` under `key` (the full-input convenience form;
/// the framing path uses the incremental state directly).
#[must_use]
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let mut s = SipState::new(key);
    s.update(data);
    s.finish()
}

// ----------------------------------------------------------------------- keys

/// A 128-bit shared frame-authentication key.
///
/// On disk the key is 32 hex characters (16 bytes), one line, as
/// produced by e.g. `od -An -tx1 -N16 /dev/urandom | tr -d ' \n'`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey([u8; 16]);

impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through debug output or logs.
        f.write_str("AuthKey(..)")
    }
}

impl AuthKey {
    /// A key from raw bytes (tests and derived keys).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 16]) -> AuthKey {
        AuthKey(bytes)
    }

    /// Parses the on-disk form: exactly 32 hex characters (surrounding
    /// whitespace tolerated).
    ///
    /// # Errors
    ///
    /// Returns a description of what is wrong with the key material.
    pub fn from_hex(s: &str) -> Result<AuthKey, String> {
        let s = s.trim();
        if s.len() != 32 {
            return Err(format!(
                "auth key must be exactly 32 hex characters (128 bits), got {}",
                s.len()
            ));
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let pair = std::str::from_utf8(chunk).map_err(|_| "auth key is not ASCII hex")?;
            bytes[i] = u8::from_str_radix(pair, 16)
                .map_err(|_| format!("auth key contains a non-hex character in `{pair}`"))?;
        }
        Ok(AuthKey(bytes))
    }

    /// Loads and parses a key file (`--auth-key-file`).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<AuthKey, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read auth key file `{}`: {e}", path.display()))?;
        AuthKey::from_hex(&text).map_err(|e| format!("auth key file `{}`: {e}", path.display()))
    }

    fn tag(&self, dir: u8, seq: u64, payload: &[u8]) -> [u8; 8] {
        let mut s = SipState::new(&self.0);
        s.update(&[dir]);
        s.update(&seq.to_le_bytes());
        s.update(payload);
        s.finish().to_le_bytes()
    }
}

// --------------------------------------------------------- signers/verifiers

/// Produces tags for one direction of one connection. The sequence
/// counter is atomic so a batching writer can be shared across
/// threads; frames are tagged in the order they are written.
pub struct AuthSigner {
    key: AuthKey,
    dir: u8,
    seq: AtomicU64,
}

impl AuthSigner {
    /// A signer for `dir` starting at sequence 0 (a fresh connection).
    #[must_use]
    pub fn new(key: AuthKey, dir: u8) -> AuthSigner {
        AuthSigner {
            key,
            dir,
            seq: AtomicU64::new(0),
        }
    }

    /// Tags `payload` with the next sequence number.
    #[must_use]
    pub fn sign(&self, payload: &[u8]) -> [u8; 8] {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.key.tag(self.dir, seq, payload)
    }
}

/// Verifies tags for one direction of one connection, advancing its
/// own sequence counter in lock-step with the signer's.
pub struct AuthVerifier {
    key: AuthKey,
    dir: u8,
    seq: AtomicU64,
}

impl AuthVerifier {
    /// A verifier for `dir` starting at sequence 0 (a fresh connection).
    #[must_use]
    pub fn new(key: AuthKey, dir: u8) -> AuthVerifier {
        AuthVerifier {
            key,
            dir,
            seq: AtomicU64::new(0),
        }
    }

    /// Checks `tag` over `payload` at the next expected sequence
    /// number.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Auth`] on any mismatch — wrong key,
    /// tampered payload, or a replayed/reordered frame. The counter
    /// advances either way; an auth failure is fatal for the session.
    pub fn verify(&self, payload: &[u8], tag: [u8; 8]) -> Result<(), BackendError> {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let expected = self.key.tag(self.dir, seq, payload);
        // Fold the comparison through XOR so early-exit timing never
        // reveals how much of a guessed tag matched.
        let diff = expected
            .iter()
            .zip(&tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff == 0 {
            Ok(())
        } else {
            Err(BackendError::Auth(format!(
                "tag mismatch on frame {seq}: wrong key, tampered frame, or a \
                 replayed/reordered frame"
            )))
        }
    }
}

/// Both halves of one connection's frame authentication. Each TCP
/// connection gets a fresh pair: per-connection, per-direction
/// sequence spaces are what make replay detection sound. The halves
/// are `Arc`ed so a writer thread (or a [`FrameBatcher`]) and a
/// reader thread can share one connection's state.
///
/// [`FrameBatcher`]: crate::frame::FrameBatcher
pub struct ConnectionAuth {
    /// Tags frames this endpoint writes.
    pub signer: std::sync::Arc<AuthSigner>,
    /// Checks frames this endpoint reads.
    pub verifier: std::sync::Arc<AuthVerifier>,
}

impl ConnectionAuth {
    /// The client (driver / broker-client) end of a connection.
    #[must_use]
    pub fn client(key: AuthKey) -> ConnectionAuth {
        ConnectionAuth {
            signer: std::sync::Arc::new(AuthSigner::new(key, DIR_CLIENT_TO_SERVER)),
            verifier: std::sync::Arc::new(AuthVerifier::new(key, DIR_SERVER_TO_CLIENT)),
        }
    }

    /// The server (worker / broker) end of a connection.
    #[must_use]
    pub fn server(key: AuthKey) -> ConnectionAuth {
        ConnectionAuth {
            signer: std::sync::Arc::new(AuthSigner::new(key, DIR_SERVER_TO_CLIENT)),
            verifier: std::sync::Arc::new(AuthVerifier::new(key, DIR_CLIENT_TO_SERVER)),
        }
    }
}

// -------------------------------------------------------------------- framing

/// [`write_frame`] with an optional signature: when `signer` is set,
/// the frame's length header covers `payload + tag` and the tag is the
/// trailing [`AUTH_TAG_BYTES`] inside it (see the module docs for why
/// this layout can never deadlock a mismatched peer).
///
/// # Errors
///
/// Returns a [`BackendError`] on transport failure or an oversized
/// payload.
pub fn write_frame_signed(
    w: &mut impl Write,
    payload: &[u8],
    signer: Option<&AuthSigner>,
) -> Result<(), BackendError> {
    let Some(signer) = signer else {
        return write_frame(w, payload);
    };
    let framed = payload.len() + AUTH_TAG_BYTES;
    let len = u32::try_from(framed)
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(BackendError::Oversized {
            len: framed as u64,
            max: u64::from(MAX_FRAME_BYTES),
        })?;
    let tag = signer.sign(payload);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&tag)?;
    Ok(())
}

/// [`read_frame`] with an optional verification step: when `verifier`
/// is set, the trailing [`AUTH_TAG_BYTES`] of the frame are checked
/// and stripped before the payload is returned.
///
/// # Errors
///
/// Returns [`BackendError::Auth`] for a frame too short to carry a tag
/// or failing verification, plus every [`read_frame`] error.
pub fn read_frame_verified(
    r: &mut impl Read,
    verifier: Option<&AuthVerifier>,
) -> Result<Option<Vec<u8>>, BackendError> {
    let Some(mut payload) = read_frame(r)? else {
        return Ok(None);
    };
    let Some(verifier) = verifier else {
        return Ok(Some(payload));
    };
    if payload.len() < AUTH_TAG_BYTES {
        return Err(BackendError::Auth(format!(
            "{}-byte frame is too short to carry an auth tag (unauthenticated peer?)",
            payload.len()
        )));
    }
    let body = payload.len() - AUTH_TAG_BYTES;
    let tag: [u8; 8] = payload[body..].try_into().expect("8 tag bytes");
    verifier.verify(&payload[..body], tag)?;
    payload.truncate(body);
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn key() -> AuthKey {
        AuthKey::from_hex("000102030405060708090a0b0c0d0e0f").unwrap()
    }

    fn other_key() -> AuthKey {
        AuthKey::from_hex("f0e0d0c0b0a090807060504030201000").unwrap()
    }

    #[test]
    fn siphash24_matches_the_reference_vector() {
        // The reference test vector from the SipHash paper: key
        // 000102...0f over the message 00 01 02 ... 3e.
        let k: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let msg: Vec<u8> = (0..63u8).collect();
        // Expected final vector (row 63 of vectors_sip64).
        assert_eq!(
            siphash24(&k, &msg).to_le_bytes(),
            [0x72, 0x45, 0x06, 0xeb, 0x4c, 0x32, 0x8a, 0x95]
        );
        // And the empty-message row 0.
        assert_eq!(
            siphash24(&k, b"").to_le_bytes(),
            [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let k = [7u8; 16];
        let msg: Vec<u8> = (0..100u8).collect();
        let mut s = SipState::new(&k);
        s.update(&msg[..1]);
        s.update(&msg[1..9]);
        s.update(&msg[9..40]);
        s.update(&msg[40..]);
        assert_eq!(s.finish(), siphash24(&k, &msg));
    }

    #[test]
    fn key_parsing_accepts_hex_and_rejects_garbage() {
        assert!(AuthKey::from_hex("00112233445566778899aabbccddeeff").is_ok());
        assert!(AuthKey::from_hex(" 00112233445566778899aabbccddeeff\n").is_ok());
        assert!(AuthKey::from_hex("short").is_err());
        assert!(AuthKey::from_hex("zz112233445566778899aabbccddeeff").is_err());
        assert_eq!(
            format!("{:?}", key()),
            "AuthKey(..)",
            "no key material in Debug"
        );
    }

    #[test]
    fn signed_frames_round_trip() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"alpha", Some(&client.signer)).unwrap();
        write_frame_signed(&mut buf, b"", Some(&client.signer)).unwrap();
        write_frame_signed(&mut buf, &[9u8; 500], Some(&client.signer)).unwrap();
        let mut r = Cursor::new(buf);
        let v = Some(server.verifier.as_ref());
        assert_eq!(read_frame_verified(&mut r, v).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame_verified(&mut r, v).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame_verified(&mut r, v).unwrap().unwrap(),
            vec![9u8; 500]
        );
        assert!(read_frame_verified(&mut r, v).unwrap().is_none());
    }

    #[test]
    fn wrong_key_is_a_typed_auth_error() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(other_key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"payload", Some(&client.signer)).unwrap();
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&server.verifier)).unwrap_err();
        assert!(matches!(err, BackendError::Auth(_)), "{err}");
    }

    #[test]
    fn tampered_payload_is_a_typed_auth_error() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"payload", Some(&client.signer)).unwrap();
        buf[5] ^= 0x40; // flip a payload bit under the tag
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&server.verifier)).unwrap_err();
        assert!(matches!(err, BackendError::Auth(_)), "{err}");
    }

    #[test]
    fn replayed_frame_is_a_typed_auth_error() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(key());
        let mut once = Vec::new();
        write_frame_signed(&mut once, b"replay me", Some(&client.signer)).unwrap();
        // The byte-identical frame sent twice: the first verifies, the
        // second hits the advanced sequence counter.
        let mut twice = once.clone();
        twice.extend_from_slice(&once);
        let mut r = Cursor::new(twice);
        let v = Some(server.verifier.as_ref());
        assert_eq!(
            read_frame_verified(&mut r, v).unwrap().unwrap(),
            b"replay me"
        );
        let err = read_frame_verified(&mut r, v).unwrap_err();
        assert!(
            matches!(&err, BackendError::Auth(msg) if msg.contains("replayed")),
            "{err}"
        );
    }

    #[test]
    fn reordered_frames_are_typed_auth_errors() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(key());
        let mut a = Vec::new();
        write_frame_signed(&mut a, b"first", Some(&client.signer)).unwrap();
        let mut b = Vec::new();
        write_frame_signed(&mut b, b"second", Some(&client.signer)).unwrap();
        // Deliver frame 1 before frame 0.
        b.extend_from_slice(&a);
        let err = read_frame_verified(&mut Cursor::new(b), Some(&server.verifier)).unwrap_err();
        assert!(matches!(err, BackendError::Auth(_)), "{err}");
    }

    #[test]
    fn reflected_frames_fail_the_direction_check() {
        // An attacker echoes the client's own frame back at it: the
        // client's verifier expects server→client tags.
        let client = ConnectionAuth::client(key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"echo", Some(&client.signer)).unwrap();
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&client.verifier)).unwrap_err();
        assert!(matches!(err, BackendError::Auth(_)), "{err}");
    }

    #[test]
    fn plain_frame_to_keyed_reader_is_typed_never_a_deadlock() {
        let server = ConnectionAuth::server(key());
        // A short plain frame: under the tag-inside-length layout the
        // keyed reader consumes it fully and rejects it as too short.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hi").unwrap();
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&server.verifier)).unwrap_err();
        assert!(
            matches!(&err, BackendError::Auth(msg) if msg.contains("too short")),
            "{err}"
        );
        // A longer plain frame consumes fully too — its last 8 bytes
        // simply fail the tag check.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[3u8; 64]).unwrap();
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&server.verifier)).unwrap_err();
        assert!(matches!(err, BackendError::Auth(_)), "{err}");
    }

    #[test]
    fn keyed_frame_to_plain_reader_leaves_identifiable_trailing_bytes() {
        // The inverse mismatch: a plain reader reads the whole frame
        // (payload + tag) and its payload decoder reports 8 trailing
        // bytes — a typed WireError, not a hang.
        let client = ConnectionAuth::client(key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"12345", Some(&client.signer)).unwrap();
        let frame = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.len(), 5 + AUTH_TAG_BYTES, "tag inside the length");
        assert_eq!(&frame[..5], b"12345");
    }

    #[test]
    fn truncated_tag_is_transport_truncation() {
        let client = ConnectionAuth::client(key());
        let server = ConnectionAuth::server(key());
        let mut buf = Vec::new();
        write_frame_signed(&mut buf, b"payload", Some(&client.signer)).unwrap();
        buf.truncate(buf.len() - 3); // cut into the tag
        let err = read_frame_verified(&mut Cursor::new(buf), Some(&server.verifier)).unwrap_err();
        // The length header promised tag bytes that never arrive: the
        // frame layer reports truncation before verification begins.
        assert!(matches!(err, BackendError::Io(_)), "{err}");
    }
}
