//! Campaign service message schema on top of [`crate::frame`].
//!
//! One connection carries one campaign session:
//!
//! ```text
//! client → server   JOB_SETUP    (JobSpec: machine, program, checkpoints, budgets)
//! client → server   TRIAL_BATCH  (one adaptive batch of planned trials)
//! server → client   TRIAL_EVENT* (one per trial, streamed as classified)
//! server → client   BATCH_DONE   (event count for the batch, a sanity check)
//! client → server   TRIAL_BATCH  ... (repeat until the driver converges)
//! client closes the connection   (clean end of session)
//! server → client   SERVICE_ERROR (any time: fatal, connection closes)
//! ```
//!
//! Every payload opens with the [`avf_isa::wire`] envelope, so a stale
//! worker build or a foreign peer fails with a typed magic/version
//! error instead of a confusing mid-payload decode failure.

use avf_inject::{BackendError, TrialEvent};
use avf_isa::wire::{kind, WireError, WireReader, WireWriter};

/// One server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMessage {
    /// A classified trial outcome.
    Event(TrialEvent),
    /// The current batch is complete; `events` outcomes were streamed.
    Done {
        /// Number of events the server sent for the batch.
        events: u64,
    },
    /// The server hit a fatal error; the connection is closing.
    Error(String),
}

impl ServerMessage {
    /// Serializes the message to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            ServerMessage::Event(ev) => ev.to_wire(),
            ServerMessage::Done { events } => {
                let mut w = WireWriter::new();
                w.envelope(kind::BATCH_DONE);
                w.u64(*events);
                w.into_bytes()
            }
            ServerMessage::Error(msg) => {
                let mut w = WireWriter::new();
                w.envelope(kind::SERVICE_ERROR);
                w.str(msg);
                w.into_bytes()
            }
        }
    }

    /// Decodes a frame payload written by [`ServerMessage::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// unexpected frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<ServerMessage, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.envelope()? {
            kind::TRIAL_EVENT => ServerMessage::Event(TrialEvent::decode_body(&mut r)?),
            kind::BATCH_DONE => ServerMessage::Done { events: r.u64()? },
            kind::SERVICE_ERROR => ServerMessage::Error(r.str()?),
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::TRIAL_EVENT,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Maps a server-reported [`ServerMessage::Error`] into the backend
/// error the driver surfaces.
#[must_use]
pub fn remote_error(msg: String) -> BackendError {
    BackendError::Remote(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_inject::Outcome;
    use avf_sim::InjectionTarget;

    #[test]
    fn server_messages_round_trip() {
        let msgs = [
            ServerMessage::Event(TrialEvent {
                index: 42,
                target: InjectionTarget::Iq,
                outcome: Outcome::Sdc,
            }),
            ServerMessage::Done { events: 128 },
            ServerMessage::Error("checkpoint store rejected".to_owned()),
        ];
        for msg in msgs {
            assert_eq!(ServerMessage::from_wire(&msg.to_wire()).unwrap(), msg);
        }
    }

    #[test]
    fn foreign_and_stale_payloads_fail_typed() {
        assert!(matches!(
            ServerMessage::from_wire(&[0u8; 16]),
            Err(WireError::BadMagic(_))
        ));
        // A payload from a build speaking a different format version.
        let mut stale = Vec::from(avf_isa::wire::WIRE_MAGIC);
        stale.push(avf_isa::wire::WIRE_VERSION + 3);
        stale.push(kind::BATCH_DONE);
        stale.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            ServerMessage::from_wire(&stale),
            Err(WireError::UnsupportedVersion {
                found: avf_isa::wire::WIRE_VERSION + 3,
                expected: avf_isa::wire::WIRE_VERSION,
            })
        );
        // A client-side frame kind arriving where a server message belongs.
        let batch = avf_inject::encode_trial_batch(&[]);
        assert!(matches!(
            ServerMessage::from_wire(&batch),
            Err(WireError::WrongKind { .. })
        ));
    }
}
