//! Campaign service message schema on top of [`crate::frame`].
//!
//! One connection carries one campaign session:
//!
//! ```text
//! client → server   JOB_SETUP    (machine, program, budget, golden mode + store hash)
//! server → client   STORE_HAVE | STORE_NEED   (checkpoint-store cache handshake)
//! client → server   STORE_DATA   (full store — only after NEED in shipped mode)
//! server → client   JOB_READY    (store hash + golden run + checkpoint count)
//! client → server   TRIAL_BATCH  (one adaptive batch of planned trials)
//! server → client   TRIAL_EVENT* (one per trial, streamed as classified)
//! server → client   BATCH_DONE   (event count for the batch, a sanity check)
//! client → server   TRIAL_BATCH  ... (repeat until the driver converges)
//! client closes the connection   (clean end of session)
//! server → client   SERVICE_ERROR (any time: fatal, connection closes)
//! ```
//!
//! The `JOB_SETUP` frame never carries checkpoint bytes: it names the
//! store by content hash (shipped mode) or by the delegated-job key
//! (worker-side golden run), and the worker answers `HAVE` from its
//! bounded LRU ([`crate::cache::StoreCache`]) or `NEED`. Only a `NEED`
//! in shipped mode moves store bytes; a `NEED` in delegated mode means
//! the worker is executing the golden pass itself. Either way the
//! worker closes setup with `JOB_READY`, and a driver fanning one job
//! across N workers cross-checks that every `JOB_READY` is identical —
//! golden-run divergence between workers is a hard protocol error.
//!
//! Every payload opens with the [`avf_isa::wire`] envelope, so a stale
//! worker build or a foreign peer fails with a typed magic/version
//! error instead of a confusing mid-payload decode failure.

use std::sync::Arc;

use avf_inject::{decode_trial_batch, BackendError, Trial, TrialEvent};
use avf_isa::wire::{content_hash64, kind, WireError, WireReader, WireWriter, ENVELOPE_BYTES};
use avf_isa::Program;
use avf_prune::PruneMap;
use avf_sim::{CheckpointStore, FaultModel, GoldenRun, MachineConfig};

fn encode_golden(w: &mut WireWriter, golden: &GoldenRun) {
    w.u64(golden.cycles);
    w.u64(golden.committed);
    w.u64(golden.digest);
}

fn decode_golden(r: &mut WireReader<'_>) -> Result<GoldenRun, WireError> {
    Ok(GoldenRun {
        cycles: r.u64()?,
        committed: r.u64()?,
        digest: r.u64()?,
    })
}

/// Hash domain of checkpoint-store content (shipped mode).
pub const HASH_DOMAIN_STORE: u8 = 0;

/// Hash domain of delegated-job parameters (worker-side golden runs).
pub const HASH_DOMAIN_DELEGATED_JOB: u8 = 1;

/// Hash domain of a job's machine/program geometry fingerprint (guards
/// the decoded-checkpoint cache against serving snapshots decoded for a
/// different configuration).
pub const HASH_DOMAIN_GEOMETRY: u8 = 2;

/// Hash domain of fitness-evaluation content (wire v7): the evaluation
/// context fingerprint and the genome routing/logging key — the two
/// halves of a worker's [`crate::EvalCache`] key.
pub const HASH_DOMAIN_EVAL: u8 = 3;

/// Fingerprint of the machine/program pair a cached decoded store is
/// only valid for.
#[must_use]
pub fn geometry_fingerprint(machine: &MachineConfig, program: &Program) -> u64 {
    let mut w = WireWriter::new();
    machine.encode(&mut w);
    program.encode(&mut w);
    content_hash64(HASH_DOMAIN_GEOMETRY, &w.into_bytes())
}

/// Golden-run mode of a [`JobSetup`], mirroring
/// [`avf_inject::GoldenSpec`] without the store bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupMode {
    /// The driver holds the store; the worker caches it by content
    /// hash and asks for the bytes only on a miss.
    Shipped {
        /// Content hash of the store's `STORE_DATA` payload.
        store_hash: u64,
        /// The driver's golden run (echoed back in `JOB_READY` so the
        /// cross-check is uniform across modes).
        golden: GoldenRun,
        /// Cycle watchdog budget of every trial.
        cycle_budget: u64,
    },
    /// The worker executes `golden_run_checkpointed` itself.
    Delegated {
        /// Golden-run checkpoint spacing in cycles.
        checkpoint_interval: u64,
    },
}

/// The session-opening frame: everything a worker needs to set a
/// campaign up, minus any checkpoint bytes.
#[derive(Debug, Clone)]
pub struct JobSetup {
    /// Machine configuration the plan was sampled against.
    pub machine: MachineConfig,
    /// Program under injection.
    pub program: Program,
    /// Committed-instruction budget of every trial (and of a delegated
    /// golden run).
    pub instr_budget: u64,
    /// How the worker resolves queueing-structure control/tag flips.
    /// Deliberately *not* part of the store cache key: the golden pass
    /// is fault-free, so trap and replay campaigns over the same
    /// (machine, program, budget, interval) share one checkpoint store.
    pub fault_model: FaultModel,
    /// Whether the campaign samples under pre-campaign site pruning
    /// (wire v5). In delegated mode a pruning worker captures ACE
    /// evidence during its golden pass and ships the classifier's
    /// [`PruneMap`] back in `JOB_READY`; in shipped mode the driver
    /// already holds the map, so the flag changes nothing worker-side.
    /// Not part of the cache key either: the checkpoint stream is
    /// bit-identical with and without evidence capture.
    pub prune: bool,
    /// Golden-run mode.
    pub mode: SetupMode,
}

impl JobSetup {
    /// The cache key this setup resolves to: the store's content hash
    /// in shipped mode, the delegated-job key otherwise.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        match self.mode {
            SetupMode::Shipped { store_hash, .. } => store_hash,
            SetupMode::Delegated {
                checkpoint_interval,
            } => delegated_job_key(
                &self.machine,
                &self.program,
                self.instr_budget,
                checkpoint_interval,
            ),
        }
    }

    /// Serializes the setup to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::JOB_SETUP);
        self.machine.encode(&mut w);
        self.program.encode(&mut w);
        w.u64(self.instr_budget);
        w.u8(self.fault_model.wire_code());
        w.u8(u8::from(self.prune));
        match &self.mode {
            SetupMode::Shipped {
                store_hash,
                golden,
                cycle_budget,
            } => {
                w.u8(0);
                w.u64(*store_hash);
                encode_golden(&mut w, golden);
                w.u64(*cycle_budget);
            }
            SetupMode::Delegated {
                checkpoint_interval,
            } => {
                w.u8(1);
                w.u64(*checkpoint_interval);
            }
        }
        w.into_bytes()
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<JobSetup, WireError> {
        let machine = MachineConfig::decode(r)?;
        let program = Program::decode(r)?;
        let instr_budget = r.u64()?;
        let model_code = r.u8()?;
        let fault_model =
            FaultModel::from_wire_code(model_code).ok_or(WireError::BadTag(model_code))?;
        let prune = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(WireError::BadTag(t)),
        };
        let mode = match r.u8()? {
            0 => SetupMode::Shipped {
                store_hash: r.u64()?,
                golden: decode_golden(r)?,
                cycle_budget: r.u64()?,
            },
            1 => {
                let checkpoint_interval = r.u64()?;
                if checkpoint_interval == 0 {
                    return Err(WireError::Invalid("checkpoint interval must be positive"));
                }
                SetupMode::Delegated {
                    checkpoint_interval,
                }
            }
            t => return Err(WireError::BadTag(t)),
        };
        Ok(JobSetup {
            machine,
            program,
            instr_budget,
            fault_model,
            prune,
            mode,
        })
    }
}

/// The worker's end-of-setup report: which store it is running on and
/// the golden run it resolved (its own measurement in delegated mode,
/// the driver's echo in shipped mode).
///
/// `Eq` is load-bearing: a driver fanning one job over N workers
/// compares their `JobReady`s bit-for-bit, so when workers build prune
/// maps independently the cross-check covers the maps too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReady {
    /// Cache key the worker stored/found the job under.
    pub store_hash: u64,
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Checkpoints in the store.
    pub checkpoints: u64,
    /// The prune map the worker built during a delegated golden pass
    /// with pruning requested (wire v5); `None` otherwise. Masses are
    /// recomputed at decode, never trusted from the wire.
    pub prune: Option<PruneMap>,
}

/// One client-to-server message.
#[derive(Debug, Clone)]
pub enum ClientMessage {
    /// Open a campaign session (boxed: a setup dwarfs the other
    /// variants and would bloat every message otherwise).
    Setup(Box<JobSetup>),
    /// One batch of planned trials.
    Batch(Vec<Trial>),
    /// The checkpoint store, shipped after a `STORE_NEED` reply.
    Store {
        /// Decoded store.
        store: Arc<CheckpointStore>,
        /// Content hash of the payload as it crossed the wire — the
        /// receiver verifies it against the hash announced in setup.
        hash: u64,
    },
}

impl ClientMessage {
    /// Decodes a frame payload written by one of the client-side
    /// encoders ([`JobSetup::to_wire`], [`encode_store_data`],
    /// [`avf_inject::encode_trial_batch`]).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// unexpected frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<ClientMessage, WireError> {
        let mut r = WireReader::new(bytes);
        match r.envelope()? {
            kind::JOB_SETUP => {
                let setup = JobSetup::decode_body(&mut r)?;
                r.finish()?;
                Ok(ClientMessage::Setup(Box::new(setup)))
            }
            kind::TRIAL_BATCH => Ok(ClientMessage::Batch(decode_trial_batch(bytes)?)),
            kind::STORE_DATA => {
                let hash = content_hash64(HASH_DOMAIN_STORE, &bytes[ENVELOPE_BYTES..]);
                let store = CheckpointStore::decode(&mut r)?;
                r.finish()?;
                Ok(ClientMessage::Store {
                    store: Arc::new(store),
                    hash,
                })
            }
            found => Err(WireError::WrongKind {
                found,
                expected: kind::JOB_SETUP,
            }),
        }
    }
}

/// One server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMessage {
    /// Worker already caches the job's store under this key.
    StoreHave {
        /// The cache key (echoed for cross-checking).
        hash: u64,
    },
    /// Worker needs the store (shipped mode: send `STORE_DATA`;
    /// delegated mode: the worker is running the golden pass itself).
    StoreNeed {
        /// The cache key (echoed for cross-checking).
        hash: u64,
    },
    /// Job setup is complete; trial batches may flow.
    Ready(JobReady),
    /// A classified trial outcome.
    Event(TrialEvent),
    /// The current batch is complete; `events` outcomes were streamed.
    Done {
        /// Number of events the server sent for the batch.
        events: u64,
    },
    /// The server hit a fatal error; the connection is closing.
    Error(String),
}

impl ServerMessage {
    /// Serializes the message to an enveloped frame payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            ServerMessage::Event(ev) => ev.to_wire(),
            ServerMessage::StoreHave { hash } => {
                let mut w = WireWriter::new();
                w.envelope(kind::STORE_HAVE);
                w.u64(*hash);
                w.into_bytes()
            }
            ServerMessage::StoreNeed { hash } => {
                let mut w = WireWriter::new();
                w.envelope(kind::STORE_NEED);
                w.u64(*hash);
                w.into_bytes()
            }
            ServerMessage::Ready(ready) => {
                let mut w = WireWriter::new();
                w.envelope(kind::JOB_READY);
                w.u64(ready.store_hash);
                encode_golden(&mut w, &ready.golden);
                w.u64(ready.checkpoints);
                match &ready.prune {
                    None => w.u8(0),
                    Some(map) => {
                        w.u8(1);
                        map.encode(&mut w);
                    }
                }
                w.into_bytes()
            }
            ServerMessage::Done { events } => {
                let mut w = WireWriter::new();
                w.envelope(kind::BATCH_DONE);
                w.u64(*events);
                w.into_bytes()
            }
            ServerMessage::Error(msg) => {
                let mut w = WireWriter::new();
                w.envelope(kind::SERVICE_ERROR);
                w.str(msg);
                w.into_bytes()
            }
        }
    }

    /// Decodes a frame payload written by [`ServerMessage::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or an
    /// unexpected frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<ServerMessage, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.envelope()? {
            kind::TRIAL_EVENT => ServerMessage::Event(TrialEvent::decode_body(&mut r)?),
            kind::STORE_HAVE => ServerMessage::StoreHave { hash: r.u64()? },
            kind::STORE_NEED => ServerMessage::StoreNeed { hash: r.u64()? },
            kind::JOB_READY => {
                let store_hash = r.u64()?;
                let golden = decode_golden(&mut r)?;
                let checkpoints = r.u64()?;
                let prune = match r.u8()? {
                    0 => None,
                    1 => Some(PruneMap::decode(&mut r)?),
                    t => return Err(WireError::BadTag(t)),
                };
                ServerMessage::Ready(JobReady {
                    store_hash,
                    golden,
                    checkpoints,
                    prune,
                })
            }
            kind::BATCH_DONE => ServerMessage::Done { events: r.u64()? },
            kind::SERVICE_ERROR => ServerMessage::Error(r.str()?),
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::TRIAL_EVENT,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Serializes a checkpoint store to a `STORE_DATA` frame payload.
#[must_use]
pub fn encode_store_data(store: &CheckpointStore) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.envelope(kind::STORE_DATA);
    store.encode(&mut w);
    w.into_bytes()
}

/// Content hash of a `STORE_DATA` frame payload — over exactly the
/// bytes after the envelope, so both ends hash the same span without a
/// second serialization pass.
#[must_use]
pub fn store_frame_hash(frame: &[u8]) -> u64 {
    content_hash64(HASH_DOMAIN_STORE, &frame[ENVELOPE_BYTES.min(frame.len())..])
}

/// The cache key of a delegated (worker-side golden run) job: a content
/// hash over the job's defining parameters. Two jobs with the same key
/// provably produce the same store and golden run — the golden pass is
/// a deterministic function of exactly these inputs.
#[must_use]
pub fn delegated_job_key(
    machine: &MachineConfig,
    program: &Program,
    instr_budget: u64,
    checkpoint_interval: u64,
) -> u64 {
    let mut w = WireWriter::new();
    machine.encode(&mut w);
    program.encode(&mut w);
    w.u64(instr_budget);
    w.u64(checkpoint_interval);
    content_hash64(HASH_DOMAIN_DELEGATED_JOB, &w.into_bytes())
}

/// Maps a server-reported [`ServerMessage::Error`] into the backend
/// error the driver surfaces.
#[must_use]
pub fn remote_error(msg: String) -> BackendError {
    BackendError::Remote(msg)
}

/// A campaign-tagged frame: one inner protocol frame multiplexed onto a
/// shared connection (wire v6).
///
/// A broker connection is persistent and carries many campaigns — the
/// tag scopes every inner frame to one of them, so two tenants' (or one
/// tenant's two concurrent campaigns') setup/batch/event frames can
/// interleave on one socket without ambiguity. The tag is
/// connection-local: the side opening a campaign picks it, and both
/// sides echo it on every frame belonging to that campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mux {
    /// Connection-local campaign tag.
    pub tag: u64,
    /// The complete inner frame payload (itself enveloped).
    pub inner: Vec<u8>,
}

impl Mux {
    /// Wraps an inner frame payload under `tag`.
    #[must_use]
    pub fn wrap(tag: u64, inner: Vec<u8>) -> Mux {
        Mux { tag, inner }
    }

    /// Serializes the multiplexed frame to an enveloped payload.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.envelope(kind::MUX);
        w.u64(self.tag);
        w.u32(u32::try_from(self.inner.len()).expect("inner frame exceeds u32 length"));
        w.bytes(&self.inner);
        w.into_bytes()
    }

    /// Decodes a frame payload written by [`Mux::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on envelope mismatch, truncation, or a
    /// non-MUX frame kind.
    pub fn from_wire(bytes: &[u8]) -> Result<Mux, WireError> {
        let mut r = WireReader::new(bytes);
        match r.envelope()? {
            kind::MUX => {}
            found => {
                return Err(WireError::WrongKind {
                    found,
                    expected: kind::MUX,
                })
            }
        }
        let tag = r.u64()?;
        let len = r.u32()? as usize;
        let inner = r.bytes(len)?.to_vec();
        r.finish()?;
        Ok(Mux { tag, inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_inject::Outcome;
    use avf_sim::InjectionTarget;

    fn golden() -> GoldenRun {
        GoldenRun {
            cycles: 12_345,
            committed: 9_876,
            digest: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = [
            ServerMessage::Event(TrialEvent {
                index: 42,
                target: InjectionTarget::Iq,
                outcome: Outcome::Sdc,
            }),
            ServerMessage::StoreHave { hash: 7 },
            ServerMessage::StoreNeed { hash: u64::MAX },
            ServerMessage::Ready(JobReady {
                store_hash: 99,
                golden: golden(),
                checkpoints: 12,
                prune: None,
            }),
            ServerMessage::Done { events: 128 },
            ServerMessage::Error("checkpoint store rejected".to_owned()),
        ];
        for msg in msgs {
            assert_eq!(ServerMessage::from_wire(&msg.to_wire()).unwrap(), msg);
        }
    }

    #[test]
    fn job_ready_carries_the_prune_map_bit_identically() {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let (run, _, evidence) =
            avf_sim::golden_run_with_evidence(&machine, &program, 600, 128, avf_sim::PRUNE_WINDOW);
        let map = PruneMap::build(&machine, &program, FaultModel::Replay, &evidence);
        let msg = ServerMessage::Ready(JobReady {
            store_hash: 0xC0FFEE,
            golden: run,
            checkpoints: 3,
            prune: Some(map),
        });
        let back = ServerMessage::from_wire(&msg.to_wire()).unwrap();
        assert_eq!(back, msg, "map equality over the wire is exact");
    }

    #[test]
    fn job_setup_round_trips_in_both_modes() {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        for mode in [
            SetupMode::Shipped {
                store_hash: 0xABCD,
                golden: golden(),
                cycle_budget: 77_777,
            },
            SetupMode::Delegated {
                checkpoint_interval: 512,
            },
        ] {
            for prune in [false, true] {
                let setup = JobSetup {
                    machine: machine.clone(),
                    program: program.clone(),
                    instr_budget: 4_000,
                    fault_model: FaultModel::Trap,
                    prune,
                    mode,
                };
                let bytes = setup.to_wire();
                match ClientMessage::from_wire(&bytes).unwrap() {
                    ClientMessage::Setup(back) => {
                        assert_eq!(back.instr_budget, setup.instr_budget);
                        assert_eq!(back.fault_model, setup.fault_model);
                        assert_eq!(back.prune, setup.prune);
                        assert_eq!(back.mode, setup.mode);
                        assert_eq!(back.cache_key(), setup.cache_key());
                    }
                    other => panic!("expected a setup, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn delegated_zero_interval_is_rejected_at_decode() {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let mut w = WireWriter::new();
        w.envelope(kind::JOB_SETUP);
        machine.encode(&mut w);
        program.encode(&mut w);
        w.u64(1_000);
        w.u8(FaultModel::Replay.wire_code());
        w.u8(0); // prune off
        w.u8(1);
        w.u64(0); // zero interval: the golden pass would never checkpoint
        assert_eq!(
            ClientMessage::from_wire(&w.into_bytes()).map(|_| ()),
            Err(WireError::Invalid("checkpoint interval must be positive"))
        );
    }

    #[test]
    fn store_data_hash_matches_on_both_ends() {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let (_, store) = avf_sim::golden_run_checkpointed(&machine, &program, 500, 64);
        let frame = encode_store_data(&store);
        let sender_side = store_frame_hash(&frame);
        match ClientMessage::from_wire(&frame).unwrap() {
            ClientMessage::Store { store: back, hash } => {
                assert_eq!(hash, sender_side, "receiver hashes the same span");
                assert_eq!(back.len(), store.len());
                assert_eq!(back.interval(), store.interval());
            }
            other => panic!("expected store data, got {other:?}"),
        }
    }

    #[test]
    fn delegated_job_key_tracks_every_parameter() {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let base = delegated_job_key(&machine, &program, 1_000, 256);
        assert_eq!(base, delegated_job_key(&machine, &program, 1_000, 256));
        assert_ne!(base, delegated_job_key(&machine, &program, 1_001, 256));
        assert_ne!(base, delegated_job_key(&machine, &program, 1_000, 257));
        assert_ne!(
            base,
            delegated_job_key(&MachineConfig::config_a(), &program, 1_000, 256)
        );
    }

    #[test]
    fn foreign_and_stale_payloads_fail_typed() {
        assert!(matches!(
            ServerMessage::from_wire(&[0u8; 16]),
            Err(WireError::BadMagic(_))
        ));
        // A payload from a build speaking a different format version.
        let mut stale = Vec::from(avf_isa::wire::WIRE_MAGIC);
        stale.push(avf_isa::wire::WIRE_VERSION + 3);
        stale.push(kind::BATCH_DONE);
        stale.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            ServerMessage::from_wire(&stale),
            Err(WireError::UnsupportedVersion {
                found: avf_isa::wire::WIRE_VERSION + 3,
                expected: avf_isa::wire::WIRE_VERSION,
            })
        );
        // A pre-eval v6 build talking to this v7 build fails with the
        // typed version error at the envelope — long before the decoder
        // could misinterpret the eval frame kinds it does not know.
        let mut v6 = Vec::from(avf_isa::wire::WIRE_MAGIC);
        v6.push(6);
        v6.push(kind::JOB_READY);
        v6.extend_from_slice(&[0u8; 48]);
        assert_eq!(
            ServerMessage::from_wire(&v6),
            Err(WireError::UnsupportedVersion {
                found: 6,
                expected: 7,
            })
        );
        // A client-side frame kind arriving where a server message belongs.
        let batch = avf_inject::encode_trial_batch(&[]);
        assert!(matches!(
            ServerMessage::from_wire(&batch),
            Err(WireError::WrongKind { .. })
        ));
        // And a server frame where a client message belongs.
        let done = ServerMessage::Done { events: 0 }.to_wire();
        assert!(matches!(
            ClientMessage::from_wire(&done),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn mux_frames_round_trip_and_reject_wrong_kinds() {
        let inner = ServerMessage::Done { events: 3 }.to_wire();
        let mux = Mux::wrap(0xFEED, inner.clone());
        let decoded = Mux::from_wire(&mux.to_wire()).unwrap();
        assert_eq!(decoded, mux);
        // The inner payload is a complete frame in its own right.
        assert_eq!(
            ServerMessage::from_wire(&decoded.inner).unwrap(),
            ServerMessage::Done { events: 3 }
        );
        // An unwrapped frame where a MUX frame belongs fails typed.
        assert!(matches!(
            Mux::from_wire(&inner),
            Err(WireError::WrongKind { .. })
        ));
        // A truncated MUX frame fails typed, not by panicking.
        let whole = mux.to_wire();
        assert!(matches!(
            Mux::from_wire(&whole[..whole.len() - 2]),
            Err(WireError::Truncated)
        ));
    }
}
