//! Length-prefixed framing over a byte stream.
//!
//! Every message on a campaign connection is one frame: a little-endian
//! `u32` payload length followed by the payload (itself an
//! [`avf_isa::wire`] envelope, so the payload's own magic and version
//! are checked after the frame boundary is established). The length
//! header is bounded by [`MAX_FRAME_BYTES`] so a corrupt or hostile
//! header cannot make a worker allocate gigabytes before the payload
//! decoder ever runs.

use std::io::{ErrorKind, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use avf_inject::BackendError;

use crate::auth::{AuthSigner, AUTH_TAG_BYTES};

/// Upper bound on a single frame payload.
///
/// Sized for the largest legitimate payload — a job setup carrying a
/// full checkpoint store (tens of snapshots at a few hundred KiB) — with
/// an order of magnitude of headroom.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// Writes one frame (length header + payload).
///
/// # Errors
///
/// Returns a [`BackendError`] on transport failure, or
/// [`BackendError::Oversized`] for a payload beyond [`MAX_FRAME_BYTES`]
/// (nothing is written in that case).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), BackendError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(BackendError::Oversized {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_BYTES),
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, or `None` on a clean end-of-stream (the peer closed
/// the connection between frames — the normal way a session ends).
///
/// # Errors
///
/// Returns [`BackendError::Oversized`] for a length header beyond
/// [`MAX_FRAME_BYTES`], and [`BackendError::Io`] for transport failures
/// — including a stream that ends *inside* a frame, which is truncation,
/// not a clean close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, BackendError> {
    let mut header = [0u8; 4];
    // A clean EOF before any header byte means "no more frames"; an EOF
    // mid-header is a truncated frame.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(BackendError::Io(
                    "stream ended inside a frame header".to_owned(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(BackendError::Oversized {
            len: u64::from(len),
            max: u64::from(MAX_FRAME_BYTES),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| BackendError::Io(format!("stream ended inside a {len}-byte frame: {e}")))?;
    Ok(Some(payload))
}

/// Frames buffered before a coalesced flush.
pub const COALESCE_MAX_FRAMES: usize = 32;

/// Longest a queued frame may wait for companions before the next
/// `push` flushes it anyway.
pub const COALESCE_MAX_DELAY: Duration = Duration::from_millis(2);

/// A frame writer that coalesces small frames into one write syscall.
///
/// The event path used to `write + flush` per [`TrialEvent`] — fine on
/// loopback, chatty on a real network (an event frame is 16 bytes of
/// payload; per-frame flushing costs a syscall and, without
/// `TCP_NODELAY`, a round trip each). `push` queues the frame and
/// flushes once [`COALESCE_MAX_FRAMES`] are pending or the oldest
/// queued frame is [`COALESCE_MAX_DELAY`] old, so a fast trial stream
/// batches up while a trickling one still goes out promptly. Callers
/// flush explicitly at protocol barriers (end-of-batch, handshake
/// replies) — coalescing changes *when* bytes move, never what they
/// are, so determinism tests are unaffected.
///
/// [`TrialEvent`]: avf_inject::TrialEvent
pub struct FrameBatcher<W: Write> {
    inner: W,
    buf: Vec<u8>,
    pending: usize,
    oldest: Option<Instant>,
    max_frames: usize,
    max_delay: Duration,
    signer: Option<Arc<AuthSigner>>,
}

impl<W: Write> FrameBatcher<W> {
    /// A batcher with the default count/time window.
    pub fn new(inner: W) -> FrameBatcher<W> {
        FrameBatcher::with_window(inner, COALESCE_MAX_FRAMES, COALESCE_MAX_DELAY)
    }

    /// A batcher with an explicit window (`max_frames` clamped to ≥ 1).
    pub fn with_window(inner: W, max_frames: usize, max_delay: Duration) -> FrameBatcher<W> {
        FrameBatcher {
            inner,
            buf: Vec::new(),
            pending: 0,
            oldest: None,
            max_frames: max_frames.max(1),
            max_delay,
            signer: None,
        }
    }

    /// Attaches a frame signer: every queued frame is tagged with the
    /// signer's next sequence number, in push order, using the
    /// tag-inside-length layout of
    /// [`write_frame_signed`](crate::auth::write_frame_signed).
    #[must_use]
    pub fn with_signer(mut self, signer: Option<Arc<AuthSigner>>) -> FrameBatcher<W> {
        self.signer = signer;
        self
    }

    /// Queues one frame, flushing if the count or time window closed.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Oversized`] for a payload beyond
    /// [`MAX_FRAME_BYTES`] (nothing is queued), or the transport error
    /// of a triggered flush.
    pub fn push(&mut self, payload: &[u8]) -> Result<(), BackendError> {
        let framed = payload.len() + self.signer.as_ref().map_or(0, |_| AUTH_TAG_BYTES);
        let len = u32::try_from(framed)
            .ok()
            .filter(|&l| l <= MAX_FRAME_BYTES)
            .ok_or(BackendError::Oversized {
                len: framed as u64,
                max: u64::from(MAX_FRAME_BYTES),
            })?;
        // Sign only after the size check: a rejected frame must not
        // advance the sequence counter (nothing of it hits the wire).
        let tag = self.signer.as_ref().map(|s| s.sign(payload));
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        if let Some(tag) = tag {
            self.buf.extend_from_slice(&tag);
        }
        self.pending += 1;
        let oldest = *self.oldest.get_or_insert_with(Instant::now);
        if self.pending >= self.max_frames || oldest.elapsed() >= self.max_delay {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes every queued frame in one syscall and flushes the
    /// transport.
    ///
    /// # Errors
    ///
    /// Returns the transport error. A failed flush **poisons the
    /// stream**: an unknown prefix of the queued bytes may already be
    /// on the wire, so re-sending could never be safe — the queue is
    /// dropped and the connection must be abandoned (which is what
    /// every frame-level failure means on this protocol anyway).
    pub fn flush(&mut self) -> Result<(), BackendError> {
        if !self.buf.is_empty() {
            let wrote = self.inner.write_all(&self.buf);
            self.buf.clear();
            self.pending = 0;
            self.oldest = None;
            wrote?;
        }
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A sink that counts write syscalls.
    #[derive(Default)]
    struct CountingSink {
        bytes: Vec<u8>,
        writes: usize,
    }

    impl Write for &mut CountingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn batcher_coalesces_frames_and_preserves_the_byte_stream() {
        let mut plain = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 16]).collect();
        for p in &payloads {
            write_frame(&mut plain, p).unwrap();
        }

        let mut sink = CountingSink::default();
        {
            // A window wider than the burst: everything coalesces into
            // one write at the explicit flush.
            let mut b = FrameBatcher::with_window(&mut sink, 64, Duration::from_secs(60));
            for p in &payloads {
                b.push(p).unwrap();
            }
            b.flush().unwrap();
        }
        assert_eq!(sink.writes, 1, "ten frames, one syscall");
        assert_eq!(sink.bytes, plain, "coalescing must not alter the stream");

        // Decoders see the identical frame sequence.
        let mut r = Cursor::new(sink.bytes);
        for p in &payloads {
            assert_eq!(&read_frame(&mut r).unwrap().unwrap(), p);
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn batcher_count_window_triggers_intermediate_flushes() {
        let mut sink = CountingSink::default();
        {
            let mut b = FrameBatcher::with_window(&mut sink, 4, Duration::from_secs(60));
            for i in 0..9u8 {
                b.push(&[i]).unwrap();
            }
            b.flush().unwrap();
        }
        // 9 frames at a window of 4: flushes at 4, 8, and the final 1.
        assert_eq!(sink.writes, 3);
    }

    #[test]
    fn batcher_time_window_flushes_stale_frames_on_the_next_push() {
        let mut sink = CountingSink::default();
        {
            let mut b = FrameBatcher::with_window(&mut sink, 1024, Duration::ZERO);
            b.push(b"first").unwrap();
            // Zero delay: the queued frame is already stale, so this
            // push flushes both immediately.
            b.push(b"second").unwrap();
        }
        assert!(sink.writes >= 1);
        let mut r = Cursor::new(sink.bytes);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"second");
    }

    #[test]
    fn batcher_rejects_oversized_frames_without_queueing() {
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let mut sink = CountingSink::default();
        let mut b = FrameBatcher::new(&mut sink);
        assert!(matches!(b.push(&huge), Err(BackendError::Oversized { .. })));
        b.flush().unwrap();
        drop(b);
        assert!(sink.bytes.is_empty(), "nothing queued for the bad frame");
    }

    #[test]
    fn truncated_frames_are_io_errors_not_eof() {
        // Header promises 100 bytes; only 10 arrive.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Io(_))
        ));
        // A header cut short is also truncation.
        let buf = vec![5u8, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Io(_))
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Oversized {
                len: u64::from(u32::MAX),
                max: u64::from(MAX_FRAME_BYTES),
            })
        );
        // Writing is symmetric: the limit is enforced before any bytes
        // go out (the buffer is untouched zero pages until then).
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut std::io::Cursor::new(&mut sink), &huge),
            Err(BackendError::Oversized {
                len: u64::from(MAX_FRAME_BYTES) + 1,
                max: u64::from(MAX_FRAME_BYTES),
            })
        );
        assert!(sink.is_empty(), "nothing written before the rejection");
    }
}
