//! Length-prefixed framing over a byte stream.
//!
//! Every message on a campaign connection is one frame: a little-endian
//! `u32` payload length followed by the payload (itself an
//! [`avf_isa::wire`] envelope, so the payload's own magic and version
//! are checked after the frame boundary is established). The length
//! header is bounded by [`MAX_FRAME_BYTES`] so a corrupt or hostile
//! header cannot make a worker allocate gigabytes before the payload
//! decoder ever runs.

use std::io::{ErrorKind, Read, Write};

use avf_inject::BackendError;

/// Upper bound on a single frame payload.
///
/// Sized for the largest legitimate payload — a job setup carrying a
/// full checkpoint store (tens of snapshots at a few hundred KiB) — with
/// an order of magnitude of headroom.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// Writes one frame (length header + payload).
///
/// # Errors
///
/// Returns a [`BackendError`] on transport failure, or
/// [`BackendError::Oversized`] for a payload beyond [`MAX_FRAME_BYTES`]
/// (nothing is written in that case).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), BackendError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(BackendError::Oversized {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_BYTES),
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, or `None` on a clean end-of-stream (the peer closed
/// the connection between frames — the normal way a session ends).
///
/// # Errors
///
/// Returns [`BackendError::Oversized`] for a length header beyond
/// [`MAX_FRAME_BYTES`], and [`BackendError::Io`] for transport failures
/// — including a stream that ends *inside* a frame, which is truncation,
/// not a clean close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, BackendError> {
    let mut header = [0u8; 4];
    // A clean EOF before any header byte means "no more frames"; an EOF
    // mid-header is a truncated frame.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(BackendError::Io(
                    "stream ended inside a frame header".to_owned(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(BackendError::Oversized {
            len: u64::from(len),
            max: u64::from(MAX_FRAME_BYTES),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| BackendError::Io(format!("stream ended inside a {len}-byte frame: {e}")))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_are_io_errors_not_eof() {
        // Header promises 100 bytes; only 10 arrive.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Io(_))
        ));
        // A header cut short is also truncation.
        let buf = vec![5u8, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Io(_))
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(buf)),
            Err(BackendError::Oversized {
                len: u64::from(u32::MAX),
                max: u64::from(MAX_FRAME_BYTES),
            })
        );
        // Writing is symmetric: the limit is enforced before any bytes
        // go out (the buffer is untouched zero pages until then).
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut std::io::Cursor::new(&mut sink), &huge),
            Err(BackendError::Oversized {
                len: u64::from(MAX_FRAME_BYTES) + 1,
                max: u64::from(MAX_FRAME_BYTES),
            })
        );
        assert!(sink.is_empty(), "nothing written before the rejection");
    }
}
