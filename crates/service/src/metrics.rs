//! Plaintext metrics/health endpoint.
//!
//! Production-shaped services are scrapable: CI (and any operator with
//! `curl` or `nc`) needs to ask a worker or the broker how it is doing
//! without speaking the binary campaign protocol. This is a minimal
//! HTTP/1.0 responder — enough for `GET /metrics` (one
//! `name value` pair per line, Prometheus-style exposition) and
//! `GET /healthz` (`ok`) — listening on its own port so the metrics
//! plane never contends with, or confuses, the framed campaign plane.
//!
//! The render callback is taken at spawn time and invoked per scrape,
//! so counters are always read fresh; anything
//! `Fn() -> String + Send + Sync` works (the serve and broker binaries
//! pass closures over their live stat structs).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Session/stream counters a `serve` worker exposes alongside its
/// [`StoreCache`](crate::StoreCache) stats. All relaxed atomics: these
/// are monotone operational counters, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections whose session handler completed cleanly.
    pub sessions_ok: AtomicU64,
    /// Connections whose session handler failed (any [`BackendError`]).
    ///
    /// [`BackendError`]: avf_inject::BackendError
    pub sessions_failed: AtomicU64,
    /// Trial batches executed to completion.
    pub batches_served: AtomicU64,
    /// Trial events streamed back to drivers.
    pub events_streamed: AtomicU64,
    /// Frames rejected by keyed-hash authentication.
    pub auth_rejects: AtomicU64,
}

impl ServeStats {
    /// A fresh zeroed counter set behind an [`Arc`].
    #[must_use]
    pub fn shared() -> Arc<ServeStats> {
        Arc::new(ServeStats::default())
    }

    /// Renders the worker's `/metrics` lines (cache + session
    /// counters).
    #[must_use]
    pub fn render(&self, cache: &crate::StoreCache) -> String {
        let c = cache.stats();
        format!(
            "avf_store_cache_hits {}\n\
             avf_store_cache_misses {}\n\
             avf_store_cache_evictions {}\n\
             avf_store_cache_entries {}\n\
             avf_store_cache_bytes {}\n\
             avf_serve_sessions_ok {}\n\
             avf_serve_sessions_failed {}\n\
             avf_serve_batches_served {}\n\
             avf_serve_events_streamed {}\n\
             avf_serve_auth_rejects {}\n",
            c.hits,
            c.misses,
            c.evictions,
            c.entries,
            c.bytes,
            self.sessions_ok.load(Ordering::Relaxed),
            self.sessions_failed.load(Ordering::Relaxed),
            self.batches_served.load(Ordering::Relaxed),
            self.events_streamed.load(Ordering::Relaxed),
            self.auth_rejects.load(Ordering::Relaxed),
        )
    }
}

/// Serves `GET /metrics` and `GET /healthz` on `listener` until the
/// process exits. One short-lived thread per scrape; scrapes are rare
/// (CI, a watch loop) and must never block the campaign plane.
fn metrics_loop(listener: &TcpListener, render: &(dyn Fn() -> String + Send + Sync)) {
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let _ = respond(&stream, render);
    }
}

/// Answers one HTTP request on `stream`.
fn respond(stream: &TcpStream, render: &(dyn Fn() -> String + Send + Sync)) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = match path {
        "/metrics" => ("200 OK", render()),
        "/healthz" => ("200 OK", "ok\n".to_owned()),
        _ => (
            "404 Not Found",
            "unknown path (try /metrics or /healthz)\n".to_owned(),
        ),
    };
    let mut w = stream;
    write!(
        w,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

/// Binds `addr` and serves the metrics endpoint on a background
/// thread, returning the bound address (useful with port 0).
///
/// # Errors
///
/// Returns the I/O error if the address cannot be bound.
pub fn spawn_metrics(
    addr: &str,
    render: impl Fn() -> String + Send + Sync + 'static,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::spawn(move || metrics_loop(&listener, &render));
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    }

    #[test]
    fn metrics_and_health_respond_over_plain_http() {
        let hits = Arc::new(AtomicU64::new(41));
        let render_hits = Arc::clone(&hits);
        let addr = spawn_metrics("127.0.0.1:0", move || {
            format!("test_counter {}\n", render_hits.load(Ordering::Relaxed))
        })
        .unwrap();
        let body = get(addr, "/metrics");
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("test_counter 41"), "{body}");
        // Counters are read per scrape, not snapshotted at spawn.
        hits.fetch_add(1, Ordering::Relaxed);
        assert!(get(addr, "/metrics").contains("test_counter 42"));
        assert!(get(addr, "/healthz").contains("ok"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.0 404"));
    }
}
