//! Negative-path validation of keyed-frame authentication over real
//! TCP sessions, plus wire-version skew.
//!
//! The unit tests in `avf_service::auth` prove the tag construction
//! rejects what it must; these tests prove a *live worker* holds the
//! line: every rejected frame surfaces as a typed error on the driver
//! side, moves the worker's `auth_rejects`/`sessions_failed` counters,
//! and never takes the worker down — a subsequent well-formed session
//! on the same process must still succeed.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use avf_inject::{BackendError, Campaign, CampaignConfig, LocalBackend};
use avf_service::auth::{write_frame_signed, ConnectionAuth};
use avf_service::frame::{read_frame, write_frame};
use avf_service::protocol::{JobSetup, ServerMessage, SetupMode};
use avf_service::{spawn_local, AuthKey, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;
use avf_workloads::testkit::register_chain;

mod common;
use common::assert_reports_identical;

fn key() -> AuthKey {
    AuthKey::from_hex("00112233445566778899aabbccddeeff").unwrap()
}

fn wrong_key() -> AuthKey {
    AuthKey::from_hex("ffeeddccbbaa99887766554433221100").unwrap()
}

fn keyed_options() -> ServeOptions {
    ServeOptions {
        threads: 1,
        auth: Some(key()),
        ..ServeOptions::default()
    }
}

fn small_config() -> CampaignConfig {
    CampaignConfig {
        injections: 64,
        seed: 17,
        threads: 1,
        instr_budget: 4_000,
        batch_size: 32,
        ..CampaignConfig::default()
    }
}

fn delegated_setup() -> JobSetup {
    JobSetup {
        machine: MachineConfig::baseline(),
        program: register_chain(),
        instr_budget: 4_000,
        fault_model: avf_inject::FaultModel::default(),
        prune: false,
        mode: SetupMode::Delegated {
            checkpoint_interval: 512,
        },
    }
}

/// Runs a small campaign with the right key against `addr` and checks
/// it matches the local reference — the "worker still works" probe
/// every negative test ends with.
fn assert_worker_still_healthy(addr: &std::net::SocketAddr) {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let local = Campaign::new(&machine, &program, small_config())
        .run_on(&LocalBackend::new(1))
        .expect("local reference");
    let keyed = Campaign::new(&machine, &program, small_config())
        .run_on(&RemoteBackend::with_auth(vec![addr.to_string()], key()))
        .expect("authenticated campaign after the attack");
    assert_reports_identical(&local, &keyed);
}

#[test]
fn wrong_key_driver_gets_a_typed_error_and_the_worker_survives() {
    let opts = keyed_options();
    let stats = std::sync::Arc::clone(&opts.stats);
    let addr = spawn_local(opts).expect("keyed worker");

    let backend = RemoteBackend::with_auth(vec![addr.to_string()], wrong_key());
    let err = Campaign::new(
        &MachineConfig::baseline(),
        &register_chain(),
        small_config(),
    )
    .run_on(&backend)
    .expect_err("wrong key must not authenticate");
    // The driver sees a typed error — its own verifier rejects the
    // worker's (differently-keyed) error frame, or the transport drops.
    // What it must never see is a hang, a panic, or a report.
    assert!(
        matches!(
            err,
            BackendError::Auth(_) | BackendError::Remote(_) | BackendError::Disconnected { .. }
        ),
        "expected a typed rejection, got {err}"
    );
    assert!(
        stats
            .auth_rejects
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the worker must count the auth reject"
    );
    assert_worker_still_healthy(&addr);
}

#[test]
fn plain_driver_to_keyed_worker_is_rejected_not_hung() {
    let opts = keyed_options();
    let stats = std::sync::Arc::clone(&opts.stats);
    let addr = spawn_local(opts).expect("keyed worker");

    // An unauthenticated driver: under the tag-inside-length layout the
    // worker consumes the whole plain frame and rejects it typed.
    let backend = RemoteBackend::new(vec![addr.to_string()]);
    let err = Campaign::new(
        &MachineConfig::baseline(),
        &register_chain(),
        small_config(),
    )
    .run_on(&backend)
    .expect_err("plain frames must not pass a keyed worker");
    // The worker's signed error frame carries 8 tag bytes the plain
    // reader cannot strip, so the driver surfaces the mismatch as a
    // wire decode error ("trailing bytes") — typed, and identifiable
    // as a keyed/plain mismatch per the auth module docs.
    assert!(
        matches!(
            err,
            BackendError::Wire(_) | BackendError::Remote(_) | BackendError::Disconnected { .. }
        ),
        "expected a typed rejection, got {err}"
    );
    assert!(
        stats
            .auth_rejects
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the worker must count the auth reject"
    );
    assert_worker_still_healthy(&addr);
}

#[test]
fn truncated_tag_kills_only_that_session() {
    let opts = keyed_options();
    let stats = std::sync::Arc::clone(&opts.stats);
    let addr = spawn_local(opts).expect("keyed worker");

    // Sign a real setup frame, then deliver all but the last 3 tag
    // bytes and slam the connection: the worker sees transport
    // truncation, fails the session, and must not take down the
    // process.
    let auth = ConnectionAuth::client(key());
    let mut bytes = Vec::new();
    write_frame_signed(&mut bytes, &delegated_setup().to_wire(), Some(&auth.signer)).unwrap();
    bytes.truncate(bytes.len() - 3);
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = BufWriter::new(&stream);
    w.write_all(&bytes).unwrap();
    w.flush().unwrap();
    drop(w);
    drop(stream); // close mid-frame

    // The failure is asynchronous to the drop; poll the counter.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while stats
        .sessions_failed
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never registered the truncated session"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_worker_still_healthy(&addr);
}

#[test]
fn replayed_setup_frame_is_rejected_after_the_original_verifies() {
    let opts = keyed_options();
    let stats = std::sync::Arc::clone(&opts.stats);
    let addr = spawn_local(opts).expect("keyed worker");

    // Byte-identical re-send of a frame that *did* verify: the second
    // copy hits the worker's advanced sequence counter.
    let auth = ConnectionAuth::client(key());
    let mut signed = Vec::new();
    write_frame_signed(
        &mut signed,
        &delegated_setup().to_wire(),
        Some(&auth.signer),
    )
    .unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(&stream);
    let mut w = BufWriter::new(&stream);
    w.write_all(&signed).unwrap();
    w.flush().unwrap();
    // The original authenticates: the worker answers the store
    // handshake (NEED/HAVE) and runs its golden pass toward Ready.
    let first = read_frame(&mut reader)
        .expect("handshake reply")
        .expect("frame");
    assert!(!first.is_empty());
    // Now the replay, in place of the trial batch the worker expects.
    w.write_all(&signed).unwrap();
    w.flush().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while stats
        .auth_rejects
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never rejected the replayed frame"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_worker_still_healthy(&addr);
}

#[test]
fn wire_version_skew_is_a_typed_mismatch_not_a_decode_panic() {
    let addr = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("plain worker");

    // A well-formed frame whose envelope announces the previous wire
    // version — the exact shape an old driver would send a new fleet.
    let mut payload = delegated_setup().to_wire();
    assert_eq!(payload[4], avf_isa::wire::WIRE_VERSION);
    payload[4] = avf_isa::wire::WIRE_VERSION - 1;
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(&stream);
    let mut w = BufWriter::new(&stream);
    write_frame(&mut w, &payload).unwrap();
    w.flush().unwrap();

    // The worker must answer with a typed error frame naming the
    // version mismatch — decoding must not panic the session handler.
    let reply = read_frame(&mut reader)
        .expect("error frame")
        .expect("frame");
    match ServerMessage::from_wire(&reply).expect("decodable reply") {
        ServerMessage::Error(msg) => {
            assert!(
                msg.contains("version"),
                "the error must name the version skew: {msg}"
            );
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}
