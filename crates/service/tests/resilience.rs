//! Failure-path validation of the distributed campaign service.
//!
//! The acceptance bar of the fault-tolerance work: a campaign whose
//! worker dies mid-batch must complete on the survivors with a
//! [`CampaignReport`] *bit-identical* to the fault-free run at the
//! same seed — outcomes are pure functions of each planned trial, so
//! re-dispatching a dead worker's unacknowledged trials changes where
//! work ran, never what it measured. Alongside that, the failure
//! taxonomy itself: a connection that dies (clean close or truncation
//! mid-frame) must surface as the typed, retryable
//! [`BackendError::Disconnected`], distinct from a worker-*reported*
//! `SERVICE_ERROR` (fatal [`BackendError::Remote`]) and from protocol
//! violations — never as a decode panic.
//!
//! [`CampaignReport`]: avf_inject::CampaignReport

use std::io::Write;
use std::net::{TcpListener, TcpStream};

use avf_inject::{BackendError, CampaignBackend};
use avf_inject::{
    Campaign, CampaignConfig, GoldenSpec, JobSpec, LocalBackend, Outcome, Trial, TrialEvent,
};
use avf_service::{spawn_local, RemoteBackend, ServeOptions};
use avf_sim::{GoldenRun, InjectionTarget, MachineConfig};
use avf_workloads::testkit::register_chain;

mod common;
use common::assert_reports_identical;

fn adaptive_config() -> CampaignConfig {
    CampaignConfig {
        injections: 400,
        seed: 11,
        threads: 1,
        instr_budget: 6_000,
        ci_target: Some(0.14),
        batch_size: 64,
        ..CampaignConfig::default()
    }
}

#[test]
fn worker_death_mid_batch_redispatches_and_stays_bit_identical() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = adaptive_config();

    // The fault-free reference at the same seed.
    let clean = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("fault-free run");
    assert!(
        clean.batches.len() >= 2,
        "the scenario needs a second batch for the fault to land in"
    );

    // Worker B aborts its connection midway through batch 1 (after the
    // first streamed batch); worker A survives the whole campaign.
    let a = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("healthy worker");
    let b = spawn_local(ServeOptions {
        threads: 1,
        die_mid_batch: Some(1),
        ..ServeOptions::default()
    })
    .expect("doomed worker");
    let backend = RemoteBackend::new(vec![a.to_string(), b.to_string()]);
    let survived = Campaign::new(&machine, &program, config)
        .run_on(&backend)
        .expect("campaign must survive one worker death");

    assert_reports_identical(&clean, &survived);
    assert!(
        survived.redispatched_trials() > 0,
        "the injected fault must actually have fired"
    );
    let redispatches: Vec<_> = survived
        .dispatches
        .iter()
        .filter(|d| d.redispatched)
        .collect();
    assert!(
        redispatches.iter().all(|d| d.worker == a.to_string()),
        "re-dispatched shards must land on the survivor: {redispatches:?}"
    );
    assert!(
        redispatches.iter().all(|d| d.batch == 1),
        "the fault was injected in batch 1: {redispatches:?}"
    );
    // Batches after the death go to the survivor only.
    assert!(
        survived
            .dispatches
            .iter()
            .filter(|d| d.batch > 1)
            .all(|d| d.worker == a.to_string()),
        "a dead worker must not be dispatched to again"
    );
}

#[test]
fn losing_every_worker_is_a_typed_disconnect_not_a_panic() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    config.threads = 1;

    // The only worker dies during the first batch: nothing remains to
    // re-dispatch to, so the campaign fails with the typed
    // connection-death error.
    let addr = spawn_local(ServeOptions {
        threads: 1,
        die_mid_batch: Some(0),
        ..ServeOptions::default()
    })
    .expect("doomed worker");
    let backend = RemoteBackend::new(vec![addr.to_string()]);
    let err = Campaign::new(&machine, &program, config)
        .run_on(&backend)
        .expect_err("no survivor means no campaign");
    assert!(
        matches!(err, BackendError::Disconnected { .. }),
        "expected Disconnected, got {err}"
    );
}

/// A scripted fake worker: accepts one connection, performs the setup
/// handshake with a fabricated golden run, then hands the connection to
/// `batch_script` once the first trial batch arrives.
fn scripted_worker(
    batch_script: impl FnOnce(&TcpStream, &[u8]) + Send + 'static,
) -> std::net::SocketAddr {
    use avf_service::frame::{read_frame, write_frame};
    use avf_service::protocol::{JobReady, ServerMessage};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake worker");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(&stream);
        let _setup = read_frame(&mut reader)
            .expect("setup frame")
            .expect("setup");
        let ready = JobReady {
            store_hash: 0xFA4E,
            golden: GoldenRun {
                cycles: 5_000,
                committed: 4_000,
                digest: 0x1234,
            },
            checkpoints: 1,
            prune: None,
        };
        let mut w = std::io::BufWriter::new(&stream);
        write_frame(&mut w, &ServerMessage::StoreNeed { hash: 0xFA4E }.to_wire()).unwrap();
        write_frame(&mut w, &ServerMessage::Ready(ready).to_wire()).unwrap();
        w.flush().unwrap();
        drop(w);
        let batch = read_frame(&mut reader)
            .expect("batch frame")
            .expect("batch");
        drop(reader);
        batch_script(&stream, &batch);
    });
    addr
}

fn delegated_spec() -> JobSpec {
    JobSpec {
        machine: MachineConfig::baseline(),
        program: register_chain(),
        instr_budget: 6_000,
        fault_model: avf_inject::FaultModel::default(),
        golden: GoldenSpec::Delegated {
            checkpoint_interval: 512,
        },
        prune: false,
    }
}

fn two_trials() -> Vec<Trial> {
    (0..2)
        .map(|index| Trial {
            index,
            target: InjectionTarget::Rob,
            cycle: 1 + index,
            entry: 0,
            bit: 0,
        })
        .collect()
}

// ------------------------------------------------------------- broker paths

/// Broker-routed failure scenarios: the broker owns campaign execution,
/// so a *driver* death must not cost any work — the campaign finishes
/// on the fleet and a later `attach` (same tenant, new connection)
/// retrieves the identical report from the durable log.
#[test]
fn driver_death_mid_campaign_loses_nothing_and_attach_gets_the_report() {
    use avf_broker::{Broker, BrokerClient, BrokerOptions, CampaignSpec};

    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = adaptive_config();
    let clean = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("fault-free reference");

    let worker = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("worker");
    let store = std::env::temp_dir().join(format!(
        "avf-resilience-driver-death-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let broker = Broker::start(BrokerOptions {
        workers: vec![worker.to_string()],
        store_path: store,
        ..BrokerOptions::default()
    })
    .expect("broker");
    let addr = broker.spawn_local().expect("broker addr").to_string();

    // Submit, then die: drop the client the moment the campaign is
    // accepted, exactly like a driver process being killed.
    let id = {
        let mut doomed = BrokerClient::connect(&addr, "mortal", None).expect("connect");
        doomed
            .submit(&CampaignSpec::from_config(
                machine.clone(),
                program.clone(),
                &config,
            ))
            .expect("submit")
        // `doomed` drops here — the TCP connection closes.
    };

    // A brand-new connection attaches by id and collects the report.
    let mut heir = BrokerClient::connect(&addr, "mortal", None).expect("reconnect");
    heir.attach(id).expect("attach");
    let recovered = heir.wait(id).expect("report despite the driver death");
    assert_reports_identical(&clean, &recovered);
}

/// Queue overflow is an *admission* failure: the driver gets a typed
/// rejection naming the limit, and campaigns already admitted — and the
/// workers running them — are completely undisturbed.
#[test]
fn queue_overflow_rejects_typed_without_disrupting_admitted_work() {
    use avf_broker::{
        Broker, BrokerClient, BrokerOptions, CampaignSpec, RejectReason, SubmitError,
    };

    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = adaptive_config();

    let worker = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("worker");
    let store = std::env::temp_dir().join(format!(
        "avf-resilience-overflow-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let broker = Broker::start(BrokerOptions {
        workers: vec![worker.to_string()],
        store_path: store,
        max_running: 1,
        per_tenant_pending: 1,
        max_pending: 1,
        ..BrokerOptions::default()
    })
    .expect("broker");
    let addr = broker.spawn_local().expect("broker addr").to_string();

    let mut client = BrokerClient::connect(&addr, "flood", None).expect("connect");
    let spec = CampaignSpec::from_config(machine.clone(), program.clone(), &config);
    let first = client.submit(&spec).expect("first submit admitted");
    let mut admitted = vec![first];
    let mut rejected = false;
    for _ in 0..8 {
        match client.submit(&spec) {
            Ok(id) => admitted.push(id),
            Err(SubmitError::Rejected { reason, detail }) => {
                assert!(
                    matches!(
                        reason,
                        RejectReason::QuotaExceeded | RejectReason::QueueFull
                    ),
                    "unexpected rejection reason {reason:?}"
                );
                assert!(!detail.is_empty(), "the rejection must name the limit");
                rejected = true;
                break;
            }
            Err(other) => panic!("expected a typed admission rejection, got {other}"),
        }
    }
    assert!(rejected, "the admission limits never engaged");

    // Everything admitted before the overflow still completes, and the
    // reports are the fault-free ones — the flood touched nothing.
    let clean = Campaign::new(&machine, &program, config)
        .run_on(&LocalBackend::new(1))
        .expect("fault-free reference");
    for id in admitted {
        let report = client.wait(id).expect("admitted campaign completes");
        assert_reports_identical(&clean, &report);
    }
}

#[test]
fn frame_truncation_mid_stream_is_disconnected_not_a_decode_panic() {
    use avf_service::frame::write_frame;
    use avf_service::protocol::ServerMessage;

    // After one good event, the worker emits a frame header promising
    // 100 bytes, delivers 10, and drops dead.
    let addr = scripted_worker(|stream, _batch| {
        let mut w = std::io::BufWriter::new(stream);
        let event = TrialEvent {
            index: 0,
            target: InjectionTarget::Rob,
            outcome: Outcome::Masked,
        };
        write_frame(&mut w, &ServerMessage::Event(event).to_wire()).unwrap();
        w.write_all(&100u32.to_le_bytes()).unwrap();
        w.write_all(&[0u8; 10]).unwrap();
        w.flush().unwrap();
        // Dropping the stream here closes the socket mid-frame.
    });

    let backend = RemoteBackend::new(vec![addr.to_string()]);
    let opened = backend.open(delegated_spec()).expect("handshake");
    let mut session = opened.session;
    let results: Vec<_> = session.submit(&two_trials()).expect("submit").collect();
    assert_eq!(results.len(), 2, "one event, then the typed error");
    assert!(results[0].as_ref().is_ok_and(|ev| ev.index == 0));
    match &results[1] {
        Err(BackendError::Disconnected { detail, .. }) => {
            assert!(detail.contains("frame"), "names the truncation: {detail}");
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn service_error_mid_stream_is_remote_and_never_redispatched() {
    use avf_service::frame::write_frame;
    use avf_service::protocol::ServerMessage;

    // The worker is alive and *reports* a failure: that is fatal — the
    // driver must not mistake it for connection death and retry it
    // elsewhere, which could mask a real job-level problem.
    let addr = scripted_worker(|stream, _batch| {
        let mut w = std::io::BufWriter::new(stream);
        write_frame(
            &mut w,
            &ServerMessage::Error("checkpoint decode exploded".to_owned()).to_wire(),
        )
        .unwrap();
        w.flush().unwrap();
    });

    let backend = RemoteBackend::new(vec![addr.to_string()]);
    let opened = backend.open(delegated_spec()).expect("handshake");
    let mut session = opened.session;
    let results: Vec<_> = session.submit(&two_trials()).expect("submit").collect();
    assert_eq!(results.len(), 1);
    match &results[0] {
        Err(BackendError::Remote(msg)) => assert!(msg.contains("exploded"), "{msg}"),
        other => panic!("expected Remote, got {other:?}"),
    }
}
