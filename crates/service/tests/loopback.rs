//! End-to-end loopback validation: a campaign driven through a real
//! TCP `serve` worker must be *bit-identical* to the in-process run.
//!
//! This is the acceptance bar of the backend redesign — local threads
//! and remote sockets are interchangeable execution venues behind the
//! same streaming API, so with a fixed seed the adaptive driver must
//! produce the same outcome counts, intervals, batch trajectory, and
//! stop reason over either.

use avf_inject::{Campaign, CampaignConfig, GoldenMode, LocalBackend, StoreSource};
use avf_service::{spawn_local, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;

use avf_workloads::testkit::register_chain;

mod common;
use common::assert_reports_identical;

fn adaptive_config() -> CampaignConfig {
    CampaignConfig {
        injections: 400,
        seed: 11,
        threads: 2,
        instr_budget: 6_000,
        ci_target: Some(0.14),
        batch_size: 64,
        ..CampaignConfig::default()
    }
}

fn serve_options(threads: usize) -> ServeOptions {
    ServeOptions {
        threads,
        ..ServeOptions::default()
    }
}

#[test]
fn loopback_remote_matches_local_adaptive_campaign() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = adaptive_config();

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(2))
        .expect("local run");

    let addr = spawn_local(serve_options(2)).expect("bind loopback server");
    let remote_backend = RemoteBackend::new(vec![addr.to_string()]);
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&remote_backend)
        .expect("loopback remote run");

    assert!(local.injections > 0, "campaign actually ran");
    assert_reports_identical(&local, &remote);
    // Default mode: the worker executed the golden pass itself.
    assert_eq!(remote.provisioning.len(), 1);
    assert_eq!(remote.provisioning[0].source, StoreSource::GoldenRun);
}

#[test]
fn driver_golden_mode_ships_the_store_and_still_matches() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    config.ci_target = Some(0.2);
    config.injections = 256;

    // Reference: default worker-side golden pass, local venue.
    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("local run");

    // Driver-side golden pass over the wire: the store ships once
    // (NEED), and a second campaign against the same worker hits the
    // content-hash cache instead of re-shipping.
    config.golden_mode = GoldenMode::Driver;
    let opts = serve_options(1);
    let cache = std::sync::Arc::clone(&opts.cache);
    let addr = spawn_local(opts).expect("bind loopback server");
    let backend = RemoteBackend::new(vec![addr.to_string()]);

    let first = Campaign::new(&machine, &program, config.clone())
        .run_on(&backend)
        .expect("shipped-store remote run");
    assert_reports_identical(&local, &first);
    assert_eq!(first.provisioning[0].source, StoreSource::Shipped);
    assert_eq!(cache.stats().hits, 0);

    let second = Campaign::new(&machine, &program, config)
        .run_on(&backend)
        .expect("cache-hit remote run");
    assert_reports_identical(&local, &second);
    assert_eq!(
        second.provisioning[0].source,
        StoreSource::Cached,
        "identical store must not be re-shipped"
    );
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn two_workers_split_the_campaign_and_still_match() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    // Keep the two-worker variant cheap: it checks fan-out equivalence,
    // not convergence depth.
    config.ci_target = Some(0.2);
    config.injections = 256;

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("local run");

    // Two independent single-threaded server processes-worth of state
    // on one loopback: the driver strides each batch across both.
    let a = spawn_local(serve_options(1)).expect("worker a");
    let b = spawn_local(serve_options(1)).expect("worker b");
    let remote_backend = RemoteBackend::new(vec![a.to_string(), b.to_string()]);
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&remote_backend)
        .expect("two-worker remote run");

    assert_reports_identical(&local, &remote);
}

/// Pulls one metric value out of a `/metrics` exposition body.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(name).map(str::trim))
        .unwrap_or_else(|| panic!("metric `{name}` missing from:\n{body}"))
        .parse()
        .unwrap_or_else(|e| panic!("metric `{name}` is not a counter: {e}"))
}

fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics");
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    body
}

/// The worker's operational counters — store-cache hits/misses and
/// session totals — must be observable over the HTTP metrics plane and
/// must move as campaigns run, because that scrape is exactly how CI
/// (and operators) watch a fleet.
#[test]
fn metrics_endpoint_tracks_cache_hits_and_sessions_across_campaigns() {
    use avf_service::spawn_metrics;

    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    config.ci_target = Some(0.2);
    config.injections = 256;
    config.golden_mode = GoldenMode::Driver;

    let opts = serve_options(1);
    let cache = std::sync::Arc::clone(&opts.cache);
    let stats = std::sync::Arc::clone(&opts.stats);
    let worker = spawn_local(opts).expect("worker");
    let metrics_addr =
        spawn_metrics("127.0.0.1:0", move || stats.render(&cache)).expect("metrics endpoint");

    let before = scrape(metrics_addr);
    assert_eq!(metric(&before, "avf_store_cache_hits"), 0);
    assert_eq!(metric(&before, "avf_store_cache_misses"), 0);
    assert_eq!(metric(&before, "avf_serve_sessions_ok"), 0);

    // First campaign ships the store (a miss), the second re-uses it
    // (a hit) — both visible through the scrape, not just in-process.
    let backend = RemoteBackend::new(vec![worker.to_string()]);
    for _ in 0..2 {
        Campaign::new(&machine, &program, config.clone())
            .run_on(&backend)
            .expect("campaign");
    }
    let after = scrape(metrics_addr);
    assert_eq!(metric(&after, "avf_store_cache_misses"), 1, "{after}");
    assert_eq!(metric(&after, "avf_store_cache_hits"), 1, "{after}");
    // The worker's session-side counters (batch completions, session
    // teardown) land asynchronously to the driver seeing its report —
    // poll the scrape until they settle.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let body = scrape(metrics_addr);
        if metric(&body, "avf_serve_sessions_ok") == 2
            && metric(&body, "avf_serve_batches_served") >= 2
            && metric(&body, "avf_serve_events_streamed") >= 256
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session counters never settled:\n{body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn unreachable_worker_fails_loudly_not_wrongly() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    config.injections = 32;
    // A port nothing listens on: the campaign must error, never
    // silently fall back or return a partial report.
    let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_owned()]);
    let err = Campaign::new(&machine, &program, config)
        .run_on(&backend)
        .expect_err("connecting to a dead port must fail");
    assert!(err.to_string().contains("connect"), "{err}");
}
