//! End-to-end loopback validation: a campaign driven through a real
//! TCP `serve` worker must be *bit-identical* to the in-process run.
//!
//! This is the acceptance bar of the backend redesign — local threads
//! and remote sockets are interchangeable execution venues behind the
//! same streaming API, so with a fixed seed the adaptive driver must
//! produce the same outcome counts, intervals, batch trajectory, and
//! stop reason over either.

use avf_inject::{Campaign, CampaignConfig, CampaignReport, LocalBackend};
use avf_service::{spawn_local, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;

use avf_workloads::testkit::register_chain;

fn adaptive_config() -> CampaignConfig {
    CampaignConfig {
        injections: 400,
        seed: 11,
        threads: 2,
        instr_budget: 6_000,
        ci_target: Some(0.14),
        batch_size: 64,
        ..CampaignConfig::default()
    }
}

/// Everything the methodology cares about must match; wall-clock and
/// the venue's parallelism legitimately differ.
fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.program, b.program);
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.checkpoints, b.checkpoints);
    assert_eq!(a.golden.cycles, b.golden.cycles);
    assert_eq!(a.golden.digest, b.golden.digest);
    assert_eq!(a.targets.len(), b.targets.len());
    for (x, y) in a.targets.iter().zip(&b.targets) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.counts, y.counts, "{}: outcome counts differ", x.target);
        assert_eq!(
            x.ci95().0.to_bits(),
            y.ci95().0.to_bits(),
            "{}: CI lower bound differs",
            x.target
        );
        assert_eq!(
            x.ci95().1.to_bits(),
            y.ci95().1.to_bits(),
            "{}: CI upper bound differs",
            x.target
        );
        assert_eq!(x.ace_avf.to_bits(), y.ace_avf.to_bits());
    }
    assert_eq!(a.batches.len(), b.batches.len(), "batch trajectory length");
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.batch, y.batch);
        assert_eq!(x.trials, y.trials);
        assert_eq!(x.cumulative, y.cumulative);
        assert_eq!(x.widest, y.widest);
        assert_eq!(x.max_half_width.to_bits(), y.max_half_width.to_bits());
    }
}

#[test]
fn loopback_remote_matches_local_adaptive_campaign() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = adaptive_config();

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(2))
        .expect("local run");

    let addr = spawn_local(ServeOptions { threads: 2 }).expect("bind loopback server");
    let remote_backend = RemoteBackend::new(vec![addr.to_string()]);
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&remote_backend)
        .expect("loopback remote run");

    assert!(local.injections > 0, "campaign actually ran");
    assert_reports_identical(&local, &remote);
}

#[test]
fn two_workers_split_the_campaign_and_still_match() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    // Keep the two-worker variant cheap: it checks fan-out equivalence,
    // not convergence depth.
    config.ci_target = Some(0.2);
    config.injections = 256;

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("local run");

    // Two independent single-threaded server processes-worth of state
    // on one loopback: the driver strides each batch across both.
    let a = spawn_local(ServeOptions { threads: 1 }).expect("worker a");
    let b = spawn_local(ServeOptions { threads: 1 }).expect("worker b");
    let remote_backend = RemoteBackend::new(vec![a.to_string(), b.to_string()]);
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&remote_backend)
        .expect("two-worker remote run");

    assert_reports_identical(&local, &remote);
}

#[test]
fn unreachable_worker_fails_loudly_not_wrongly() {
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let mut config = adaptive_config();
    config.injections = 32;
    // A port nothing listens on: the campaign must error, never
    // silently fall back or return a partial report.
    let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_owned()]);
    let err = Campaign::new(&machine, &program, config)
        .run_on(&backend)
        .expect_err("connecting to a dead port must fail");
    assert!(err.to_string().contains("connect"), "{err}");
}
