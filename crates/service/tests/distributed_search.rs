//! Venue-invariance of the distributed GA search.
//!
//! The acceptance bar mirrors the campaign resilience suite: fitness
//! scores are pure functions of (context, genome), so at a fixed seed
//! the GA history — per-generation best fitness, final genome, and
//! evaluation count — must be *bit-identical* whether generations are
//! scored in-process, across a worker fleet, through the broker, or
//! across a fleet that loses a worker mid-generation. Only venue
//! metadata (cache hits, re-dispatch counters) may differ.

use avf_ace::{FaultRates, Fitness};
use avf_broker::{Broker, BrokerOptions, BrokeredEvaluator};
use avf_codegen::GENOME_LEN;
use avf_ga::{optimize, GaParams, GaResult, LocalEvaluator};
use avf_service::{
    evaluate_genome, spawn_local, EvalCache, EvalContext, RemoteEvaluator, ServeOptions,
};
use avf_sim::MachineConfig;

fn context() -> EvalContext {
    EvalContext {
        machine: MachineConfig::baseline(),
        fitness: Fitness::overall(FaultRates::baseline()),
        instr_budget: 6_000,
    }
}

fn params() -> GaParams {
    GaParams {
        population: 6,
        generations: 4,
        ..GaParams::quick()
    }
}

fn local_reference() -> GaResult {
    let ctx = context();
    let mut local = LocalEvaluator::new(1, move |genes: &[f64]| evaluate_genome(&ctx, genes));
    optimize(GENOME_LEN, &params(), &mut local).expect("local search cannot fail")
}

fn assert_results_identical(a: &GaResult, b: &GaResult) {
    assert_eq!(a.best_genome, b.best_genome, "final genome must match");
    assert_eq!(a.evaluations, b.evaluations, "evaluation count must match");
    assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.best.to_bits(), y.best.to_bits(), "per-generation best");
        assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "per-generation mean");
    }
}

#[test]
fn two_worker_fleet_bit_identical_to_local() {
    let clean = local_reference();

    let workers: Vec<String> = (0..2)
        .map(|_| {
            spawn_local(ServeOptions {
                threads: 1,
                ..ServeOptions::default()
            })
            .expect("spawn worker")
            .to_string()
        })
        .collect();
    let mut remote = RemoteEvaluator::connect(&workers, None, context()).expect("connect fleet");
    let result = optimize(GENOME_LEN, &params(), &mut remote).expect("remote search");

    assert_results_identical(&clean, &result);
    assert!(
        remote.cache_hits() > 0,
        "elite genomes re-scored across generations must hit the worker cache"
    );
    assert_eq!(remote.redispatched(), 0, "no faults were injected");
}

#[test]
fn worker_death_mid_generation_redispatches_and_stays_bit_identical() {
    let clean = local_reference();

    // Worker B aborts its connection midway through its second batch;
    // worker A survives the whole search.
    let a = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("healthy worker");
    let b = spawn_local(ServeOptions {
        threads: 1,
        die_mid_batch: Some(1),
        ..ServeOptions::default()
    })
    .expect("doomed worker");
    let workers = vec![a.to_string(), b.to_string()];
    let mut remote = RemoteEvaluator::connect(&workers, None, context()).expect("connect fleet");
    let result =
        optimize(GENOME_LEN, &params(), &mut remote).expect("search must survive one death");

    assert_results_identical(&clean, &result);
    assert!(
        remote.redispatched() > 0,
        "the injected fault must actually have fired"
    );
}

#[test]
fn all_workers_dead_surfaces_typed_error() {
    let doomed = spawn_local(ServeOptions {
        threads: 1,
        die_mid_batch: Some(0),
        ..ServeOptions::default()
    })
    .expect("doomed worker");
    let workers = vec![doomed.to_string()];
    let mut remote = RemoteEvaluator::connect(&workers, None, context()).expect("connect fleet");
    let err = optimize(GENOME_LEN, &params(), &mut remote)
        .expect_err("a fleet with every worker dead cannot finish");
    assert!(
        err.0.contains("disconnected"),
        "error must surface the last disconnection, got: {}",
        err.0
    );
}

#[test]
fn worker_cache_is_visible_to_the_spawner() {
    let cache = EvalCache::shared();
    let addr = spawn_local(ServeOptions {
        threads: 1,
        eval_cache: cache.clone(),
        ..ServeOptions::default()
    })
    .expect("spawn worker")
    .to_string();
    let mut remote = RemoteEvaluator::connect(&[addr], None, context()).expect("connect fleet");
    let _ = optimize(GENOME_LEN, &params(), &mut remote).expect("remote search");
    let stats = cache.stats();
    assert!(stats.misses > 0, "distinct genomes must miss once");
    assert!(stats.hits > 0, "elite re-evaluations must hit");
    assert_eq!(stats.hits, remote.cache_hits());
}

#[test]
fn brokered_search_bit_identical_to_local() {
    let clean = local_reference();

    let workers: Vec<String> = (0..2)
        .map(|_| {
            spawn_local(ServeOptions {
                threads: 1,
                ..ServeOptions::default()
            })
            .expect("spawn worker")
            .to_string()
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("avf-eval-broker-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let broker = Broker::start(BrokerOptions {
        workers,
        store_path: dir.join("campaigns.log"),
        ..BrokerOptions::default()
    })
    .expect("broker");
    let addr = broker.spawn_local().expect("spawn broker").to_string();

    let mut evaluator =
        BrokeredEvaluator::connect(&addr, "search-tests", None, context()).expect("connect broker");
    let result = optimize(GENOME_LEN, &params(), &mut evaluator).expect("brokered search");

    assert_results_identical(&clean, &result);
    assert!(
        evaluator.cache_hits() > 0,
        "elite genomes must hit the worker cache through the broker too"
    );
}
