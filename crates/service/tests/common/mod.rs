//! Shared assertions for the loopback/resilience suites.

use avf_inject::CampaignReport;

/// Everything the methodology cares about must match bit-for-bit;
/// wall-clock, the venue's parallelism, and the dispatch trajectory
/// (which worker ran what, and what was re-dispatched after a failure)
/// legitimately differ between venues and between worker fates.
pub fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.program, b.program);
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.checkpoints, b.checkpoints);
    assert_eq!(a.golden.cycles, b.golden.cycles);
    assert_eq!(a.golden.digest, b.golden.digest);
    assert_eq!(a.targets.len(), b.targets.len());
    for (x, y) in a.targets.iter().zip(&b.targets) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.counts, y.counts, "{}: outcome counts differ", x.target);
        assert_eq!(
            x.ci95().0.to_bits(),
            y.ci95().0.to_bits(),
            "{}: CI lower bound differs",
            x.target
        );
        assert_eq!(
            x.ci95().1.to_bits(),
            y.ci95().1.to_bits(),
            "{}: CI upper bound differs",
            x.target
        );
        assert_eq!(x.ace_avf.to_bits(), y.ace_avf.to_bits());
    }
    assert_eq!(a.batches.len(), b.batches.len(), "batch trajectory length");
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.batch, y.batch);
        assert_eq!(x.trials, y.trials);
        assert_eq!(x.cumulative, y.cumulative);
        assert_eq!(x.widest, y.widest);
        assert_eq!(x.max_half_width.to_bits(), y.max_half_width.to_bits());
    }
}
